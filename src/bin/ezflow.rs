//! `ezflow` — command-line front end to the simulator.
//!
//! ```text
//! ezflow run --topo chain --hops 4 --secs 300 --controller ezflow
//! ezflow run --topo scenario1 --controller 802.11 --trace 40
//! ezflow run --topo testbed --controller ezflow-testbed --seed 7
//! ezflow model --hops 4 --slots 200000 --adaptive
//! ezflow topologies
//! ```
//!
//! `run` simulates a topology under a chosen controller and prints a
//! per-flow / per-node summary (plus, with `--trace N`, the last N on-air
//! events). `model` runs the §6 slotted random walk. `topologies` lists
//! what `--topo` accepts.

use std::process::ExitCode;

use ezflow::analysis::{ModelConfig, SlottedModel};
use ezflow::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        Some("topologies") => {
            println!("chain      K-hop line (use --hops, default 4); Fig. 1 / §6");
            println!("testbed    the 9-node calibrated campus testbed of Fig. 3 (both flows)");
            println!("scenario1  two 8-hop flows merging toward a gateway (Fig. 5)");
            println!("scenario2  three flows with hidden sources (Fig. 9)");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage:\n  ezflow run --topo <chain|testbed|scenario1|scenario2> \
                 [--hops N] [--secs N] [--controller <802.11|ezflow|ezflow-testbed|diffq|static-q>] \
                 [--seed N] [--loss P] [--rts-cts] [--window N] [--trace N]\n  \
                 ezflow model --hops N --slots N [--adaptive|--fixed] [--seed N]\n  \
                 ezflow topologies"
            );
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}: {v}");
            std::process::exit(2)
        }),
        None => default,
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let topo_name = flag_value(args, "--topo").unwrap_or("chain");
    let hops: usize = parse(args, "--hops", 4);
    let seed: u64 = parse(args, "--seed", 42);
    let loss: f64 = parse(args, "--loss", 0.0);
    let trace: usize = parse(args, "--trace", 0);
    let controller = flag_value(args, "--controller").unwrap_or("ezflow");
    let window: usize = parse(args, "--window", 0);

    let default_secs = match topo_name {
        "scenario1" => 2504,
        "scenario2" => 4500,
        "testbed" => 1800,
        _ => 300,
    };
    let secs: u64 = parse(args, "--secs", default_secs);
    let until = Time::from_secs(secs);

    let mut topo = match topo_name {
        "chain" => chain(hops, Time::ZERO, until),
        "testbed" => testbed(true, true, Time::ZERO, until),
        "scenario1" => {
            let mut t = scenario1();
            clamp_flows(&mut t, until);
            t
        }
        "scenario2" => {
            let mut t = scenario2();
            clamp_flows(&mut t, until);
            t
        }
        other => {
            eprintln!("unknown topology: {other} (try `ezflow topologies`)");
            return ExitCode::from(2);
        }
    };

    if window > 0 {
        // Swap every flow to the closed-loop windowed transport.
        for f in &mut topo.flows {
            f.transport = ezflow::net::Transport::Windowed {
                window,
                ack_payload: 40,
            };
        }
    }
    let make: Box<dyn Fn(usize) -> Box<dyn Controller>> = match controller {
        "802.11" | "plain" => Box::new(|_| Box::new(FixedController::standard())),
        "ezflow" => Box::new(|_| Box::new(EzFlowController::with_defaults())),
        "ezflow-testbed" => {
            Box::new(|_| Box::new(EzFlowController::new(EzFlowConfig::testbed(), 32)))
        }
        "diffq" => Box::new(|_| Box::new(DiffQController::new())),
        "static-q" => {
            let flows = topo.flows.clone();
            let f = static_penalty_factory(&flows, 16, 128);
            Box::new(f)
        }
        other => {
            eprintln!("unknown controller: {other}");
            return ExitCode::from(2);
        }
    };

    let mut spec = NetworkSpec::from_topology(&topo, seed);
    if loss > 0.0 {
        spec.loss = LossModel::uniform(loss);
    }
    spec.mac.rts_cts = flag_present(args, "--rts-cts");
    spec.trace_cap = trace;
    let mut net = Network::new(spec, &*make);

    let wall = std::time::Instant::now();
    net.run_until(until);
    let wall = wall.elapsed();

    println!(
        "{} | {} nodes | controller {} | {} s simulated in {:.2} s wall ({} events)",
        topo.name,
        net.node_count(),
        controller,
        secs,
        wall.as_secs_f64(),
        net.events_processed()
    );

    let half = Time::from_secs(secs / 2);
    println!("\nflows (second-half statistics):");
    for f in &topo.flows {
        let kbps = net.metrics.mean_kbps(f.id, half, until);
        let d = net.metrics.delay_net[&f.id].window(half, until);
        let p95 = net.metrics.delay_net[&f.id]
            .percentile_in(half, until, 0.95)
            .unwrap_or(0.0);
        println!(
            "  F{}: {} -> {} ({} hops): {:7.1} kb/s | delay mean {:6.3} s, p95 {:6.3} s | delivered {}",
            f.id,
            f.path[0],
            f.path.last().unwrap(),
            f.hops(),
            kbps,
            d.mean,
            p95,
            net.metrics.delivered[&f.id]
        );
    }

    println!("\nnodes (mean buffer / cw / airtime share / drops q+retry):");
    let elapsed = until.since(Time::ZERO);
    for n in 0..net.node_count() {
        let b = net.metrics.buffer[n].window(half, until);
        let s = net.mac_stats(n);
        if s.tx_attempts == 0 && b.max == 0.0 {
            continue; // idle bystander
        }
        println!(
            "  N{n:<2} buffer {:5.1} | cw {:5} | air {:4.1}% | drops {:5}+{}",
            b.mean,
            net.cw_min(n),
            100.0 * net.utilization(n, elapsed),
            net.metrics.queue_drops[n],
            net.metrics.retry_drops[n],
        );
    }

    if trace > 0 {
        println!("\nlast {trace} on-air events:");
        for ev in net.trace.iter() {
            println!("  {ev}");
        }
    }
    ExitCode::SUCCESS
}

fn clamp_flows(t: &mut Topology, until: Time) {
    for f in &mut t.flows {
        if f.stop > until {
            f.stop = until;
        }
        if f.start >= until {
            f.start = Time::ZERO;
        }
    }
}

fn cmd_model(args: &[String]) -> ExitCode {
    let hops: usize = parse(args, "--hops", 4);
    let slots: u64 = parse(args, "--slots", 200_000);
    let seed: u64 = parse(args, "--seed", 42);
    let adaptive = !flag_present(args, "--fixed");
    let mut m = SlottedModel::new(ModelConfig {
        hops,
        adaptive,
        ..ModelConfig::default()
    });
    let mut rng = SimRng::new(seed);
    for _ in 0..slots {
        m.step(&mut rng);
    }
    println!(
        "{}-hop slotted model, {} ({slots} slots): h = {}, buffers = {:?},",
        hops,
        if adaptive { "EZ-flow" } else { "fixed cw" },
        m.h(),
        m.buffers()
    );
    println!(
        "windows = {:?}, delivered/slot = {:.3}",
        m.windows(),
        m.delivered as f64 / slots as f64
    );
    ExitCode::SUCCESS
}
