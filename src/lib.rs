//! # ezflow — EZ-Flow: removing turbulence in IEEE 802.11 wireless mesh
//! networks without message passing
//!
//! A from-scratch Rust reproduction of Aziz, Starobinski, Thiran and
//! El Fawal's CoNEXT 2009 paper, complete with every substrate the paper
//! relies on:
//!
//! | crate | what it is |
//! |---|---|
//! | [`sim`] | deterministic discrete-event kernel (scheduler, PCG32, trace) |
//! | [`phy`] | radio model: ranges, capture, per-link loss, shared channel |
//! | [`mac`] | IEEE 802.11 DCF (CSMA/CA, backoff, ACK/retry, `CWmin`) |
//! | [`net`] | queues, static routing, CBR traffic, topologies, event loop |
//! | [`core`] | **EZ-flow** (BOE + CAA) and the baseline controllers |
//! | [`analysis`] | the §6 slotted Markov model and Lyapunov experiments |
//! | [`stats`] | throughput/delay/buffer series, Jain fairness, rendering |
//!
//! ## Quickstart
//!
//! Simulate the paper's headline phenomenon — a 4-hop chain is turbulent
//! under plain 802.11 and calm under EZ-flow:
//!
//! ```
//! use ezflow::prelude::*;
//!
//! let secs = 120;
//! let topo = chain(4, Time::ZERO, Time::from_secs(secs));
//!
//! let mut plain = Network::from_topology(&topo, 7, &|_| {
//!     Box::new(FixedController::standard()) as Box<dyn Controller>
//! });
//! plain.run_until(Time::from_secs(secs));
//!
//! let mut ez = Network::from_topology(&topo, 7, &|_| {
//!     Box::new(EzFlowController::with_defaults()) as Box<dyn Controller>
//! });
//! ez.run_until(Time::from_secs(secs));
//!
//! let half = Time::from_secs(secs / 2);
//! let end = Time::from_secs(secs);
//! let b1_plain = plain.metrics.buffer[1].window(half, end).mean;
//! let b1_ez = ez.metrics.buffer[1].window(half, end).mean;
//! assert!(b1_plain > 40.0, "802.11: first relay saturates");
//! assert!(b1_ez < 5.0, "EZ-flow: first relay stays empty");
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ezflow_analysis as analysis;
pub use ezflow_core as core;
pub use ezflow_mac as mac;
pub use ezflow_net as net;
pub use ezflow_phy as phy;
pub use ezflow_sim as sim;
pub use ezflow_stats as stats;

/// The one-line import for applications.
pub mod prelude {
    pub use ezflow_analysis::{ModelConfig, SlottedModel};
    pub use ezflow_core::{
        static_penalty_factory, Boe, Caa, DiffQController, EzFlowConfig, EzFlowController,
    };
    pub use ezflow_mac::MacConfig;
    pub use ezflow_net::controller::{Controller, ControllerEvent};
    pub use ezflow_net::topo::{chain, scenario1, scenario2, testbed, FlowSpec, Topology};
    pub use ezflow_net::{FixedController, Metrics, Network, NetworkSpec};
    pub use ezflow_phy::{ChannelConfig, Frame, LossModel, Position};
    pub use ezflow_sim::{Duration, SimRng, Time};
    pub use ezflow_stats::{jain_index, render_series};
}
