//! Quickstart: the paper's headline result in 60 lines.
//!
//! Runs a saturated 4-hop chain twice — plain IEEE 802.11, then EZ-flow —
//! and prints buffer occupancy, delay and throughput side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ezflow::prelude::*;

fn main() {
    let secs = 300;
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let topo = chain(4, Time::ZERO, until);

    println!("4-hop chain, saturated 2 Mb/s CBR source, {secs} s\n");
    for (name, ez) in [("IEEE 802.11", false), ("EZ-flow", true)] {
        let make: Box<dyn Fn(usize) -> Box<dyn Controller>> = if ez {
            Box::new(|_| Box::new(EzFlowController::with_defaults()))
        } else {
            Box::new(|_| Box::new(FixedController::standard()))
        };
        let mut net = Network::from_topology(&topo, 7, &*make);
        net.run_until(until);

        println!("== {name} ==");
        for node in 1..4 {
            let b = net.metrics.buffer[node].window(half, until);
            println!(
                "  relay {node}: mean buffer {:5.1} pkts (max {:2.0}), cw = {}",
                b.mean,
                b.max,
                net.cw_min(node)
            );
        }
        let kbps = net.metrics.mean_kbps(0, half, until);
        let delay = net.metrics.delay_net[&0].window(half, until).mean;
        let drops: u64 = net.metrics.queue_drops.iter().sum();
        println!(
            "  source cw = {}, throughput = {kbps:.0} kb/s, delay = {delay:.2} s, relay drops = {drops}\n",
            net.cw_min(0)
        );
    }
    println!("EZ-flow empties the relay buffers, cuts delay by an order of");
    println!("magnitude and still delivers more — without a single control message.");
}
