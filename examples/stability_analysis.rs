//! The §6 analytical model, hands on.
//!
//! Runs the slotted random walk of the paper's stability proof — once
//! with fixed windows (plain 802.11) and once with the EZ-flow dynamics
//! of Eq. 2 — and prints the Lyapunov function h(b) = Σ b_i over time,
//! plus the per-region drift table that underlies Theorem 1.
//!
//! ```text
//! cargo run --release --example stability_analysis
//! ```

use ezflow::analysis::{drift_by_region, ModelConfig, SlottedModel};
use ezflow::prelude::*;

fn main() {
    let slots = 400_000u64;
    println!("4-hop slotted model, {slots} slots per walk\n");

    for (name, adaptive) in [("fixed cw = 32 (802.11)", false), ("EZ-flow (Eq. 2)", true)] {
        let mut m = SlottedModel::new(ModelConfig {
            adaptive,
            ..ModelConfig::default()
        });
        let mut rng = SimRng::new(17);
        let mut series = Vec::new();
        for s in 0..slots {
            m.step(&mut rng);
            if s % 2_000 == 0 {
                series.push((s as f64, m.h() as f64));
            }
        }
        println!("== {name} ==");
        println!(
            "final h = {}, buffers = {:?}, windows = {:?}, delivered/slot = {:.3}",
            m.h(),
            m.buffers(),
            m.windows(),
            m.delivered as f64 / slots as f64
        );
        println!("{}", render_series("h(b) over slots", &series, 72, 10));
    }

    println!("per-region one-step drift under EZ-flow (outside S, Foster condition):");
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "region", "visits", "E[dh]", "E[db1]"
    );
    for r in drift_by_region(ModelConfig::default(), 20_000, 25, 5) {
        if r.visits == 0 {
            continue;
        }
        println!(
            "{:>8} {:>10} {:>10.3} {:>10.3}",
            ["A", "B", "C", "D", "E", "F", "G", "H"][r.region],
            r.visits,
            r.mean_drift,
            r.mean_drift_b1
        );
    }
}
