//! Writing your own flow controller against the `Controller` trait.
//!
//! The EZ-flow reproduction is also a workbench: any hop-by-hop
//! flow-control idea that actuates `CWmin` can be dropped into the same
//! harness and compared against the paper's mechanism on the same
//! topologies. This example implements a deliberately naive
//! "overhear-rate" controller — it never estimates buffers, it just
//! throttles when it overhears *fewer* forwards than it sends — and races
//! it against EZ-flow on the turbulent 4-hop chain.
//!
//! ```text
//! cargo run --release --example custom_controller
//! ```

use ezflow::net::controller::ControllerFactory;
use ezflow::prelude::*;

/// Throttle when the successor forwards less than we feed it.
///
/// Every `window` acknowledged sends, compare with how many forwards we
/// overheard from the successor in the same span: if the successor kept
/// up, halve `CWmin` (down to 16); if it fell behind by more than 20%,
/// double it (up to 2^15). No buffer estimation, no message passing —
/// but also none of EZ-flow's precision, as the output shows.
struct OverhearRate {
    window: u32,
    sent: u32,
    overheard: u32,
    successor: Option<usize>,
    cw: u32,
}

impl OverhearRate {
    fn new() -> Self {
        OverhearRate {
            window: 50,
            sent: 0,
            overheard: 0,
            successor: None,
            cw: 32,
        }
    }
}

impl Controller for OverhearRate {
    fn on_event(&mut self, _now: Time, event: ControllerEvent<'_>) -> Option<u32> {
        match event {
            ControllerEvent::SentToSuccessor { successor, frame } => {
                self.successor = Some(successor);
                if successor == frame.final_dst {
                    // Sink successor consumes instantly: count it as kept-up.
                    self.overheard += 1;
                }
                self.sent += 1;
                if self.sent < self.window {
                    return None;
                }
                let ratio = self.overheard as f64 / self.sent as f64;
                self.sent = 0;
                self.overheard = 0;
                let new = if ratio < 0.8 {
                    (self.cw * 2).min(32_768)
                } else {
                    (self.cw / 2).max(16)
                };
                (new != self.cw).then(|| {
                    self.cw = new;
                    new
                })
            }
            ControllerEvent::Overheard { frame } => {
                if Some(frame.src) == self.successor {
                    self.overheard += 1;
                }
                None
            }
            ControllerEvent::NeighborBacklog { .. } => None,
        }
    }

    fn name(&self) -> &'static str {
        "overhear-rate"
    }
}

fn main() {
    let secs = 600;
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let topo = chain(4, Time::ZERO, until);

    let entries: Vec<(&str, ControllerFactory)> = vec![
        (
            "802.11",
            Box::new(|_| Box::new(FixedController::standard())),
        ),
        (
            "EZ-flow",
            Box::new(|_| Box::new(EzFlowController::with_defaults())),
        ),
        (
            "overhear-rate (this example)",
            Box::new(|_| Box::new(OverhearRate::new())),
        ),
    ];

    println!("4-hop chain shoot-out, {secs} s\n");
    for (name, make) in entries {
        let mut net = Network::from_topology(&topo, 11, &*make);
        net.run_until(until);
        let kbps = net.metrics.mean_kbps(0, half, until);
        let delay = net.metrics.delay_net[&0].window(half, until).mean;
        let b1 = net.metrics.buffer[1].window(half, until).mean;
        println!(
            "{name:>28}: {kbps:6.1} kb/s, delay {delay:5.2} s, b1 {b1:5.1} pkts, cw0 {}",
            net.cw_min(0)
        );
    }
    println!("\nthe naive rate controller helps, but EZ-flow's exact buffer");
    println!("estimates let it hold queues near zero at higher throughput.");
}
