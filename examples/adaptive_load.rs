//! Adaptivity to a changing traffic matrix (§5.2's key property).
//!
//! Two 8-hop flows merge toward a gateway (the paper's scenario 1). F2
//! appears mid-run and leaves later; EZ-flow re-discovers a stable window
//! assignment each time, with no configuration and no messages. The
//! program prints the contention windows as a time series so you can
//! watch the adaptation happen.
//!
//! ```text
//! cargo run --release --example adaptive_load
//! ```

use ezflow::prelude::*;

fn main() {
    // Compressed version of the paper's timeline: F1 alone, then both,
    // then F1 alone again.
    let (t1, t2, t3) = (
        Time::from_secs(300),
        Time::from_secs(600),
        Time::from_secs(900),
    );
    let mut topo = scenario1();
    topo.flows[0].start = Time::from_secs(5);
    topo.flows[0].stop = t3;
    topo.flows[1].start = t1;
    topo.flows[1].stop = t2;

    let mut net = Network::from_topology(&topo, 3, &|_| {
        Box::new(EzFlowController::with_defaults()) as Box<dyn Controller>
    });

    println!("scenario 1 under EZ-flow; F2 active 300..600 s\n");
    println!(
        "{:>5}  {:>6} {:>6} {:>6} {:>6} | {:>9} {:>9}",
        "t[s]", "cw12", "cw10", "cw11", "cw9", "F1 kb/s", "F2 kb/s"
    );
    let step = Duration::from_secs(60);
    let mut at = Time::ZERO + step;
    while at <= t3 {
        net.run_until(at);
        let from = at - step;
        println!(
            "{:>5}  {:>6} {:>6} {:>6} {:>6} | {:>9.1} {:>9.1}",
            at.as_secs_f64() as u64,
            net.cw_min(12),
            net.cw_min(10),
            net.cw_min(11),
            net.cw_min(9),
            net.metrics.mean_kbps(0, from, at),
            net.metrics.mean_kbps(1, from, at),
        );
        at += step;
    }

    println!("\ncontention-window trace of the F1 source (node 12):");
    let pts: Vec<(f64, f64)> = net.metrics.cw[12]
        .points()
        .into_iter()
        .map(|(t, v)| (t, v.log2()))
        .collect();
    println!("{}", render_series("log2(cw12) over time", &pts, 72, 10));
    println!("note the climb when F2 arrives and the release after it leaves.");
}
