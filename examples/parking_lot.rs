//! The parking-lot scenario of the paper's testbed (§4.3, Table 2).
//!
//! A 7-hop flow F1 shares the tail of its path with a 4-hop flow F2 whose
//! source sits near the middle of the chain. Under plain 802.11 the short
//! flow's greedy source completely starves the long flow (the paper
//! measured 7 kb/s vs 143 kb/s, Jain index 0.55); EZ-flow throttles both
//! sources just enough to share (71 vs 110, index 0.96).
//!
//! ```text
//! cargo run --release --example parking_lot
//! ```

use ezflow::prelude::*;

fn main() {
    let secs = 900;
    let until = Time::from_secs(secs);
    let warm = Time::from_secs(secs / 10);
    // The calibrated 9-node campus testbed with both flows on.
    let topo = testbed(true, true, Time::ZERO, until);

    println!("parking lot on the calibrated testbed ({secs} s)\n");
    for (name, ez) in [("IEEE 802.11", false), ("EZ-flow", true)] {
        let make: Box<dyn Fn(usize) -> Box<dyn Controller>> = if ez {
            // The testbed configuration carries the MadWifi CWmin <= 2^10
            // clamp the paper had to live with.
            Box::new(|_| Box::new(EzFlowController::new(EzFlowConfig::testbed(), 32)))
        } else {
            Box::new(|_| Box::new(FixedController::standard()))
        };
        let mut net = Network::from_topology(&topo, 21, &*make);
        net.run_until(until);

        let k1 = net.metrics.mean_kbps(0, warm, until);
        let k2 = net.metrics.mean_kbps(1, warm, until);
        let fi = jain_index(&[k1, k2]);
        println!("== {name} ==");
        println!("  F1 (7 hops): {k1:6.1} kb/s");
        println!("  F2 (4 hops): {k2:6.1} kb/s");
        println!("  Jain fairness index: {fi:.2}");
        println!(
            "  aggregate: {:.1} kb/s, source windows: cw0 = {}, cw0' = {}\n",
            k1 + k2,
            net.cw_min(0),
            net.cw_min(ezflow::net::topo::TESTBED_F2_SRC),
        );
    }
}
