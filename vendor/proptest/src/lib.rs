//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The real `proptest` crate cannot be fetched in the build environment
//! (no network access to a registry), so this vendored crate implements
//! the same surface with a deliberately simple engine: every test case is
//! drawn from a deterministic per-test RNG, run, and reported. There is
//! no shrinking — a failing case panics with the generated input so it
//! can be minimised by hand or replayed.
//!
//! Supported surface (tracked against the workspace's test files):
//! integer/float range strategies, `any::<T>()`, `Just`, tuples,
//! `prop::collection::vec`, `prop::bool::ANY`, `prop::option::of`,
//! `prop_oneof!` (weighted and unweighted), `.prop_map`, `proptest!`
//! with optional `#![proptest_config(...)]`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, and `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator used to drive test-case sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// A generator seeded from a test name, so each `proptest!` function
    /// gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Errors and configuration
// ---------------------------------------------------------------------------

/// Why a single generated case failed (or was rejected by `prop_assume!`).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains which one.
    Fail(String),
    /// The case did not meet a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Per-block configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline CI fast while still
        // exercising plenty of the space.
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Box a strategy behind the object-safe core; used by `prop_oneof!` to
/// unify heterogeneous arm types.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Run one generated case. This exists so the `proptest!` macro can hand
/// the sampled tuple to the test body with its concrete type pinned by
/// `V` — a bare closure with an inferred argument pattern would leave
/// element types ambiguous in bodies that only use them generically.
pub fn check_case<V, F>(values: V, body: F) -> Result<(), TestCaseError>
where
    F: FnOnce(V) -> Result<(), TestCaseError>,
{
    body(values)
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! uint_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

uint_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategies!(A);
tuple_strategies!(A, B);
tuple_strategies!(A, B, C);
tuple_strategies!(A, B, C, D);
tuple_strategies!(A, B, C, D, E);
tuple_strategies!(A, B, C, D, E, F);

/// Values with a canonical "any value" distribution.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uint_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

uint_arbitrary!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A weighted union of boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// A union over weighted arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, arm) in &self.arms {
            let w = *w as u64;
            if pick < w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed mid-draw")
    }
}

// ---------------------------------------------------------------------------
// Namespaced strategy constructors (the `prop::` paths)
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-of-min, exclusive-of-max element-count range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// Either boolean, 50/50.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    #[derive(Clone, Copy, Debug)]
    pub struct OptionStrategy<S>(S);

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// `assert!` that reports through the proptest harness instead of
/// panicking directly, so the failing input is printed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{} == {} failed: {:?} != {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{:?} != {:?}: {}",
                lhs,
                rhs,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// A weighted choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$(($weight as u32, $crate::boxed($arm))),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $arm),+]
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let values = $crate::Strategy::sample(&strategy, &mut rng);
                let outcome = $crate::check_case(values.clone(), |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        // Mirror proptest's global rejection cap loosely.
                        assert!(
                            rejected < 4 * config.cases + 16,
                            "too many rejected cases in {}",
                            stringify!($name)
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  input: {:?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            values
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let w = Strategy::sample(&(4u32..=15), &mut rng);
            assert!((4..=15).contains(&w));
            let f = Strategy::sample(&(0f64..10.0), &mut rng);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::new(9);
        let strat = crate::collection::vec(0u64..10, 3..6);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((3..6).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0u64..10, 8);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 8);
    }

    #[test]
    fn oneof_respects_support() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![3 => Just(1u8), 0 => Just(2u8), 1 => Just(3u8)];
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v == 1 || v == 3, "zero-weight arm must never fire");
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(4);
        let strat = (4u32..=15).prop_map(|e| 1u32 << e);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v.is_power_of_two() && (16..=32768).contains(&v));
        }
    }

    proptest! {
        /// The macro itself: multi-arg with trailing comma, assume, and
        /// both assert flavours.
        #[test]
        fn macro_surface(
            a in 0u64..100,
            flip in prop::bool::ANY,
        ) {
            prop_assume!(a != 13);
            prop_assert!(a < 100, "a={} out of range", a);
            let doubled = a * 2;
            prop_assert_eq!(doubled % 2, 0);
            if flip {
                return Ok(());
            }
        }
    }
}
