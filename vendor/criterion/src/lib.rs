//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The real `criterion` crate cannot be fetched in the build environment,
//! so this vendored crate provides the same bench-authoring surface —
//! `Criterion`, `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!` — backed by a
//! plain wall-clock timer. It reports a mean per-iteration time on
//! stdout and does no statistics, plotting, or comparison; it exists so
//! `cargo bench` compiles and gives a usable first-order number.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Target wall time per benchmark; iterations are calibrated to fit.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(300);

/// Identifies one benchmark within a group: a name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`, as the real crate does.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            // The result is dropped, not fed to a black box; workloads in
            // this workspace all have externally visible state, so the
            // optimizer cannot delete them.
            let _ = f();
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, to size the real batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = TARGET_SAMPLE_TIME.as_nanos() / sample_size.max(1) as u128;
    let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed / iters as u32;
        best = best.min(mean);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean = if total_iters > 0 {
        total / total_iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<40} mean {mean:>12.3?}   best {best:>12.3?}   ({sample_size} samples x {iters} iters)");
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Run an unparameterised benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// End the group. (No-op beyond marking intent, as in the real API.)
    pub fn finish(self) {}
}

/// Bundle bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let hops = 3usize;
        g.bench_with_input(BenchmarkId::new("param", hops), &hops, |b, &h| {
            b.iter(|| h * 2)
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
