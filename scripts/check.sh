#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo doc (no deps, deny warnings) =="
# Our crates only: vendored dev stubs (vendor/*) are not held to our
# rustdoc standards.
DOC_FLAGS=(-p ezflow)
for d in crates/*/; do DOC_FLAGS+=(-p "ezflow-$(basename "$d")"); done
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet "${DOC_FLAGS[@]}"

echo "== parallel sweep smoke (seeds, --quick --jobs=2) =="
cargo run --release -q -p ezflow-bench --bin experiments -- --quick --jobs=2 seeds >/dev/null

echo "== hot-path determinism gate (hotpath_bench --check) =="
# Byte-compares the perf-zeroed run snapshots against the committed
# golden (event counts, never wall time — non-flaky), and warns if
# events/s fell >20% below the recorded BENCH_sim_speed.json entry.
cargo run --release -q -p ezflow-bench --bin hotpath_bench -- --check

echo "all checks passed"
