#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo doc (no deps, deny warnings) =="
# Our crates only: vendored dev stubs (vendor/*) are not held to our
# rustdoc standards.
DOC_FLAGS=(-p ezflow)
for d in crates/*/; do DOC_FLAGS+=(-p "ezflow-$(basename "$d")"); done
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet "${DOC_FLAGS[@]}"

echo "== parallel sweep smoke (seeds, --quick --jobs=2) =="
cargo run --release -q -p ezflow-bench --bin experiments -- --quick --jobs=2 seeds >/dev/null

echo "== heap-backend fallback smoke (seeds, --sched=heap) =="
# The wheel is the default everywhere; this keeps the heap fallback
# path exercised end-to-end so it can never rot.
cargo run --release -q -p ezflow-bench --bin experiments -- --quick --jobs=2 --sched=heap seeds >/dev/null

echo "== sharded-engine smoke (seeds, --shards=2) =="
# The conservative-PDES shard path must run end-to-end; byte-identity to
# serial is pinned by crates/net/tests/shards.rs and hotpath_bench --check.
cargo run --release -q -p ezflow-bench --bin experiments -- --quick --jobs=2 --shards=2 seeds >/dev/null

echo "== scheduler equivalence proptests (heap vs wheel) =="
# Randomized schedule/cancel workloads must pop identically from both
# backends (exact (at, seq) order, same high-water stats).
cargo test -q -p ezflow-sim --test sched_equiv

echo "== hot-path determinism gate (hotpath_bench --check) =="
# Byte-compares the perf-zeroed run snapshots against the committed
# golden (event counts, never wall time — non-flaky), and warns if
# events/s fell >20% below the recorded BENCH_sim_speed.json entry.
# These runs leave the flight recorder off, so this is also the
# recorder-off byte-identity gate: disabled-recorder code must not
# change a single counter. The same gate re-runs every workload at
# shards=2 and shards=4 and requires byte-identity to the serial run.
cargo run --release -q -p ezflow-bench --bin hotpath_bench -- --check

echo "== mesh scale budget smoke (mesh_bench, non-recording) =="
# The 1024-node mesh must stay inside its events/s floor and peak-RSS
# ceiling. No --record: check runs never rewrite BENCH_sim_speed.json.
cargo run --release -q -p ezflow-bench --bin mesh_bench >/dev/null

echo "== flight recorder + trace CLI smoke =="
# A short traced scenario-1 run exports lifecycle JSONL; the trace
# inspector must reconstruct journeys and a drop census from it.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release -q -p ezflow-bench --bin experiments -- \
  --quick --time=0.02 --trace-dir="$TRACE_TMP" scenario1 >/dev/null 2>&1 || true
JSONL="$TRACE_TMP/scenario1_80211.jsonl"
[ -s "$JSONL" ] || { echo "trace smoke: no lifecycle export at $JSONL"; exit 1; }
cargo run --release -q -p ezflow-bench --bin trace -- drops --by-cause "$JSONL" >/dev/null
cargo run --release -q -p ezflow-bench --bin trace -- drops --by-node "$JSONL" >/dev/null
cargo run --release -q -p ezflow-bench --bin trace -- worst --flow=0 --top=3 "$JSONL" >/dev/null
PKT="$(cargo run --release -q -p ezflow-bench --bin trace -- worst --flow=0 --top=1 "$JSONL" \
  | awk 'NR==3 {print $1}')"
# Plain grep (not -q) so the reader drains the whole stream — an early
# close would hit the writer as a broken pipe.
cargo run --release -q -p ezflow-bench --bin trace -- journey --packet="$PKT" "$JSONL" \
  | grep DELIVERED >/dev/null
echo "trace CLI reconstructed packet $PKT's journey"

echo "== telemetry bus + trace telemetry smoke =="
# A short telemetry-armed scenario-1 run must stream at least one
# sample-window JSONL record, surface a stability section in its JSON
# snapshots, and render through the telemetry inspector. (Shares
# TRACE_TMP and its EXIT trap; the subdir keeps the telemetry stream
# apart from the same-named lifecycle export above.)
TEL_DIR="$TRACE_TMP/telemetry"
cargo run --release -q -p ezflow-bench --bin experiments -- \
  --quick --time=0.02 --telemetry-dir="$TEL_DIR" --json="$TRACE_TMP/snap.json" \
  scenario1 >/dev/null 2>&1 || true
TEL_JSONL="$TEL_DIR/scenario1_80211.jsonl"
[ -s "$TEL_JSONL" ] || { echo "telemetry smoke: no stream at $TEL_JSONL"; exit 1; }
WINDOWS="$(wc -l < "$TEL_JSONL")"
[ "$WINDOWS" -ge 1 ] || { echo "telemetry smoke: zero sample windows"; exit 1; }
grep -q '"stability"' "$TRACE_TMP/snap.json" \
  || { echo "telemetry smoke: snapshots lack a stability section"; exit 1; }
grep -q '"worst_amplitude_mean"' "$TRACE_TMP/snap.json" \
  || { echo "telemetry smoke: stability section malformed"; exit 1; }
cargo run --release -q -p ezflow-bench --bin trace -- telemetry --top=3 "$TEL_JSONL" >/dev/null
echo "telemetry stream captured $WINDOWS sample windows"

echo "== controller audit + trace controller smoke =="
# A short audit-armed scenario-1 run must stream decision/sample JSONL
# records, surface a controller section in its JSON snapshots, and
# render through the controller inspector. (Shares TRACE_TMP and its
# EXIT trap.)
AUD_DIR="$TRACE_TMP/audit"
cargo run --release -q -p ezflow-bench --bin experiments -- \
  --quick --time=0.02 --audit-dir="$AUD_DIR" --json="$TRACE_TMP/audit_snap.json" \
  scenario1 >/dev/null 2>&1 || true
AUD_JSONL="$AUD_DIR/scenario1_EZ-flow.audit.jsonl"
[ -s "$AUD_JSONL" ] || { echo "audit smoke: no stream at $AUD_JSONL"; exit 1; }
grep -q '"kind":"sample"' "$AUD_JSONL" \
  || { echo "audit smoke: no estimation samples in stream"; exit 1; }
grep -Eq '"schema": ?2' "$TRACE_TMP/audit_snap.json" \
  || { echo "audit smoke: snapshots lack the schema version"; exit 1; }
grep -q '"decisions_total"' "$TRACE_TMP/audit_snap.json" \
  || { echo "audit smoke: snapshots lack a controller section"; exit 1; }
cargo run --release -q -p ezflow-bench --bin trace -- controller --top=3 "$AUD_JSONL" >/dev/null
cargo run --release -q -p ezflow-bench --bin trace -- drops --by-link "$JSONL" >/dev/null
RECORDS="$(wc -l < "$AUD_JSONL")"
echo "controller audit streamed $RECORDS records"

echo "== scenario spec smoke (--spec=scenarios/scenario1.json) =="
# A committed spec must drive the full parse -> compile -> sweep -> report
# pipeline and exit 0. time=0.01 simulates ~25 s — past scenario 1's t=5 s
# flow starts, so the "traffic flowed" check is real, not vacuous.
# (Shares TRACE_TMP and its EXIT trap.)
cargo run --release -q -p ezflow-bench --bin experiments -- \
  --quick --time=0.01 --spec=scenarios/scenario1.json >/dev/null
echo "scenario1.json ran end-to-end"

echo "== scenario spec schema-error smoke =="
# A malformed spec must fail loudly: nonzero exit plus a message that
# points at the offending field, not a panic or a silent zero.
BAD_SPEC="$TRACE_TMP/bad_spec.json"
printf '{"name": "bad", "duration_secs": 1, "topology": {"kind": "donut"}}\n' >"$BAD_SPEC"
if ERR="$(cargo run --release -q -p ezflow-bench --bin experiments -- \
    --quick --spec="$BAD_SPEC" 2>&1 >/dev/null)"; then
  echo "schema smoke: malformed spec exited 0"; exit 1
fi
echo "$ERR" | grep -q 'topology.kind' \
  || { echo "schema smoke: error did not name the bad field: $ERR"; exit 1; }
echo "malformed spec rejected with a pointed message"

echo "all checks passed"
