#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "all checks passed"
