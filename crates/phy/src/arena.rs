//! Generation-tagged frame slab.
//!
//! Every live [`Frame`] in a simulation is owned by one [`FrameArena`]
//! (the network owns it); everything else — transmit queues, the MAC's
//! held frame, the channel's on-air set, the receive fan-out — carries a
//! copyable 8-byte [`FrameId`] handle instead of a ~100-byte `Frame`
//! value. Handing a frame across a layer is then a register move, not a
//! struct memcpy, and "who owns this frame" becomes an explicit protocol:
//! an id is allocated once, moved along the packet's lifecycle, and
//! released exactly once at a terminal event (delivered at the sink,
//! dropped, consumed by the receiving MAC).
//!
//! ## Generations
//!
//! Slots are recycled through a free list. Each slot carries a generation
//! counter, bumped on release; an id is only valid while its generation
//! matches the slot's. A stale id (use-after-release, double release)
//! trips a `debug_assert` — release builds skip the check, keeping
//! [`FrameArena::get`] a bare indexed load on the hot path. The leak
//! check is the dual: [`FrameArena::live`] must equal the sum of frames
//! the layers admit to holding, which the engine asserts (debug builds)
//! every time its event loop goes quiescent.

use crate::frame::Frame;

/// Handle to a frame stored in a [`FrameArena`].
///
/// 8 bytes, `Copy`; the cheap currency the queues, the MAC and the
/// channel trade in. A default-built id is dangling and trips the debug
/// generation check on first use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FrameId {
    index: u32,
    gen: u32,
}

impl Default for FrameId {
    fn default() -> Self {
        // No live slot ever carries this generation pairing, so a
        // default id dereferenced by mistake fails loudly in debug.
        FrameId {
            index: u32::MAX,
            gen: u32::MAX,
        }
    }
}

struct Slot {
    gen: u32,
    frame: Frame,
}

/// Slab of frames with generation-tagged handles.
pub struct FrameArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    allocated: u64,
    reused: u64,
}

impl Default for FrameArena {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        FrameArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            allocated: 0,
            reused: 0,
        }
    }

    /// Stores `frame`, returning its handle. Reuses a released slot when
    /// one is free; the slab only grows when every slot is live.
    pub fn alloc(&mut self, frame: Frame) -> FrameId {
        self.allocated += 1;
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        match self.free.pop() {
            Some(index) => {
                self.reused += 1;
                let slot = &mut self.slots[index as usize];
                slot.frame = frame;
                FrameId {
                    index,
                    gen: slot.gen,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(Slot { gen: 0, frame });
                FrameId { index, gen: 0 }
            }
        }
    }

    /// Stores a copy of the frame behind `id` — the arena-native form of
    /// `frame.clone()` (the MAC uses it to put a retryable copy on the
    /// air while keeping the original for the next attempt).
    pub fn dup(&mut self, id: FrameId) -> FrameId {
        let frame = *self.get(id);
        self.alloc(frame)
    }

    /// Reads the frame behind `id`.
    #[inline]
    pub fn get(&self, id: FrameId) -> &Frame {
        let slot = &self.slots[id.index as usize];
        debug_assert_eq!(slot.gen, id.gen, "stale FrameId dereferenced");
        &slot.frame
    }

    /// Mutates the frame behind `id` (hop rewrites, retry stamping).
    #[inline]
    pub fn get_mut(&mut self, id: FrameId) -> &mut Frame {
        let slot = &mut self.slots[id.index as usize];
        debug_assert_eq!(slot.gen, id.gen, "stale FrameId dereferenced");
        &mut slot.frame
    }

    /// Frees `id`'s slot, returning a copy of the frame for any terminal
    /// bookkeeping (delivery metrics, drop attribution). The slot's
    /// generation advances, invalidating every copy of the id.
    pub fn release(&mut self, id: FrameId) -> Frame {
        let slot = &mut self.slots[id.index as usize];
        debug_assert_eq!(slot.gen, id.gen, "double release or stale FrameId");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.index);
        debug_assert!(self.live > 0, "release with no live frames");
        self.live -= 1;
        slot.frame
    }

    /// True iff `id` currently addresses a live frame (its generation
    /// matches). Test and leak-audit helper — the hot path never asks.
    pub fn contains(&self, id: FrameId) -> bool {
        self.slots
            .get(id.index as usize)
            .is_some_and(|s| s.gen == id.gen)
    }

    /// Number of live frames.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Deepest live population ever reached — the arena's memory
    /// footprint in frames (the slab never shrinks).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total allocations ever made.
    pub fn allocated_total(&self) -> u64 {
        self.allocated
    }

    /// Allocations served by recycling a released slot rather than
    /// growing the slab — the steady state should be all of them.
    pub fn slot_reuses(&self) -> u64 {
        self.reused
    }

    /// Slab capacity in slots (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_sim::Time;

    fn frame(seq: u64) -> Frame {
        Frame::data(seq, 0, 0, 4, 1000, Time::ZERO)
    }

    #[test]
    fn alloc_get_release_round_trip() {
        let mut a = FrameArena::new();
        let id = a.alloc(frame(7));
        assert_eq!(a.get(id).seq, 7);
        assert_eq!(a.live(), 1);
        a.get_mut(id).dst = 3;
        assert_eq!(a.get(id).dst, 3);
        let f = a.release(id);
        assert_eq!(f.seq, 7);
        assert_eq!(f.dst, 3);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn released_slot_is_reused_with_a_new_generation() {
        let mut a = FrameArena::new();
        let first = a.alloc(frame(1));
        a.release(first);
        let second = a.alloc(frame(2));
        // Same slot, different generation: the slab did not grow.
        assert_eq!(a.capacity(), 1);
        assert_ne!(first, second);
        assert!(!a.contains(first), "old id must be invalidated");
        assert!(a.contains(second));
        assert_eq!(a.get(second).seq, 2);
        assert_eq!(a.slot_reuses(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale FrameId")]
    fn stale_id_deref_panics_in_debug() {
        let mut a = FrameArena::new();
        let id = a.alloc(frame(1));
        a.release(id);
        a.alloc(frame(2));
        let _ = a.get(id);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn double_release_panics_in_debug() {
        let mut a = FrameArena::new();
        let id = a.alloc(frame(1));
        a.release(id);
        a.release(id);
    }

    #[test]
    fn dup_copies_and_stays_independent() {
        let mut a = FrameArena::new();
        let id = a.alloc(frame(9));
        let copy = a.dup(id);
        a.get_mut(copy).retry = true;
        assert!(!a.get(id).retry, "dup must not alias the original");
        assert_eq!(a.get(copy).seq, 9);
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn high_water_tracks_peak_population() {
        let mut a = FrameArena::new();
        let ids: Vec<_> = (0..5).map(|i| a.alloc(frame(i))).collect();
        for id in &ids {
            a.release(*id);
        }
        assert_eq!(a.live(), 0);
        assert_eq!(a.high_water(), 5, "peak, not current");
        a.alloc(frame(9));
        assert_eq!(a.high_water(), 5);
        assert_eq!(a.capacity(), 5, "slab never shrinks");
    }

    proptest::proptest! {
        /// Oracle equivalence: against a plain clone-based store (a map of
        /// owned `Frame` values), a random script of alloc / mutate /
        /// release / dup operations reads back identical frames, and the
        /// live population matches at every step. This is the contract
        /// that lets the MAC/engine swap owned frames for handles without
        /// changing a single observable byte.
        #[test]
        fn arena_matches_clone_based_oracle(
            ops in proptest::collection::vec((0u8..4, proptest::prelude::any::<u64>()), 1..200)
        ) {
            use proptest::prelude::prop_assert_eq;
            let mut arena = FrameArena::new();
            let mut oracle: Vec<(FrameId, Frame)> = Vec::new();
            for (op, x) in ops {
                match op {
                    // Alloc a fresh frame.
                    0 => {
                        let f = frame(x);
                        let id = arena.alloc(f);
                        oracle.push((id, f));
                    }
                    // Mutate one live frame the same way on both sides.
                    1 if !oracle.is_empty() => {
                        let i = (x as usize) % oracle.len();
                        let (id, f) = &mut oracle[i];
                        f.hop_entered = Time::from_micros(x);
                        f.retry = x % 2 == 0;
                        let g = arena.get_mut(*id);
                        g.hop_entered = Time::from_micros(x);
                        g.retry = x % 2 == 0;
                    }
                    // Release one live frame; the returned copy must match.
                    2 if !oracle.is_empty() => {
                        let i = (x as usize) % oracle.len();
                        let (id, f) = oracle.swap_remove(i);
                        let got = arena.release(id);
                        prop_assert_eq!(got.seq, f.seq);
                        prop_assert_eq!(got.hop_entered, f.hop_entered);
                        prop_assert_eq!(got.retry, f.retry);
                    }
                    // Dup one live frame (the MAC's per-attempt copy).
                    3 if !oracle.is_empty() => {
                        let i = (x as usize) % oracle.len();
                        let (id, f) = oracle[i];
                        let copy = arena.dup(id);
                        oracle.push((copy, f));
                    }
                    _ => {}
                }
                prop_assert_eq!(arena.live(), oracle.len());
                for (id, f) in &oracle {
                    let got = arena.get(*id);
                    prop_assert_eq!(got.seq, f.seq);
                    prop_assert_eq!(got.hop_entered, f.hop_entered);
                    prop_assert_eq!(got.retry, f.retry);
                }
            }
            prop_assert_eq!(arena.allocated_total() as usize >= arena.high_water(), true);
        }
    }
}
