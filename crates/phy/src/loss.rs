//! Stochastic link-loss models.
//!
//! Two distinct uses, same mechanism:
//!
//! * **Fault injection** (smoltcp-style `--drop-chance`): a uniform
//!   Bernoulli loss on every link stresses MAC retransmission and the BOE's
//!   tolerance to missed overhearings.
//! * **Testbed calibration**: the paper's campus deployment (Fig. 3 /
//!   Table 1) has links of very different quality — 845 kb/s down to
//!   408 kb/s on the bottleneck `l2`. We reproduce those capacities by
//!   assigning each *directed* link a packet-error rate, so that the
//!   isolated saturation throughput of the simulated link matches the
//!   measured one.

use std::collections::HashMap;

use ezflow_sim::{Duration, SimRng, Time};

/// A two-state Gilbert-Elliott burst-loss process: the channel alternates
/// between a Good state (loss `p_good`, usually ~0) and a Bad state (loss
/// `p_bad`, large), with geometric sojourn times. Fades on real links are
/// *bursty* — consecutive frames die together — which stresses the BOE
/// much harder than independent (Bernoulli) loss: whole runs of
/// overhearings disappear at once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// P(Good -> Bad) per frame.
    pub p_g2b: f64,
    /// P(Bad -> Good) per frame.
    pub p_b2g: f64,
    /// Loss probability while Good.
    pub p_good: f64,
    /// Loss probability while Bad.
    pub p_bad: f64,
}

impl GilbertElliott {
    /// A classic bursty profile: ~2% of frames enter a fade that lasts
    /// ~10 frames and kills ~80% of them. Long-run loss ≈ 13%.
    pub fn classic() -> Self {
        GilbertElliott {
            p_g2b: 0.02,
            p_b2g: 0.1,
            p_good: 0.0,
            p_bad: 0.8,
        }
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_g2b / (self.p_g2b + self.p_b2g)
    }

    /// Long-run average loss rate.
    pub fn mean_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        (1.0 - bad) * self.p_good + bad * self.p_bad
    }
}

/// A deterministic link up/down schedule: the link repeats `up` of
/// service then `down` of outage, the first up period starting at
/// `phase`. While down, every frame on the link is destroyed — an
/// interface reset, a duty-cycled radio, a periodic deep fade. Purely a
/// function of simulated time, so it consumes no RNG draws and cannot
/// perturb the random stream of any coexisting loss process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnWindow {
    /// Length of each up (serving) interval.
    pub up: Duration,
    /// Length of each down (outage) interval.
    pub down: Duration,
    /// Offset of the first up interval's start within the cycle.
    pub phase: Duration,
}

impl ChurnWindow {
    /// An alternating schedule starting up at `phase`.
    pub fn new(up: Duration, down: Duration, phase: Duration) -> Self {
        assert!(
            up.as_micros() + down.as_micros() > 0,
            "churn cycle must be nonzero"
        );
        ChurnWindow { up, down, phase }
    }

    /// Whether the link is in an outage at `now`.
    pub fn is_down(&self, now: Time) -> bool {
        let cycle = self.up.as_micros() + self.down.as_micros();
        if cycle == 0 {
            return false;
        }
        // Position within the cycle, shifted so the cycle starts at
        // `phase` (modular, so instants before the phase wrap correctly).
        let pos = (now.as_micros() + cycle - (self.phase.as_micros() % cycle)) % cycle;
        pos >= self.up.as_micros()
    }
}

/// Packet-error process applied to otherwise-successful receptions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LossModel {
    /// Loss probability applied to every (src, dst) pair not listed in
    /// `per_link`.
    pub default_per: f64,
    /// Per-directed-link loss probability overrides.
    pub per_link: HashMap<(usize, usize), f64>,
    /// Optional burst-loss overlay applied to every link on top of the
    /// Bernoulli process. State is tracked per directed link.
    pub burst: Option<GilbertElliott>,
    /// Per-directed-link Gilbert-Elliott overrides: links listed here run
    /// their own burst parameters instead of the global `burst` overlay.
    pub burst_link: HashMap<(usize, usize), GilbertElliott>,
    /// Per-directed-link deterministic up/down schedules; a frame sent
    /// while its link is down is destroyed outright (no RNG consumed).
    pub churn: HashMap<(usize, usize), ChurnWindow>,
    /// Per-directed-link Gilbert-Elliott state (true = Bad). Interior
    /// bookkeeping; serialized runs re-derive it deterministically.
    burst_state: HashMap<(usize, usize), bool>,
}

impl LossModel {
    /// No loss at all (ns-2 style ideal links).
    pub fn ideal() -> Self {
        LossModel::default()
    }

    /// Uniform loss probability on all links.
    pub fn uniform(per: f64) -> Self {
        assert!((0.0..=1.0).contains(&per), "loss probability out of range");
        LossModel {
            default_per: per,
            ..LossModel::default()
        }
    }

    /// Sets the loss probability of the directed link `src -> dst`.
    pub fn set_link(&mut self, src: usize, dst: usize, per: f64) {
        assert!((0.0..=1.0).contains(&per), "loss probability out of range");
        self.per_link.insert((src, dst), per);
    }

    /// Sets the loss probability of both directions of a link.
    pub fn set_link_symmetric(&mut self, a: usize, b: usize, per: f64) {
        self.set_link(a, b, per);
        self.set_link(b, a, per);
    }

    /// Loss probability for `src -> dst`.
    pub fn loss_prob(&self, src: usize, dst: usize) -> f64 {
        *self.per_link.get(&(src, dst)).unwrap_or(&self.default_per)
    }

    /// Enables the Gilbert-Elliott burst overlay on every link.
    pub fn with_burst(mut self, ge: GilbertElliott) -> Self {
        self.burst = Some(ge);
        self
    }

    /// Gives the directed link `src -> dst` its own Gilbert-Elliott burst
    /// process, overriding the global `burst` overlay on that link.
    pub fn set_link_burst(&mut self, src: usize, dst: usize, ge: GilbertElliott) {
        self.burst_link.insert((src, dst), ge);
    }

    /// Gives both directions of a link their own burst process.
    pub fn set_link_burst_symmetric(&mut self, a: usize, b: usize, ge: GilbertElliott) {
        self.set_link_burst(a, b, ge);
        self.set_link_burst(b, a, ge);
    }

    /// Puts the directed link `src -> dst` on an up/down schedule.
    pub fn set_link_churn(&mut self, src: usize, dst: usize, w: ChurnWindow) {
        self.churn.insert((src, dst), w);
    }

    /// Puts both directions of a link on the same up/down schedule.
    pub fn set_link_churn_symmetric(&mut self, a: usize, b: usize, w: ChurnWindow) {
        self.set_link_churn(a, b, w);
        self.set_link_churn(b, a, w);
    }

    /// Samples the loss process at `now`: true means the frame is
    /// destroyed.
    pub fn drops(&mut self, now: Time, src: usize, dst: usize, rng: &mut SimRng) -> bool {
        // Ideal-link fast path: with no per-link overrides, no default PER,
        // no burst overlay and no churn schedule, none of the processes
        // below can fire or consume an RNG draw, so the per-reception map
        // lookups are skipped entirely.
        if self.default_per == 0.0
            && self.burst.is_none()
            && self.per_link.is_empty()
            && self.burst_link.is_empty()
            && self.churn.is_empty()
        {
            return false;
        }
        // A down link kills the frame before any stochastic process runs;
        // the schedule is time-driven, so no RNG draw is consumed and the
        // streams of the processes below stay aligned with a churn-free
        // model.
        if !self.churn.is_empty() {
            if let Some(w) = self.churn.get(&(src, dst)) {
                if w.is_down(now) {
                    return true;
                }
            }
        }
        let p = self.loss_prob(src, dst);
        let bernoulli = p > 0.0 && rng.gen_bool(p);
        let ge = if self.burst_link.is_empty() {
            self.burst
        } else {
            self.burst_link.get(&(src, dst)).copied().or(self.burst)
        };
        let bursty = match ge {
            None => false,
            Some(ge) => {
                let state = self.burst_state.entry((src, dst)).or_insert(false);
                // Advance the chain one frame, then sample the state's loss.
                let flip = if *state { ge.p_b2g } else { ge.p_g2b };
                if rng.gen_bool(flip) {
                    *state = !*state;
                }
                let p = if *state { ge.p_bad } else { ge.p_good };
                p > 0.0 && rng.gen_bool(p)
            }
        };
        bernoulli || bursty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_never_drops() {
        let mut m = LossModel::ideal();
        let mut rng = SimRng::new(1);
        assert!((0..1000).all(|_| !m.drops(Time::ZERO, 0, 1, &mut rng)));
    }

    #[test]
    fn gilbert_elliott_long_run_rate_and_burstiness() {
        let ge = GilbertElliott::classic();
        let mut m = LossModel::ideal().with_burst(ge);
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let outcomes: Vec<bool> = (0..n)
            .map(|_| m.drops(Time::ZERO, 0, 1, &mut rng))
            .collect();
        let losses = outcomes.iter().filter(|&&d| d).count() as f64;
        let expect = ge.mean_loss();
        assert!(
            (losses / n as f64 - expect).abs() < 0.02,
            "long-run rate {} vs {expect}",
            losses / n as f64
        );
        // Burstiness: P(loss | previous loss) must far exceed the
        // unconditional rate.
        let mut cond = 0usize;
        let mut prev_losses = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                prev_losses += 1;
                if w[1] {
                    cond += 1;
                }
            }
        }
        let p_cond = cond as f64 / prev_losses as f64;
        assert!(
            p_cond > 2.0 * expect,
            "losses should cluster: P(loss|loss) = {p_cond:.2} vs rate {expect:.2}"
        );
    }

    #[test]
    fn burst_states_are_per_link() {
        let ge = GilbertElliott {
            p_g2b: 1.0,
            p_b2g: 0.0,
            p_good: 0.0,
            p_bad: 1.0,
        };
        let mut m = LossModel::ideal().with_burst(ge);
        let mut rng = SimRng::new(2);
        // Link (0,1) enters Bad immediately and stays there.
        assert!(m.drops(Time::ZERO, 0, 1, &mut rng));
        // A different link has its own chain (also enters Bad, but
        // independently -- just verify it tracks separate state).
        assert!(m.drops(Time::ZERO, 2, 3, &mut rng));
        assert!(m.drops(Time::ZERO, 0, 1, &mut rng));
    }

    #[test]
    fn uniform_rate_is_respected() {
        let mut m = LossModel::uniform(0.25);
        let mut rng = SimRng::new(2);
        let drops = (0..100_000)
            .filter(|_| m.drops(Time::ZERO, 3, 4, &mut rng))
            .count();
        assert!((24_000..26_000).contains(&drops), "drops {drops}");
    }

    #[test]
    fn per_link_overrides_default() {
        let mut m = LossModel::uniform(0.5);
        m.set_link(0, 1, 0.0);
        assert_eq!(m.loss_prob(0, 1), 0.0);
        assert_eq!(m.loss_prob(1, 0), 0.5);
        m.set_link_symmetric(1, 2, 0.1);
        assert_eq!(m.loss_prob(1, 2), 0.1);
        assert_eq!(m.loss_prob(2, 1), 0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        LossModel::uniform(1.5);
    }

    #[test]
    fn churn_window_schedule() {
        let w = ChurnWindow::new(
            Duration::from_secs(5),
            Duration::from_secs(2),
            Duration::from_secs(1),
        );
        // Cycle: up over [1, 6), down over [6, 8), repeating.
        assert!(!w.is_down(Time::from_secs(1)));
        assert!(!w.is_down(Time::from_micros(5_999_999)));
        assert!(w.is_down(Time::from_secs(6)));
        assert!(w.is_down(Time::from_micros(7_999_999)));
        assert!(!w.is_down(Time::from_secs(8)));
        assert!(w.is_down(Time::from_secs(13)), "repeats every 7 s");
        // Before the first phase instant the schedule wraps: t = 0 sits
        // 1 s before the up start, i.e. at the tail (down) end of a cycle.
        assert!(w.is_down(Time::ZERO));
    }

    #[test]
    fn churned_link_drops_exactly_while_down_without_rng() {
        let mut m = LossModel::ideal();
        m.set_link_churn(
            0,
            1,
            ChurnWindow::new(
                Duration::from_secs(1),
                Duration::from_secs(1),
                Duration::ZERO,
            ),
        );
        let mut rng = SimRng::new(4);
        let before = rng.clone().next_u64();
        assert!(!m.drops(Time::from_millis(500), 0, 1, &mut rng));
        assert!(m.drops(Time::from_millis(1500), 0, 1, &mut rng));
        // Other links are untouched by the schedule.
        assert!(!m.drops(Time::from_millis(1500), 1, 2, &mut rng));
        assert_eq!(
            rng.next_u64(),
            before,
            "churn-only model must not consume RNG draws"
        );
    }

    #[test]
    fn per_link_burst_overrides_global() {
        let always_bad = GilbertElliott {
            p_g2b: 1.0,
            p_b2g: 0.0,
            p_good: 0.0,
            p_bad: 1.0,
        };
        // No global overlay: only the listed link fades.
        let mut m = LossModel::ideal();
        m.set_link_burst(0, 1, always_bad);
        let mut rng = SimRng::new(6);
        assert!(m.drops(Time::ZERO, 0, 1, &mut rng));
        assert!(!m.drops(Time::ZERO, 1, 2, &mut rng));
        // With a global overlay, the per-link entry still wins on its link.
        let never_bad = GilbertElliott {
            p_g2b: 0.0,
            p_b2g: 1.0,
            p_good: 0.0,
            p_bad: 1.0,
        };
        let mut m = LossModel::ideal().with_burst(never_bad);
        m.set_link_burst(0, 1, always_bad);
        assert!(m.drops(Time::ZERO, 0, 1, &mut rng));
        assert!(!m.drops(Time::ZERO, 1, 2, &mut rng));
    }
}
