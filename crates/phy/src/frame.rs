//! On-air frames.
//!
//! A [`Frame`] carries both MAC-level addressing (`src`/`dst` are the
//! transmitter and intended receiver of *this hop*) and the end-to-end
//! metadata a real packet would carry in its IP/UDP headers (`origin`,
//! `final_dst`, `flow`, `checksum`). Folding the two layers into one struct
//! keeps the simulator allocation-free on the fast path; the network layer
//! rewrites the hop fields as the packet progresses.
//!
//! The `checksum` field is the 16-bit transport checksum the paper's BOE
//! uses as a passive packet identifier. We derive it from the globally
//! unique `seq` with a 16-bit mixing hash, which reproduces the real
//! system's aliasing behaviour (65536 possible values observed through a
//! 1000-entry window).

use ezflow_sim::Time;

/// MAC frame type. The paper runs with RTS/CTS disabled (its §5 explains
/// the sensing range already covers the RTS/CTS protection area), but the
/// MAC implements the handshake so that claim can be *tested* — see the
/// `rts_cts` ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// A data frame (MAC header + transport payload).
    Data,
    /// An acknowledgement frame.
    Ack,
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
}

/// One frame, either queued, on the air, or delivered.
///
/// Every field is plain-old-data, so `Frame` is `Copy`: reading one out
/// of the [`crate::FrameArena`] is a ~100-byte memcpy into a local, which
/// is what the hot path does at terminal events instead of cloning
/// through every intermediate hand-off.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitter of this hop.
    pub src: usize,
    /// Intended receiver of this hop.
    pub dst: usize,
    /// Node that generated the packet (flow source).
    pub origin: usize,
    /// Final destination of the packet (flow sink).
    pub final_dst: usize,
    /// Flow identifier.
    pub flow: u32,
    /// Globally unique packet id; for an ACK, the id being acknowledged.
    pub seq: u64,
    /// 16-bit transport checksum — the BOE's passive identifier.
    pub checksum: u16,
    /// Transport payload size in bytes (0 for ACKs).
    pub payload_bytes: u32,
    /// Instant the packet was created by the traffic source.
    pub created: Time,
    /// Instant the packet was first handed to the origin's MAC
    /// (set by the network layer; equals `created` until then).
    pub entered_net: Time,
    /// Instant the packet was enqueued at the node currently holding it
    /// (rewritten by the network layer at every hop; per-hop latency is
    /// measured from here to the hop's successful transmission).
    pub hop_entered: Time,
    /// Retry flag: set on MAC retransmissions.
    pub retry: bool,
    /// NAV duration announced by RTS/CTS frames, microseconds of medium
    /// reservation counted from the end of this frame (0 for data/ACK).
    pub nav_micros: u64,
    /// Transport-layer correlation id: for an end-to-end transport ACK
    /// packet, the `seq` of the data packet it acknowledges (0 otherwise).
    pub ack_ref: u64,
}

impl Frame {
    /// Builds a fresh data frame for a new packet.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        seq: u64,
        flow: u32,
        origin: usize,
        final_dst: usize,
        payload_bytes: u32,
        created: Time,
    ) -> Frame {
        Frame {
            kind: FrameKind::Data,
            src: origin,
            dst: origin, // rewritten by routing before transmission
            origin,
            final_dst,
            flow,
            seq,
            checksum: checksum16(seq),
            payload_bytes,
            created,
            entered_net: created,
            hop_entered: created,
            retry: false,
            nav_micros: 0,
            ack_ref: 0,
        }
    }

    /// Builds the ACK for `data`, transmitted by `data.dst` back to
    /// `data.src`.
    pub fn ack_for(data: &Frame) -> Frame {
        Frame {
            kind: FrameKind::Ack,
            src: data.dst,
            dst: data.src,
            origin: data.origin,
            final_dst: data.final_dst,
            flow: data.flow,
            seq: data.seq,
            checksum: data.checksum,
            payload_bytes: 0,
            created: data.created,
            entered_net: data.entered_net,
            hop_entered: data.hop_entered,
            retry: false,
            nav_micros: 0,
            ack_ref: 0,
        }
    }

    /// Builds the RTS announcing `data`, reserving the medium for
    /// `nav_micros` past the RTS itself.
    pub fn rts_for(data: &Frame, nav_micros: u64) -> Frame {
        Frame {
            kind: FrameKind::Rts,
            nav_micros,
            payload_bytes: 0,
            retry: false,
            ..*data
        }
    }

    /// Builds the CTS answering `rts`, transmitted by `rts.dst` back to
    /// `rts.src`, reserving `nav_micros` past the CTS itself.
    pub fn cts_for(rts: &Frame, nav_micros: u64) -> Frame {
        Frame {
            kind: FrameKind::Cts,
            src: rts.dst,
            dst: rts.src,
            nav_micros,
            payload_bytes: 0,
            retry: false,
            ..*rts
        }
    }

    /// True for data frames.
    pub fn is_data(&self) -> bool {
        self.kind == FrameKind::Data
    }
}

/// Derives the 16-bit transport checksum of a packet from its unique id.
///
/// A real UDP/TCP checksum over distinct payloads behaves like a 16-bit
/// hash; we reproduce that with the finalizer of SplitMix64 truncated to 16
/// bits. Distinct `seq` values may — and with ~1000-packet BOE windows
/// occasionally do — collide, which is exactly the ambiguity the estimator
/// must tolerate.
pub fn checksum16(seq: u64) -> u16 {
    let mut z = seq.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    (z ^ (z >> 31)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frame_fields() {
        let f = Frame::data(7, 1, 0, 4, 1000, Time::from_secs(1));
        assert!(f.is_data());
        assert_eq!(f.origin, 0);
        assert_eq!(f.final_dst, 4);
        assert_eq!(f.payload_bytes, 1000);
        assert_eq!(f.checksum, checksum16(7));
        assert!(!f.retry);
    }

    #[test]
    fn ack_reverses_hop_direction() {
        let mut d = Frame::data(9, 2, 0, 4, 1000, Time::ZERO);
        d.src = 1;
        d.dst = 2;
        let a = Frame::ack_for(&d);
        assert_eq!(a.kind, FrameKind::Ack);
        assert_eq!(a.src, 2);
        assert_eq!(a.dst, 1);
        assert_eq!(a.seq, 9);
        assert_eq!(a.payload_bytes, 0);
    }

    #[test]
    fn checksum_is_deterministic_and_spread() {
        assert_eq!(checksum16(42), checksum16(42));
        // Count collisions over a window of 4096 sequential ids: should be
        // close to the birthday expectation for a 16-bit hash (~120), not
        // pathological.
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for seq in 0..4096u64 {
            if !seen.insert(checksum16(seq)) {
                collisions += 1;
            }
        }
        assert!(collisions < 300, "collisions {collisions}");
        assert!(seen.len() > 3700, "unique {}", seen.len());
    }
}
