//! # ezflow-phy — the radio substrate
//!
//! Models the physical layer the way ns-2 (and therefore the paper's
//! simulation section) models it: deterministic decode and carrier-sense
//! radii derived from the two-ray-ground propagation defaults, plus an
//! optional stochastic per-link loss process used both for *fault
//! injection* and for calibrating the simulated testbed links to the
//! capacities measured in Table 1 of the paper.
//!
//! The key object is [`Channel`], a pure state machine over `start_tx` /
//! `end_tx` calls. It knows nothing about MAC timing or scheduling; it only
//! answers three questions:
//!
//! 1. *Who senses the medium busy?* — every node within the carrier-sense
//!    range (550 m by default) of an active transmitter.
//! 2. *Who receives a frame?* — every node within the transmission range
//!    (250 m) of the sender, **iff** no other transmission overlapped whose
//!    sender is within the interference (= carrier-sense) range of that
//!    receiver, the receiver itself never transmitted during the frame, and
//!    the Bernoulli link-loss draw succeeds.
//! 3. *Hidden terminals* — fall out of 1 + 2 with no special code: with
//!    200 m node spacing, nodes three hops apart (600 m) cannot sense each
//!    other yet corrupt each other's receptions at intermediate nodes
//!    (400 m < 550 m). This is exactly the asymmetry that makes ≥4-hop
//!    chains turbulent in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod frame;
pub mod geom;
pub mod loss;
pub mod medium;
pub mod timing;

pub use arena::{FrameArena, FrameId};
pub use frame::{Frame, FrameKind};
pub use geom::Position;
pub use loss::{ChurnWindow, GilbertElliott, LossModel};
pub use medium::{
    Airtime, Channel, ChannelConfig, ChannelStats, DecodeOutcome, Delivery, EndReport, StartReport,
    TxId,
};
pub use timing::PhyTiming;
