//! Planar geometry for node placement.

/// A node position in meters on the plane.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// East-west coordinate, meters.
    pub x: f64,
    /// North-south coordinate, meters.
    pub y: f64,
}

impl Position {
    /// Builds a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, meters.
    pub fn distance(&self, other: &Position) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared distance (avoids the sqrt in range tests).
    pub fn distance_sq(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// True iff `other` is within `range` meters (inclusive).
    pub fn within(&self, other: &Position, range: f64) -> bool {
        self.distance_sq(other) <= range * range
    }
}

/// Places `n` nodes on a straight east-west line with constant `spacing`
/// meters between neighbours — the canonical K-hop chain of the paper.
pub fn line_positions(n: usize, spacing: f64) -> Vec<Position> {
    (0..n)
        .map(|i| Position::new(i as f64 * spacing, 0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(250.0, 0.0);
        assert!(a.within(&b, 250.0));
        assert!(!a.within(&b, 249.999));
    }

    #[test]
    fn line_positions_spacing() {
        let ps = line_positions(5, 200.0);
        assert_eq!(ps.len(), 5);
        for (i, p) in ps.iter().enumerate() {
            assert!((p.x - 200.0 * i as f64).abs() < 1e-12);
            assert_eq!(p.y, 0.0);
        }
        // Paper geometry: 1- and 2-hop neighbours are sensed (<= 550 m),
        // 3-hop neighbours are hidden (> 550 m).
        assert!(ps[0].within(&ps[2], 550.0));
        assert!(!ps[0].within(&ps[3], 550.0));
        // 1-hop neighbours decode (<= 250 m), 2-hop do not.
        assert!(ps[0].within(&ps[1], 250.0));
        assert!(!ps[0].within(&ps[2], 250.0));
    }
}
