//! PHY timing: how long a frame occupies the air.

use ezflow_sim::Duration;

/// Air-time parameters of the radio.
///
/// Defaults model IEEE 802.11b DSSS at the fixed 1 Mb/s rate the paper's
/// testbed and simulations use, with the long PLCP preamble + header
/// (144 + 48 = 192 µs, always transmitted at 1 Mb/s).
#[derive(Clone, Copy, Debug)]
pub struct PhyTiming {
    /// Payload transmission rate in bits/s.
    pub rate_bps: u64,
    /// PLCP preamble + header duration in microseconds.
    pub plcp_us: u64,
}

impl Default for PhyTiming {
    fn default() -> Self {
        PhyTiming {
            rate_bps: 1_000_000,
            plcp_us: 192,
        }
    }
}

impl PhyTiming {
    /// Air time of a frame whose MAC-level size (header + payload + FCS)
    /// is `bytes`.
    pub fn air_time(&self, bytes: u32) -> Duration {
        let bits = bytes as u64 * 8;
        // Round up: a partial microsecond still occupies the slot.
        let us = (bits * 1_000_000).div_ceil(self.rate_bps);
        Duration::from_micros(self.plcp_us + us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mbps_is_8us_per_byte() {
        let t = PhyTiming::default();
        // 1028-byte data MPDU (1000 payload + 28 header/FCS).
        assert_eq!(t.air_time(1028), Duration::from_micros(192 + 8224));
        // 14-byte ACK.
        assert_eq!(t.air_time(14), Duration::from_micros(192 + 112));
    }

    #[test]
    fn rounds_partial_microseconds_up() {
        let t = PhyTiming {
            rate_bps: 3_000_000,
            plcp_us: 0,
        };
        // 1 byte = 8 bits at 3 Mb/s = 2.67 µs -> 3 µs.
        assert_eq!(t.air_time(1), Duration::from_micros(3));
    }

    #[test]
    fn zero_bytes_is_just_plcp() {
        let t = PhyTiming::default();
        assert_eq!(t.air_time(0), Duration::from_micros(192));
    }
}
