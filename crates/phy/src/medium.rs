//! The shared wireless channel.
//!
//! [`Channel`] is a pure state machine: the network layer calls
//! [`Channel::start_tx`] and [`Channel::end_tx`] and gets back, as plain
//! data, the carrier-sense transitions and frame deliveries those calls
//! imply. No scheduling, no callbacks — which makes collision semantics
//! unit-testable in isolation (see the tests at the bottom for the
//! hidden-terminal scenarios that drive the whole paper).
//!
//! ## Reception rule
//!
//! A node `r` receives frame `f` from `s` cleanly iff
//!
//! 1. `dist(s, r) <= tx_range` (decodable signal),
//! 2. every transmission overlapping `f`'s air time is **captured**: its
//!    sender `i` is either outside the carrier-sense range of `r` (signal
//!    negligible) or far enough that the two-ray-ground power ratio
//!    `(d(i,r)/d(s,r))^4` exceeds the 10 dB capture threshold — i.e.
//!    `d(i,r) >= 10^(1/4) · d(s,r)`. The receiver itself transmitting
//!    always destroys the reception (half-duplex radio),
//! 3. the Bernoulli per-link loss process does not drop it.
//!
//! Rule 2 is ns-2's capture model and it is *essential* to the paper's
//! phenomena: with 200 m spacing, a frame over one hop (200 m) survives a
//! hidden transmitter two hops from the receiver (400 m ≥ 355.7 m), so the
//! hidden pair (source, third relay) of a 4-hop chain coexists without
//! losses — which is precisely why the greedy source outruns the first
//! relay's service share and turbulence appears as *queue growth* rather
//! than as collision losses. An interferer one hop from the receiver
//! (200 m < 355.7 m) still destroys the frame.

use ezflow_sim::{SimRng, Time};

use crate::arena::FrameId;
use crate::geom::Position;
use crate::loss::LossModel;

/// Identifier of an in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(pub u64);

/// 10 dB capture threshold under a path-loss exponent of 4:
/// an interferer `10^(10/40) ≈ 1.778` times farther than the sender is
/// captured over.
pub const CAPTURE_RATIO_10DB: f64 = 1.7782794100389228;

/// Static channel parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Decode range in meters (ns-2 two-ray-ground default: 250 m).
    pub tx_range: f64,
    /// Carrier-sense / interference range in meters (ns-2 default: 550 m).
    pub cs_range: f64,
    /// Capture ratio: an overlapping interferer at distance
    /// `>= capture_ratio · d(sender, receiver)` from the receiver does not
    /// destroy the reception. Set to `f64::INFINITY` to disable capture
    /// (every in-cs-range interferer collides).
    pub capture_ratio: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            tx_range: 250.0,
            cs_range: 550.0,
            capture_ratio: CAPTURE_RATIO_10DB,
        }
    }
}

/// Counters the channel keeps about itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmissions started.
    pub tx_started: u64,
    /// Deliveries to the *intended* receiver destroyed by interference.
    pub collisions_at_dst: u64,
    /// Deliveries to the intended receiver destroyed by the loss process.
    pub bernoulli_losses: u64,
    /// Clean deliveries to the intended receiver.
    pub clean_deliveries: u64,
    /// Clean deliveries that survived at least one temporally overlapping
    /// transmission — the capture model doing its job.
    pub captures: u64,
    /// Collisions at the intended receiver caused by an interferer the
    /// sender could not carrier-sense (the classic hidden terminal).
    pub hidden_losses: u64,
}

/// Where one node's time went, split by radio state, in microseconds.
/// Accumulated by the channel (see [`Channel::accrue_airtime`]); the four
/// buckets partition elapsed time exactly, with transmit taking priority
/// over receive over carrier-sense-busy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Airtime {
    /// Transmitting.
    pub tx_us: u64,
    /// A decodable frame was arriving (and the node was not transmitting).
    pub rx_us: u64,
    /// Carrier sense held busy by a non-decodable transmission.
    pub busy_us: u64,
    /// Nothing on the air within carrier-sense range.
    pub idle_us: u64,
}

impl Airtime {
    /// Total accounted time.
    pub fn total_us(&self) -> u64 {
        self.tx_us + self.rx_us + self.busy_us + self.idle_us
    }

    /// `(tx, rx, busy, idle)` as fractions of the accounted time; all
    /// zeros before any time has passed.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total_us();
        if total == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.tx_us as f64 / t,
            self.rx_us as f64 / t,
            self.busy_us as f64 / t,
            self.idle_us as f64 / t,
        )
    }
}

struct ActiveTx {
    id: TxId,
    /// Arena handle of the on-air frame. The channel never dereferences
    /// it — interference is pure geometry over `src`/`dst`, cached below —
    /// it only hands the id back in the [`EndReport`].
    frame: FrameId,
    /// Transmitter of this hop (the frame's `src`, cached).
    src: usize,
    /// Intended receiver of this hop (the frame's `dst`, cached).
    dst: usize,
    start: Time,
    end: Time,
    /// Per node: reception already destroyed by interference.
    corrupted: Vec<bool>,
    /// Another transmission overlapped this one in time.
    overlapped: bool,
    /// The intended receiver's reception was destroyed by an interferer
    /// the sender could not carrier-sense.
    hidden_hit: bool,
}

/// What a `start_tx` call changed.
///
/// Reusable: [`Channel::start_tx_into`] clears and refills the vector in
/// place, so one report can serve millions of transmissions without
/// allocating (see DESIGN.md "Hot-path budget").
#[derive(Debug, Default)]
pub struct StartReport {
    /// Handle to pass back to [`Channel::end_tx`].
    pub tx_id: TxId,
    /// Nodes whose medium went idle -> busy because of this transmission.
    pub became_busy: Vec<usize>,
}

impl Default for TxId {
    fn default() -> Self {
        // A value no live transmission ever carries, so a default-built
        // report handed to `end_tx` by mistake fails loudly.
        TxId(u64::MAX)
    }
}

/// Why (or how) a reception succeeded or failed, per receiver.
///
/// `clean == (outcome is Clean or Capture)`; the enum exists so the
/// flight recorder can attribute a lost hop to the physical cause rather
/// than just "not clean".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Decoded with no overlapping transmission on the air.
    Clean,
    /// Decoded despite an overlapping transmission (capture effect).
    Capture,
    /// Reception destroyed by interference from an overlapping
    /// transmission.
    Collision,
    /// Reception lost to the stochastic (Bernoulli) link-loss model.
    Loss,
}

/// One potential reception at the end of a transmission.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Receiving node (within decode range of the sender, not the sender).
    pub node: usize,
    /// True iff the frame survived interference and link loss.
    pub clean: bool,
    /// Physical attribution of the reception result.
    pub outcome: DecodeOutcome,
}

/// What an `end_tx` call changed.
///
/// Reusable like [`StartReport`]: [`Channel::end_tx_into`] clears and
/// refills the vectors in place.
#[derive(Debug, Default)]
pub struct EndReport {
    /// Arena handle of the frame that was on the air; resolve it through
    /// the owning [`crate::FrameArena`]. A default-built report carries
    /// the dangling placeholder id, overwritten by `end_tx_into`.
    pub frame: FrameId,
    /// All nodes in decode range, with their reception outcome.
    /// The intended receiver, if in range, appears here too.
    pub deliveries: Vec<Delivery>,
    /// Nodes whose medium went busy -> idle because this transmission ended.
    pub became_idle: Vec<usize>,
    /// Nodes that sensed this transmission but obtained no clean decode —
    /// either out of decode range, or the reception was corrupted/lost.
    /// These are the stations the standard's EIFS rule applies to.
    pub sensed_dirty: Vec<usize>,
}

/// The shared broadcast medium.
pub struct Channel {
    cfg: ChannelConfig,
    loss: LossModel,
    n: usize,
    /// `decode[s][r]`: r can decode s's frames.
    decode: Vec<Vec<bool>>,
    /// `sense[s][r]`: s's transmissions raise r's carrier sense (and can
    /// corrupt receptions at r). Excludes `s == r`.
    sense: Vec<Vec<bool>>,
    /// Pairwise distances, meters.
    dist: Vec<Vec<f64>>,
    /// Per sender: the nodes (ascending, sender excluded) inside decode
    /// range — the only rows of `decode[s]` that are ever true. Geometry is
    /// fixed at construction, so these lists never change.
    decode_from: Vec<Vec<usize>>,
    /// Per sender: the nodes (ascending, sender excluded) inside
    /// carrier-sense range. A superset of `decode_from[s]` because
    /// `cs_range >= tx_range` is asserted at construction.
    sense_from: Vec<Vec<usize>>,
    active: Vec<ActiveTx>,
    /// Recycled per-node `corrupted` buffers from completed transmissions.
    corrupted_pool: Vec<Vec<bool>>,
    /// Times a pooled buffer was reused instead of freshly allocated.
    pool_reuses: u64,
    /// Per node: live radio state plus its airtime ledger, packed into one
    /// 64-byte struct so each carrier-sense transition touches a single
    /// cache line instead of five parallel arrays ([`RadioState`]).
    radio: Vec<RadioState>,
    next_tx: u64,
    stats: ChannelStats,
}

/// One node's radio-state counters and airtime ledger, kept together: the
/// start/end hot loops bump a counter and settle the ledger for the same
/// node back-to-back, so colocating them turns five scattered array loads
/// per neighbor into one cache line.
#[derive(Clone, Copy, Debug)]
struct RadioState {
    /// Number of active transmissions this node senses.
    sense_count: u32,
    /// Number of own active transmissions (0 or 1 in practice).
    tx_count: u32,
    /// Number of active transmissions this node could decode.
    rx_count: u32,
    /// Cumulative time spent transmitting, microseconds.
    airtime_us: u64,
    /// tx/rx/busy/idle split, accrued lazily at transitions.
    air: Airtime,
    /// Instant up to which `air` has been accrued. A node's radio-state
    /// class (tx > rx > busy > idle) only changes when one of its counters
    /// does, so each node is settled independently, right before such a
    /// change ([`RadioState::touch_air`]) — events never pay an O(N)
    /// sweep for nodes whose state cannot have moved.
    since: Time,
}

impl RadioState {
    fn new() -> Self {
        RadioState {
            sense_count: 0,
            tx_count: 0,
            rx_count: 0,
            airtime_us: 0,
            air: Airtime::default(),
            since: Time::ZERO,
        }
    }

    /// Settles this node's airtime bucket up to `now` under its *current*
    /// radio-state class. Must be called before any of the node's
    /// tx/rx/sense counters change; the bucket sums are then identical to
    /// an every-event full sweep, because the class is piecewise constant
    /// between counter changes and interval lengths add exactly in
    /// integer microseconds.
    #[inline]
    fn touch_air(&mut self, now: Time) {
        if now <= self.since {
            return;
        }
        let span = now.since(self.since).as_micros();
        if self.tx_count > 0 {
            self.air.tx_us += span;
        } else if self.rx_count > 0 {
            self.air.rx_us += span;
        } else if self.sense_count > 0 {
            self.air.busy_us += span;
        } else {
            self.air.idle_us += span;
        }
        self.since = now;
    }
}

impl Channel {
    /// Builds a channel over fixed node positions.
    pub fn new(positions: &[Position], cfg: ChannelConfig, loss: LossModel) -> Self {
        assert!(
            cfg.cs_range >= cfg.tx_range,
            "carrier-sense range must cover the decode range"
        );
        assert!(cfg.capture_ratio > 0.0, "capture ratio must be positive");
        let n = positions.len();
        let mut decode = vec![vec![false; n]; n];
        let mut sense = vec![vec![false; n]; n];
        let mut dist = vec![vec![0.0; n]; n];
        for s in 0..n {
            for r in 0..n {
                dist[s][r] = positions[s].distance(&positions[r]);
                if s == r {
                    continue;
                }
                decode[s][r] = positions[s].within(&positions[r], cfg.tx_range);
                sense[s][r] = positions[s].within(&positions[r], cfg.cs_range);
            }
        }
        let decode_from: Vec<Vec<usize>> = (0..n)
            .map(|s| (0..n).filter(|&r| decode[s][r]).collect())
            .collect();
        let sense_from: Vec<Vec<usize>> = (0..n)
            .map(|s| (0..n).filter(|&r| sense[s][r]).collect())
            .collect();
        Channel {
            cfg,
            loss,
            n,
            decode,
            sense,
            dist,
            decode_from,
            sense_from,
            active: Vec::new(),
            corrupted_pool: Vec::new(),
            pool_reuses: 0,
            radio: vec![RadioState::new(); n],
            next_tx: 0,
            stats: ChannelStats::default(),
        }
    }

    /// Advances the per-node airtime ledger to `now`: every node's time
    /// since the last accrual is attributed to its current radio state.
    /// Called internally at each transmission start/end; call it once more
    /// with the final simulation instant before reading
    /// [`Channel::airtime_breakdown`], so the buckets cover the whole run.
    pub fn accrue_airtime(&mut self, now: Time) {
        for r in &mut self.radio {
            r.touch_air(now);
        }
    }

    /// The tx/rx/busy/idle time split of `node`, as accrued so far.
    pub fn airtime_breakdown(&self, node: usize) -> Airtime {
        self.radio[node].air
    }

    /// Cumulative transmit airtime of `node` (completed transmissions).
    pub fn airtime(&self, node: usize) -> ezflow_sim::Duration {
        ezflow_sim::Duration::from_micros(self.radio[node].airtime_us)
    }

    /// Fraction of `elapsed` that `node` spent transmitting.
    pub fn utilization(&self, node: usize, elapsed: ezflow_sim::Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.radio[node].airtime_us as f64 / elapsed.as_micros() as f64
        }
    }

    /// Channel parameters.
    pub fn config(&self) -> ChannelConfig {
        self.cfg
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// True iff `node` currently senses the medium busy (own transmissions
    /// excluded — a radio cannot carrier-sense while transmitting, and the
    /// MAC does not consult the medium during its own transmission).
    pub fn is_busy(&self, node: usize) -> bool {
        self.radio[node].sense_count > 0
    }

    /// True iff `r` can decode frames from `s`.
    pub fn can_decode(&self, s: usize, r: usize) -> bool {
        self.decode[s][r]
    }

    /// True iff `s`'s transmissions are sensed at `r`.
    pub fn can_sense(&self, s: usize, r: usize) -> bool {
        self.sense[s][r]
    }

    /// The nodes (ascending, `s` excluded) inside `s`'s carrier-sense
    /// range — the static interference adjacency. Geometry is fixed at
    /// construction, so these lists never change; they are the edge set
    /// the sharded engine partitions over, and an edge whose endpoints
    /// land in different partitions is a *cut link*: every delivery the
    /// engine routes across it enters another partition's queue.
    pub fn sensing_neighbors(&self, s: usize) -> &[usize] {
        &self.sense_from[s]
    }

    /// Number of transmissions currently on the air.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Whether a transmission by `interferer` destroys the reception of a
    /// frame from `sender` at `receiver` (capture rule; see module docs).
    pub fn corrupts(&self, interferer: usize, sender: usize, receiver: usize) -> bool {
        if interferer == receiver {
            return true; // half-duplex: cannot receive while transmitting
        }
        if !self.sense[interferer][receiver] {
            return false; // negligible signal at the receiver
        }
        self.dist[interferer][receiver] < self.cfg.capture_ratio * self.dist[sender][receiver]
    }

    /// Times a pooled scratch buffer was reused instead of allocated —
    /// the "allocations avoided" counter the hot-path bench records.
    pub fn buffer_reuses(&self) -> u64 {
        self.pool_reuses
    }

    /// Puts the frame behind `frame` on the air from `src` until `end`.
    ///
    /// Allocating convenience wrapper around [`Channel::start_tx_into`].
    pub fn start_tx(
        &mut self,
        now: Time,
        frame: FrameId,
        src: usize,
        dst: usize,
        end: Time,
    ) -> StartReport {
        let mut report = StartReport::default();
        self.start_tx_into(now, frame, src, dst, end, &mut report);
        report
    }

    /// Puts the frame behind `frame` on the air from `src` until `end`,
    /// writing the outcome into `report` (cleared first). `src`/`dst` are
    /// the frame's hop addressing, passed explicitly so the channel never
    /// touches the arena — `frame` is an opaque token it returns in the
    /// matching [`EndReport`].
    ///
    /// Marks interference both ways against every already-active
    /// transmission and reports which nodes newly sense a busy medium.
    /// Only the sender's static neighbor lists are visited, so the cost is
    /// O(degree), not O(N), and a reused `report` allocates nothing once
    /// its vector has grown to the densest neighborhood.
    pub fn start_tx_into(
        &mut self,
        now: Time,
        frame: FrameId,
        src: usize,
        dst: usize,
        end: Time,
        report: &mut StartReport,
    ) {
        debug_assert!(end > now, "zero-length transmission");
        debug_assert!(src < self.n, "unknown transmitter");
        // Only the sender and its sense neighborhood change radio state;
        // settle exactly those nodes' airtime buckets, not all N. The
        // neighbours are settled in the counter pass below — the
        // interference loop in between never reads radio state.
        self.radio[src].touch_air(now);
        self.stats.tx_started += 1;

        let mut corrupted = match self.corrupted_pool.pop() {
            Some(mut buf) => {
                self.pool_reuses += 1;
                buf.fill(false);
                buf
            }
            None => vec![false; self.n],
        };
        // The sender cannot receive anything, including its own frame.
        corrupted[src] = true;
        let mut overlapped = false;
        let mut hidden_hit = false;

        // Interference with every overlapping active transmission, in both
        // directions. A transmission whose end is exactly `now` no longer
        // overlaps (its `end_tx` is being delivered in this same instant).
        // Only nodes inside a sender's decode range can have a reception
        // destroyed, so each direction visits that sender's neighbor list.
        let decode_from = &self.decode_from;
        let sense = &self.sense;
        let dist = &self.dist;
        let ratio = self.cfg.capture_ratio;
        // Row references are hoisted per overlapping pair — the matrices
        // are row-major Vec-of-Vec, so indexing `[i][r]` in the inner
        // loops would re-chase the outer pointer every receiver.
        let (sense_src, dist_src) = (&sense[src], &dist[src]);
        for a in &mut self.active {
            if a.end <= now {
                continue;
            }
            overlapped = true;
            a.overlapped = true;
            let other = a.src;
            let (sense_other, dist_other) = (&sense[other], &dist[other]);
            // New tx destroys `a`'s reception at r? (corrupt iff the
            // interferer is the receiver itself, or is sensed by it and
            // not far enough away for capture.)
            for &r in &decode_from[other] {
                if src == r || (sense_src[r] && dist_src[r] < ratio * dist_other[r]) {
                    a.corrupted[r] = true;
                    if r == a.dst && src != r && !sense_src[other] {
                        a.hidden_hit = true;
                    }
                }
            }
            // `a` destroys the new tx's reception at r?
            for &r in &decode_from[src] {
                if other == r || (sense_other[r] && dist_other[r] < ratio * dist_src[r]) {
                    corrupted[r] = true;
                    if r == dst && other != r && !sense_other[src] {
                        hidden_hit = true;
                    }
                }
            }
        }

        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.active.push(ActiveTx {
            id,
            frame,
            src,
            dst,
            start: now,
            end,
            corrupted,
            overlapped,
            hidden_hit,
        });

        self.radio[src].tx_count += 1;
        report.became_busy.clear();
        // decode range ⊆ sense range, so one pass over the sense list
        // (ascending, keeping `became_busy` sorted) covers the airtime
        // settle and both counters.
        let decode_src = &self.decode[src];
        for &r in &self.sense_from[src] {
            let radio = &mut self.radio[r];
            radio.touch_air(now);
            if decode_src[r] {
                radio.rx_count += 1;
            }
            radio.sense_count += 1;
            if radio.sense_count == 1 {
                report.became_busy.push(r);
            }
        }
        report.tx_id = id;
    }

    /// Takes a transmission off the air and resolves its receptions.
    ///
    /// Allocating convenience wrapper around [`Channel::end_tx_into`].
    pub fn end_tx(&mut self, now: Time, tx_id: TxId, rng: &mut SimRng) -> EndReport {
        let mut report = EndReport::default();
        self.end_tx_into(now, tx_id, rng, &mut report);
        report
    }

    /// Takes a transmission off the air and resolves its receptions,
    /// writing the outcome into `report` (cleared first).
    ///
    /// Visits only the sender's static sense neighborhood; nodes that never
    /// hear the sender need no bookkeeping. The loss-model RNG is consulted
    /// for decode-range nodes in ascending order, exactly as the full scan
    /// did, so the random stream — and with it every downstream draw — is
    /// bit-identical.
    pub fn end_tx_into(
        &mut self,
        now: Time,
        tx_id: TxId,
        rng: &mut SimRng,
        report: &mut EndReport,
    ) {
        let idx = self
            .active
            .iter()
            .position(|a| a.id == tx_id)
            .expect("end_tx for unknown transmission");
        let ActiveTx {
            frame,
            src,
            dst,
            corrupted,
            start,
            end,
            overlapped,
            hidden_hit,
            ..
        } = self.active.swap_remove(idx);
        self.radio[src].airtime_us += end.since(start).as_micros();

        // As in `start_tx_into`: settle the airtime of exactly the nodes
        // whose counters are about to move. One ascending pass over the
        // sense list does the airtime settle, the busy/idle bookkeeping
        // and the decode resolution together — the loss-model RNG is
        // still consulted for decode-range nodes in ascending order,
        // exactly as the separate passes (and the full scan before them)
        // did, so the random stream stays bit-identical.
        self.radio[src].touch_air(now);
        debug_assert!(self.radio[src].tx_count > 0);
        self.radio[src].tx_count -= 1;
        report.became_idle.clear();
        report.deliveries.clear();
        report.sensed_dirty.clear();
        let decode_src = &self.decode[src];
        for &r in &self.sense_from[src] {
            let radio = &mut self.radio[r];
            radio.touch_air(now);
            let decodes = decode_src[r];
            if decodes {
                debug_assert!(radio.rx_count > 0);
                radio.rx_count -= 1;
            }
            debug_assert!(radio.sense_count > 0);
            radio.sense_count -= 1;
            if radio.sense_count == 0 {
                report.became_idle.push(r);
            }
            if !decodes {
                report.sensed_dirty.push(r);
                continue;
            }
            let mut clean = !corrupted[r];
            let outcome;
            if clean && self.loss.drops(now, src, r, rng) {
                clean = false;
                outcome = DecodeOutcome::Loss;
                if r == dst {
                    self.stats.bernoulli_losses += 1;
                }
            } else if clean {
                outcome = if overlapped {
                    DecodeOutcome::Capture
                } else {
                    DecodeOutcome::Clean
                };
                if r == dst {
                    self.stats.clean_deliveries += 1;
                    if overlapped {
                        self.stats.captures += 1;
                    }
                }
            } else {
                outcome = DecodeOutcome::Collision;
                if r == dst {
                    self.stats.collisions_at_dst += 1;
                    if hidden_hit {
                        self.stats.hidden_losses += 1;
                    }
                }
            }
            if !clean {
                report.sensed_dirty.push(r);
            }
            report.deliveries.push(Delivery {
                node: r,
                clean,
                outcome,
            });
        }

        report.frame = frame;
        self.corrupted_pool.push(corrupted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::geom::line_positions;

    fn chan(n: usize) -> Channel {
        Channel::new(
            &line_positions(n, 200.0),
            ChannelConfig::default(),
            LossModel::ideal(),
        )
    }

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn clean_delivery_on_idle_medium() {
        let mut ch = chan(5);
        let mut rng = SimRng::new(1);
        let rep = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        // 200 m spacing: nodes 1 and 2 sense node 0; node 3 (600 m) does not.
        assert_eq!(rep.became_busy, vec![1, 2]);
        assert!(ch.is_busy(1));
        assert!(!ch.is_busy(3));
        assert!(!ch.is_busy(0), "sender does not sense itself");
        let end = ch.end_tx(t(100), rep.tx_id, &mut rng);
        assert_eq!(end.became_idle, vec![1, 2]);
        // Only node 1 is in decode range of node 0.
        assert_eq!(end.deliveries.len(), 1);
        assert_eq!(end.deliveries[0].node, 1);
        assert!(end.deliveries[0].clean);
        assert_eq!(ch.stats().clean_deliveries, 1);
    }

    #[test]
    fn hidden_terminal_pair_is_captured_over() {
        // Nodes 0 and 3 are 600 m apart: mutually hidden. With the ns-2
        // capture model, node 0's frame at node 1 SURVIVES node 3's
        // overlapping transmission (interferer at 400 m vs sender at
        // 200 m: power ratio 2^4 = 12 dB > 10 dB), and 3->4 survives 0
        // trivially (800 m, out of interference range). This coexistence
        // is what lets a greedy source overrun its first relay.
        let mut ch = chan(5);
        let mut rng = SimRng::new(2);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let b = ch.start_tx(t(10), FrameId::default(), 3, 4, t(110));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(end_a.deliveries[0].clean, "0->1 captures over hidden 3");
        let end_b = ch.end_tx(t(110), b.tx_id, &mut rng);
        let to4 = end_b.deliveries.iter().find(|d| d.node == 4).unwrap();
        assert!(to4.clean, "3->4 must survive the distant 0");
        assert_eq!(ch.stats().collisions_at_dst, 0);
        assert_eq!(ch.stats().clean_deliveries, 2);
    }

    #[test]
    fn near_interferer_still_collides() {
        // An interferer one hop from the receiver (200 m = sender's own
        // distance) is far inside the capture threshold: collision.
        // Nodes 1 and 3 are forced to overlap (the MAC would normally
        // defer, but equal backoff draws make this possible).
        let mut ch = chan(5);
        let mut rng = SimRng::new(12);
        let a = ch.start_tx(t(0), FrameId::default(), 1, 2, t(100));
        let _b = ch.start_tx(t(5), FrameId::default(), 3, 4, t(105));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        let to2 = end_a.deliveries.iter().find(|d| d.node == 2).unwrap();
        assert!(!to2.clean, "interferer 3 is 200 m from receiver 2");
        assert_eq!(ch.stats().collisions_at_dst, 1);
    }

    #[test]
    fn capture_can_be_disabled() {
        let cfg = ChannelConfig {
            capture_ratio: f64::INFINITY,
            ..ChannelConfig::default()
        };
        let mut ch = Channel::new(&line_positions(5, 200.0), cfg, LossModel::ideal());
        let mut rng = SimRng::new(13);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let _b = ch.start_tx(t(10), FrameId::default(), 3, 4, t(110));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(
            !end_a.deliveries[0].clean,
            "without capture any in-range interferer collides"
        );
    }

    #[test]
    fn adjacent_overlap_half_duplex_vs_capture() {
        // Nodes 0 and 1 both transmit (they would normally defer, but the
        // MAC can draw the same backoff slot): node 1 cannot receive
        // (half-duplex) but node 2 captures 1's frame over the farther 0.
        let mut ch = chan(4);
        let mut rng = SimRng::new(3);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let b = ch.start_tx(t(0), FrameId::default(), 1, 2, t(100));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        // Node 1 is transmitting: cannot receive.
        assert!(end_a.deliveries.iter().all(|d| !d.clean || d.node != 1));
        let d1 = end_a.deliveries.iter().find(|d| d.node == 1).unwrap();
        assert!(!d1.clean);
        let end_b = ch.end_tx(t(100), b.tx_id, &mut rng);
        let d2 = end_b.deliveries.iter().find(|d| d.node == 2).unwrap();
        assert!(
            d2.clean,
            "1->2 captures over interferer 0 (400 m vs 200 m, 12 dB)"
        );
    }

    #[test]
    fn receiver_transmitting_later_still_corrupts() {
        // r starts its own transmission halfway through an incoming frame.
        let mut ch = chan(4);
        let mut rng = SimRng::new(4);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let _b = ch.start_tx(t(50), FrameId::default(), 1, 2, t(150));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        let d = end_a.deliveries.iter().find(|d| d.node == 1).unwrap();
        assert!(!d.clean, "half-duplex: node 1 was transmitting");
    }

    #[test]
    fn back_to_back_transmissions_do_not_interfere() {
        // A transmission ending exactly when another starts does not
        // overlap it.
        let mut ch = chan(5);
        let mut rng = SimRng::new(5);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        // Deliver the end at t=100 *after* starting the next — the network
        // layer can produce either ordering within one instant.
        let b = ch.start_tx(t(100), FrameId::default(), 3, 4, t(200));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(end_a.deliveries[0].clean, "no temporal overlap");
        let end_b = ch.end_tx(t(200), b.tx_id, &mut rng);
        assert!(end_b.deliveries.iter().find(|d| d.node == 4).unwrap().clean);
    }

    #[test]
    fn sense_counts_stack() {
        let mut ch = chan(6);
        let mut rng = SimRng::new(6);
        // Node 2 senses both node 0 (400 m) and node 4 (400 m).
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let b = ch.start_tx(t(10), FrameId::default(), 4, 5, t(110));
        assert!(ch.is_busy(2));
        let end_a = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(
            !end_a.became_idle.contains(&2),
            "node 2 still senses node 4"
        );
        assert!(ch.is_busy(2));
        let end_b = ch.end_tx(t(110), b.tx_id, &mut rng);
        assert!(end_b.became_idle.contains(&2));
        assert!(!ch.is_busy(2));
    }

    #[test]
    fn bernoulli_loss_drops_frames() {
        let mut loss = LossModel::ideal();
        loss.set_link(0, 1, 1.0);
        let mut ch = Channel::new(&line_positions(3, 200.0), ChannelConfig::default(), loss);
        let mut rng = SimRng::new(7);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let end = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(!end.deliveries[0].clean);
        assert_eq!(ch.stats().bernoulli_losses, 1);
    }

    #[test]
    fn overhearing_reaches_non_addressed_neighbours() {
        // Node 1 transmits to node 2; node 0 (one hop the other way)
        // overhears — this is the BOE's information source.
        let mut ch = chan(4);
        let mut rng = SimRng::new(8);
        let a = ch.start_tx(t(0), FrameId::default(), 1, 2, t(100));
        let end = ch.end_tx(t(100), a.tx_id, &mut rng);
        let nodes: Vec<usize> = end.deliveries.iter().map(|d| d.node).collect();
        assert!(nodes.contains(&0), "node 0 must overhear 1->2");
        assert!(nodes.contains(&2));
        assert!(end.deliveries.iter().all(|d| d.clean));
    }

    #[test]
    fn sensed_dirty_lists_eifs_candidates() {
        // Node 2 senses node 0's frame (400 m) but cannot decode it.
        let mut ch = chan(5);
        let mut rng = SimRng::new(30);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let end = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(end.sensed_dirty.contains(&2), "{:?}", end.sensed_dirty);
        assert!(
            !end.sensed_dirty.contains(&1),
            "the clean receiver is not an EIFS candidate"
        );
        assert!(
            !end.sensed_dirty.contains(&3),
            "a 600 m node senses nothing at the 550 m default"
        );
        // A corrupted in-range reception is also an EIFS candidate.
        let mut ch = chan(5);
        let a = ch.start_tx(t(0), FrameId::default(), 1, 2, t(100));
        let _b = ch.start_tx(t(5), FrameId::default(), 3, 4, t(105));
        let end = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(end.sensed_dirty.contains(&2), "corrupted rx -> EIFS");
    }

    #[test]
    fn airtime_accumulates_per_transmitter() {
        let mut ch = chan(4);
        let mut rng = SimRng::new(20);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        ch.end_tx(t(100), a.tx_id, &mut rng);
        let b = ch.start_tx(t(200), FrameId::default(), 0, 1, t(450));
        ch.end_tx(t(450), b.tx_id, &mut rng);
        let c = ch.start_tx(t(500), FrameId::default(), 1, 2, t(600));
        ch.end_tx(t(600), c.tx_id, &mut rng);
        assert_eq!(ch.airtime(0), ezflow_sim::Duration::from_micros(350));
        assert_eq!(ch.airtime(1), ezflow_sim::Duration::from_micros(100));
        assert_eq!(ch.airtime(2), ezflow_sim::Duration::ZERO);
        let u = ch.utilization(0, ezflow_sim::Duration::from_micros(1_000));
        assert!((u - 0.35).abs() < 1e-12);
        assert_eq!(ch.utilization(0, ezflow_sim::Duration::ZERO), 0.0);
    }

    #[test]
    fn airtime_breakdown_partitions_elapsed_time() {
        let mut ch = chan(5);
        let mut rng = SimRng::new(21);
        // 0 transmits to 1 for 100 µs; then the air is quiet until 400.
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        ch.end_tx(t(100), a.tx_id, &mut rng);
        ch.accrue_airtime(t(400));

        let a0 = ch.airtime_breakdown(0);
        assert_eq!(a0.tx_us, 100);
        assert_eq!(a0.idle_us, 300);
        // Node 1 decodes node 0: rx while the frame was on the air.
        let a1 = ch.airtime_breakdown(1);
        assert_eq!(a1.rx_us, 100);
        assert_eq!(a1.idle_us, 300);
        // Node 2 senses (400 m) but cannot decode (250 m range): busy.
        let a2 = ch.airtime_breakdown(2);
        assert_eq!(a2.busy_us, 100);
        assert_eq!(a2.idle_us, 300);
        // Node 3 (600 m) senses nothing.
        let a3 = ch.airtime_breakdown(3);
        assert_eq!(a3.idle_us, 400);

        // Every node's buckets partition the full 400 µs.
        for node in 0..5 {
            let air = ch.airtime_breakdown(node);
            assert_eq!(air.total_us(), 400, "node {node}");
            let (ftx, frx, fbusy, fidle) = air.fractions();
            assert!((ftx + frx + fbusy + fidle - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tx_takes_priority_over_rx_in_breakdown() {
        // Nodes 0 and 1 overlap; node 1 can decode node 0 but is itself
        // transmitting, so its whole overlap is tx time.
        let mut ch = chan(4);
        let mut rng = SimRng::new(22);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let b = ch.start_tx(t(0), FrameId::default(), 1, 2, t(100));
        ch.end_tx(t(100), a.tx_id, &mut rng);
        ch.end_tx(t(100), b.tx_id, &mut rng);
        let a1 = ch.airtime_breakdown(1);
        assert_eq!(a1.tx_us, 100);
        assert_eq!(a1.rx_us, 0);
    }

    #[test]
    fn captures_counted_on_overlapping_clean_delivery() {
        // The hidden-pair scenario: both deliveries are clean, both
        // overlapped, so both count as captures.
        let mut ch = chan(5);
        let mut rng = SimRng::new(23);
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let b = ch.start_tx(t(10), FrameId::default(), 3, 4, t(110));
        ch.end_tx(t(100), a.tx_id, &mut rng);
        ch.end_tx(t(110), b.tx_id, &mut rng);
        assert_eq!(ch.stats().captures, 2);
        assert_eq!(ch.stats().hidden_losses, 0);

        // A lone transmission is a clean delivery but not a capture.
        let c = ch.start_tx(t(200), FrameId::default(), 0, 1, t(300));
        ch.end_tx(t(300), c.tx_id, &mut rng);
        assert_eq!(ch.stats().captures, 2);
        assert_eq!(ch.stats().clean_deliveries, 3);
    }

    #[test]
    fn hidden_loss_counted_when_interferer_out_of_cs_range() {
        // Sender 1 -> receiver 2; interferer 4 is 600 m from sender 1
        // (mutually hidden) but 400 m from receiver 2 — inside the capture
        // threshold for a 200 m link? 400 >= 1.778 * 200 = 355.7, so it
        // would be captured over. Use 0 -> 1 with interferer 3 instead:
        // 3 is 600 m from 0 (hidden) and 400 m from 1 (captured).
        // To force a corrupting hidden interferer we shrink the geometry:
        // interferer two hops away with 150 m spacing is 300 m from the
        // receiver, under the 10 dB threshold for a 150 m link (266.7 m)?
        // 300 > 266.7 — still captured. Disable capture instead.
        let cfg = ChannelConfig {
            capture_ratio: f64::INFINITY,
            ..ChannelConfig::default()
        };
        let mut ch = Channel::new(&line_positions(5, 200.0), cfg, LossModel::ideal());
        let mut rng = SimRng::new(24);
        // 0 and 3 are 600 m apart: hidden from each other. 3's frame
        // reaches receiver 1 at 400 m (inside 550 m cs range) and, with
        // capture disabled, destroys the reception.
        let a = ch.start_tx(t(0), FrameId::default(), 0, 1, t(100));
        let _b = ch.start_tx(t(10), FrameId::default(), 3, 4, t(110));
        let end = ch.end_tx(t(100), a.tx_id, &mut rng);
        assert!(!end.deliveries[0].clean);
        assert_eq!(ch.stats().collisions_at_dst, 1);
        assert_eq!(ch.stats().hidden_losses, 1, "0 cannot sense 3");

        // Contrast: an in-CS-range interferer is not a hidden loss.
        let mut ch = Channel::new(&line_positions(5, 200.0), cfg, LossModel::ideal());
        let a = ch.start_tx(t(0), FrameId::default(), 1, 2, t(100));
        let _b = ch.start_tx(t(5), FrameId::default(), 3, 4, t(105));
        ch.end_tx(t(100), a.tx_id, &mut rng);
        assert_eq!(ch.stats().collisions_at_dst, 1);
        assert_eq!(ch.stats().hidden_losses, 0, "1 senses 3 at 400 m");
    }

    /// The original O(N)-per-transmission channel, kept verbatim as a test
    /// oracle: every loop scans all nodes, every report allocates. The
    /// optimised neighbor-list path must be observationally identical.
    struct RefChannel {
        n: usize,
        decode: Vec<Vec<bool>>,
        sense: Vec<Vec<bool>>,
        dist: Vec<Vec<f64>>,
        ratio: f64,
        loss: LossModel,
        sense_count: Vec<u32>,
        active: Vec<(u64, Frame, Time, Vec<bool>, bool, bool)>,
        next_tx: u64,
    }

    impl RefChannel {
        fn new(positions: &[crate::geom::Position], cfg: ChannelConfig, loss: LossModel) -> Self {
            let n = positions.len();
            let mut decode = vec![vec![false; n]; n];
            let mut sense = vec![vec![false; n]; n];
            let mut dist = vec![vec![0.0; n]; n];
            for s in 0..n {
                for r in 0..n {
                    dist[s][r] = positions[s].distance(&positions[r]);
                    if s == r {
                        continue;
                    }
                    decode[s][r] = positions[s].within(&positions[r], cfg.tx_range);
                    sense[s][r] = positions[s].within(&positions[r], cfg.cs_range);
                }
            }
            RefChannel {
                n,
                decode,
                sense,
                dist,
                ratio: cfg.capture_ratio,
                loss,
                sense_count: vec![0; n],
                active: Vec::new(),
                next_tx: 0,
            }
        }

        fn corrupts(&self, i: usize, s: usize, r: usize) -> bool {
            i == r || (self.sense[i][r] && self.dist[i][r] < self.ratio * self.dist[s][r])
        }

        // Written in plain index style on purpose: this is the oracle the
        // neighbor-list fast path is checked against.
        #[allow(clippy::needless_range_loop)]
        fn start_tx(&mut self, now: Time, frame: Frame, end: Time) -> (u64, Vec<usize>) {
            let src = frame.src;
            let mut corrupted = vec![false; self.n];
            corrupted[src] = true;
            let mut hidden_hit = false;
            let dst = frame.dst;
            for a_idx in 0..self.active.len() {
                if self.active[a_idx].2 <= now {
                    continue;
                }
                let other = self.active[a_idx].1.src;
                let a_dst = self.active[a_idx].1.dst;
                for r in 0..self.n {
                    if self.decode[other][r] && self.corrupts(src, other, r) {
                        self.active[a_idx].3[r] = true;
                        if r == a_dst && src != r && !self.sense[src][other] {
                            self.active[a_idx].5 = true;
                        }
                    }
                    if self.decode[src][r] && self.corrupts(other, src, r) {
                        corrupted[r] = true;
                        if r == dst && other != r && !self.sense[other][src] {
                            hidden_hit = true;
                        }
                    }
                    self.active[a_idx].4 = true;
                }
            }
            let id = self.next_tx;
            self.next_tx += 1;
            self.active
                .push((id, frame, end, corrupted, false, hidden_hit));
            let mut became_busy = Vec::new();
            for r in 0..self.n {
                if self.sense[src][r] {
                    self.sense_count[r] += 1;
                    if self.sense_count[r] == 1 {
                        became_busy.push(r);
                    }
                }
            }
            (id, became_busy)
        }

        #[allow(clippy::type_complexity, clippy::needless_range_loop)]
        fn end_tx(
            &mut self,
            id: u64,
            rng: &mut SimRng,
        ) -> (Vec<(usize, bool)>, Vec<usize>, Vec<usize>) {
            let idx = self.active.iter().position(|a| a.0 == id).unwrap();
            let (_, frame, end, corrupted, _, _) = self.active.swap_remove(idx);
            let src = frame.src;
            let mut became_idle = Vec::new();
            for r in 0..self.n {
                if self.sense[src][r] {
                    self.sense_count[r] -= 1;
                    if self.sense_count[r] == 0 {
                        became_idle.push(r);
                    }
                }
            }
            let mut deliveries = Vec::new();
            let mut sensed_dirty = Vec::new();
            for r in 0..self.n {
                if r == src {
                    continue;
                }
                if !self.decode[src][r] {
                    if self.sense[src][r] {
                        sensed_dirty.push(r);
                    }
                    continue;
                }
                let mut clean = !corrupted[r];
                if clean && self.loss.drops(end, src, r, rng) {
                    clean = false;
                }
                if !clean {
                    sensed_dirty.push(r);
                }
                deliveries.push((r, clean));
            }
            (deliveries, became_idle, sensed_dirty)
        }
    }

    proptest::proptest! {
        /// On random topologies and densities the neighbor-list channel
        /// produces reports identical — same contents, same (sorted) order,
        /// same RNG consumption — to the reference full scan.
        #[test]
        fn neighbor_lists_match_full_scan(
            seed in proptest::prelude::any::<u64>(),
            coords in proptest::collection::vec((0.0f64..1200.0, 0.0f64..1200.0), 2..9),
            txs in proptest::collection::vec(
                (0usize..8, 0usize..8, 0u64..600, 1u64..400),
                1..30
            ),
            loss_p in 0.0f64..0.6,
        ) {
            use proptest::prelude::{prop_assert_eq, prop_assert};
            let pos: Vec<crate::geom::Position> = coords
                .iter()
                .map(|&(x, y)| crate::geom::Position::new(x, y))
                .collect();
            let n = pos.len();
            let mut loss = LossModel::ideal();
            for s in 0..n {
                for r in 0..n {
                    if s != r && (s + r) % 3 == 0 {
                        loss.set_link(s, r, loss_p);
                    }
                }
            }
            let cfg = ChannelConfig::default();
            let mut fast = Channel::new(&pos, cfg, loss.clone());
            let mut slow = RefChannel::new(&pos, cfg, loss);
            let mut rng_fast = SimRng::new(seed);
            let mut rng_slow = SimRng::new(seed);

            #[derive(Clone, Copy)]
            enum Ev { Start(usize), End(usize) }
            let mut events: Vec<(u64, Ev)> = Vec::new();
            for (i, &(_, _, start, dur)) in txs.iter().enumerate() {
                events.push((start, Ev::Start(i)));
                events.push((start + dur, Ev::End(i)));
            }
            events.sort_by_key(|&(t, ev)| (t, match ev { Ev::Start(_) => 1, Ev::End(_) => 0 }));

            let mut ids = vec![None; txs.len()];
            let mut end_report = EndReport::default();
            for (t, ev) in events {
                match ev {
                    Ev::Start(i) => {
                        let (src, dst, start, dur) = txs[i];
                        if src == dst || src >= n || dst >= n { continue; }
                        let mut f = Frame::data(i as u64, 0, src, dst, 1000, Time::ZERO);
                        f.src = src;
                        f.dst = dst;
                        let rep = fast.start_tx(
                            Time::from_micros(start),
                            FrameId::default(),
                            src,
                            dst,
                            Time::from_micros(start + dur),
                        );
                        let (ref_id, ref_busy) =
                            slow.start_tx(Time::from_micros(start), f, Time::from_micros(start + dur));
                        prop_assert_eq!(&rep.became_busy, &ref_busy);
                        ids[i] = Some((rep.tx_id, ref_id));
                    }
                    Ev::End(i) => {
                        let Some((id, ref_id)) = ids[i] else { continue };
                        fast.end_tx_into(Time::from_micros(t), id, &mut rng_fast, &mut end_report);
                        let (ref_del, ref_idle, ref_dirty) = slow.end_tx(ref_id, &mut rng_slow);
                        let got: Vec<(usize, bool)> = end_report
                            .deliveries
                            .iter()
                            .map(|d| (d.node, d.clean))
                            .collect();
                        prop_assert_eq!(&got, &ref_del);
                        prop_assert_eq!(&end_report.became_idle, &ref_idle);
                        prop_assert_eq!(&end_report.sensed_dirty, &ref_dirty);
                        prop_assert!(
                            end_report.became_idle.windows(2).all(|w| w[0] < w[1]),
                            "became_idle must stay sorted"
                        );
                    }
                }
            }
            prop_assert_eq!(fast.active_count(), slow.active.len());
        }
    }

    #[test]
    fn reused_reports_allocate_nothing_in_steady_state() {
        let mut ch = chan(5);
        let mut rng = SimRng::new(40);
        let mut start = StartReport::default();
        let mut end = EndReport::default();
        for i in 0..100u64 {
            let at = t(i * 1000);
            ch.start_tx_into(
                at,
                FrameId::default(),
                0,
                1,
                at + ezflow_sim::Duration::from_micros(100),
                &mut start,
            );
            ch.end_tx_into(
                at + ezflow_sim::Duration::from_micros(100),
                start.tx_id,
                &mut rng,
                &mut end,
            );
            assert_eq!(end.deliveries.len(), 1);
        }
        // After the first round-trip every corrupted buffer comes from
        // the pool.
        assert_eq!(ch.buffer_reuses(), 99);
        assert_eq!(ch.stats().clean_deliveries, 100);
    }

    #[test]
    #[should_panic(expected = "carrier-sense range must cover")]
    fn rejects_cs_smaller_than_tx() {
        Channel::new(
            &line_positions(2, 100.0),
            ChannelConfig {
                tx_range: 250.0,
                cs_range: 100.0,
                ..ChannelConfig::default()
            },
            LossModel::ideal(),
        );
    }
}
