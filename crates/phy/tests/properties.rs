//! Property-based tests for the channel: sense bookkeeping, delivery
//! ranges and capture symmetry under random transmission schedules.

use ezflow_phy::{Channel, ChannelConfig, FrameId, LossModel, Position};
use ezflow_sim::{SimRng, Time};
use proptest::prelude::*;

fn positions(n: usize, coords: &[(f64, f64)]) -> Vec<Position> {
    (0..n)
        .map(|i| {
            let (x, y) = coords[i % coords.len()];
            Position::new(x + (i / coords.len()) as f64 * 37.0, y)
        })
        .collect()
}

proptest! {
    /// After every transmission ends, all sense counters return to idle,
    /// and deliveries only ever reach nodes inside the decode range.
    #[test]
    fn sense_counters_balance_and_deliveries_in_range(
        seed in any::<u64>(),
        // (src, dst, start offset, duration) tuples
        txs in prop::collection::vec(
            (0usize..6, 0usize..6, 0u64..500, 1u64..400),
            1..25
        )
    ) {
        let pos = positions(6, &[
            (0.0, 0.0), (200.0, 0.0), (400.0, 0.0),
            (600.0, 0.0), (150.0, 180.0), (450.0, 210.0),
        ]);
        let mut ch = Channel::new(&pos, ChannelConfig::default(), LossModel::ideal());
        let mut rng = SimRng::new(seed);

        // Build a global schedule of start/end events, time-ordered.
        #[derive(Clone, Copy)]
        enum Ev { Start(usize), End(usize) }
        let mut events: Vec<(u64, Ev)> = Vec::new();
        for (i, &(_, _, start, dur)) in txs.iter().enumerate() {
            events.push((start, Ev::Start(i)));
            events.push((start + dur, Ev::End(i)));
        }
        events.sort_by_key(|&(t, ev)| (t, match ev { Ev::Start(_) => 1, Ev::End(_) => 0 }));

        let mut ids = vec![None; txs.len()];
        for (t, ev) in events {
            match ev {
                Ev::Start(i) => {
                    let (src, dst, start, dur) = txs[i];
                    if dst == src { continue; }
                    let rep = ch.start_tx(
                        Time::from_micros(start),
                        FrameId::default(),
                        src,
                        dst,
                        Time::from_micros(start + dur),
                    );
                    // The transmitter never senses its own energy.
                    prop_assert!(!rep.became_busy.contains(&src));
                    ids[i] = Some(rep.tx_id);
                }
                Ev::End(i) => {
                    let Some(id) = ids[i] else { continue };
                    let (src, _, _, _) = txs[i];
                    let rep = ch.end_tx(Time::from_micros(t), id, &mut rng);
                    for d in &rep.deliveries {
                        prop_assert!(d.node != src);
                        prop_assert!(
                            ch.can_decode(src, d.node),
                            "delivery outside decode range"
                        );
                    }
                }
            }
        }
        prop_assert_eq!(ch.active_count(), 0);
        for n in 0..6 {
            prop_assert!(!ch.is_busy(n), "node {} stuck busy", n);
        }
    }

    /// An isolated transmission (no overlap) is always received cleanly by
    /// every in-range node under an ideal loss model.
    #[test]
    fn isolated_transmissions_are_clean(seed in any::<u64>(), src in 0usize..4, dst in 0usize..4) {
        prop_assume!(src != dst);
        let pos = positions(4, &[(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (600.0, 0.0)]);
        let mut ch = Channel::new(&pos, ChannelConfig::default(), LossModel::ideal());
        let mut rng = SimRng::new(seed);
        let rep = ch.start_tx(Time::from_micros(0), FrameId::default(), src, dst, Time::from_micros(100));
        let end = ch.end_tx(Time::from_micros(100), rep.tx_id, &mut rng);
        for d in &end.deliveries {
            prop_assert!(d.clean, "lone tx corrupted at {}", d.node);
        }
        // If dst is within decode range it must be among the deliveries.
        if ch.can_decode(src, dst) {
            prop_assert!(end.deliveries.iter().any(|d| d.node == dst));
        }
    }

    /// The capture rule is monotone in distance: if an interferer at
    /// distance d corrupts, any interferer closer than d also corrupts
    /// (same sender/receiver pair).
    #[test]
    fn capture_monotone_in_interferer_distance(d1 in 10f64..600.0, d2 in 10f64..600.0) {
        let near = d1.min(d2);
        let far = d1.max(d2);
        // receiver at origin, sender 200 m away, interferers east.
        let pos = vec![
            Position::new(0.0, 0.0),     // receiver 0
            Position::new(-200.0, 0.0),  // sender 1
            Position::new(near, 0.0),    // interferer 2
            Position::new(far, 0.0),     // interferer 3
        ];
        let ch = Channel::new(&pos, ChannelConfig::default(), LossModel::ideal());
        if ch.corrupts(3, 1, 0) {
            prop_assert!(ch.corrupts(2, 1, 0), "closer interferer must corrupt too");
        }
    }
}
