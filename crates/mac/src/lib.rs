//! # ezflow-mac — IEEE 802.11 DCF
//!
//! A faithful, event-driven model of the 802.11 Distributed Coordination
//! Function at the level of detail the paper's phenomena require:
//!
//! * CSMA/CA with physical carrier sensing — DIFS deference, slotted
//!   backoff with freeze/resume, post-attempt contention.
//! * Binary exponential backoff driven by a **runtime-adjustable `CWmin`**
//!   — the one parameter EZ-flow manipulates. `CWmin` may be raised above
//!   the standard `CWmax`, in which case the window is pinned at `CWmin`
//!   (this is what setting `CWmin` through MadWifi's `iwconfig` does).
//! * Stop-and-wait ARQ: per-frame ACK after SIFS, ACK timeout, retry with
//!   window doubling, drop after the retry limit.
//! * Duplicate filtering at the receiver (retries are re-ACKed but not
//!   re-delivered), matching the standard's sequence-number mechanism.
//!
//! RTS/CTS (with NAV virtual carrier sensing) and EIFS are implemented but
//! **off by default**, as in the paper's setup — the `rts_cts` and `eifs`
//! ablations measure what enabling them changes. Deliberately not modeled:
//! rate adaptation (fixed 1 Mb/s) and beacons/management traffic.
//!
//! ## Design
//!
//! [`Mac`] is a *pure state machine*: the caller feeds [`MacInput`]s and
//! receives [`MacOutput`]s. The MAC never touches the scheduler or the
//! channel; instead it asks the caller to arm timers (`SetTimer*`) and uses
//! *epoch tokens* to invalidate timers it no longer cares about — a stale
//! timer fires, its epoch mismatches, and it is ignored. This keeps the
//! trickiest part of the simulator fully unit-testable without any
//! simulated radio at all (see the tests in [`dcf`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dcf;

pub use config::MacConfig;
pub use dcf::{Mac, MacInput, MacOutput, MacStats, TxAttempt};
