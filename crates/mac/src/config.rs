//! MAC timing and protocol parameters.

use ezflow_phy::PhyTiming;
use ezflow_sim::Duration;

/// DCF parameters. Defaults are IEEE 802.11b DSSS at 1 Mb/s, matching the
/// paper's testbed (Asus WL-500gP + Atheros, 802.11b, RTS/CTS off) and its
/// ns-2 configuration.
#[derive(Clone, Copy, Debug)]
pub struct MacConfig {
    /// Slot time (802.11b: 20 µs).
    pub slot: Duration,
    /// Short inter-frame space (802.11b: 10 µs).
    pub sifs: Duration,
    /// DCF inter-frame space = SIFS + 2·slot (802.11b: 50 µs).
    pub difs: Duration,
    /// PHY timing used to compute frame air times.
    pub phy: PhyTiming,
    /// MAC header + FCS bytes added to every data payload (24 + 4).
    pub data_overhead_bytes: u32,
    /// ACK frame size in bytes (14).
    pub ack_bytes: u32,
    /// Maximum number of transmission attempts per frame (first try
    /// included). The standard short-retry limit is 7.
    pub max_attempts: u32,
    /// Standard upper bound of the exponential backoff window, in slots.
    /// When `CWmin` exceeds this (EZ-flow territory), the window is pinned
    /// at `CWmin` instead.
    pub cw_max: u32,
    /// Default minimum contention window, in slots (802.11b: 32).
    pub cw_min_default: u32,
    /// Enable the RTS/CTS handshake for data frames. The paper's testbed
    /// and simulations disable it (§5.1: the sensing range already covers
    /// the RTS/CTS protection area); the implementation exists so that
    /// claim can be checked experimentally.
    pub rts_cts: bool,
    /// RTS frame size, bytes (20).
    pub rts_bytes: u32,
    /// CTS frame size, bytes (14).
    pub cts_bytes: u32,
    /// Enable EIFS: after sensing a frame it could not decode, a station
    /// defers `SIFS + T_ack + DIFS` instead of DIFS before resuming its
    /// backoff (the standard's protection for the unseen ACK). Off by
    /// default — ns-2-era simulations commonly omit it and the paper's
    /// phenomena do not rely on it; the `eifs` ablation measures what it
    /// changes.
    pub eifs: bool,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            slot: Duration::from_micros(20),
            sifs: Duration::from_micros(10),
            difs: Duration::from_micros(50),
            phy: PhyTiming::default(),
            data_overhead_bytes: 28,
            ack_bytes: 14,
            max_attempts: 7,
            cw_max: 1024,
            cw_min_default: 32,
            rts_cts: false,
            rts_bytes: 20,
            cts_bytes: 14,
            eifs: false,
        }
    }
}

impl MacConfig {
    /// Air time of a data frame with `payload` transport bytes.
    pub fn data_air(&self, payload: u32) -> Duration {
        self.phy.air_time(payload + self.data_overhead_bytes)
    }

    /// Air time of an ACK frame.
    pub fn ack_air(&self) -> Duration {
        self.phy.air_time(self.ack_bytes)
    }

    /// Air time of an RTS frame.
    pub fn rts_air(&self) -> Duration {
        self.phy.air_time(self.rts_bytes)
    }

    /// Air time of a CTS frame.
    pub fn cts_air(&self) -> Duration {
        self.phy.air_time(self.cts_bytes)
    }

    /// The extended inter-frame space: SIFS + ACK air time + DIFS.
    pub fn eifs_value(&self) -> Duration {
        self.sifs + self.ack_air() + self.difs
    }

    /// How long the RTS sender waits for the CTS.
    pub fn cts_timeout(&self) -> Duration {
        self.sifs + self.cts_air() + self.slot
    }

    /// NAV a fresh RTS announces: CTS + DATA + ACK + 3 SIFS.
    pub fn rts_nav(&self, payload: u32) -> Duration {
        self.sifs * 3 + self.cts_air() + self.data_air(payload) + self.ack_air()
    }

    /// NAV a CTS announces: DATA + ACK + 2 SIFS.
    pub fn cts_nav(&self, payload: u32) -> Duration {
        self.sifs * 2 + self.data_air(payload) + self.ack_air()
    }

    /// How long the sender waits for an ACK after its data frame left the
    /// air before declaring the attempt failed: SIFS + ACK air time + one
    /// slot of scheduling slack.
    pub fn ack_timeout(&self) -> Duration {
        self.sifs + self.ack_air() + self.slot
    }

    /// Contention window (in slots) for transmission attempt `attempt`
    /// (0-based) with minimum window `cw_min`.
    ///
    /// Standard binary exponential backoff doubles up to `cw_max`; a
    /// `cw_min` at or above `cw_max` pins the window at `cw_min`, which is
    /// how a driver-level `CWmin` override behaves.
    pub fn window(&self, cw_min: u32, attempt: u32) -> u32 {
        debug_assert!(cw_min >= 1);
        let cap = self.cw_max.max(cw_min);
        let shifted = cw_min.checked_shl(attempt.min(16)).unwrap_or(cap);
        shifted.min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timings_are_802_11b() {
        let c = MacConfig::default();
        assert_eq!(c.slot, Duration::from_micros(20));
        assert_eq!(c.difs, Duration::from_micros(50));
        // 1000-byte payload: 192 + (1000+28)*8 = 8416 µs.
        assert_eq!(c.data_air(1000), Duration::from_micros(8416));
        // ACK: 192 + 14*8 = 304 µs.
        assert_eq!(c.ack_air(), Duration::from_micros(304));
        assert_eq!(c.ack_timeout(), Duration::from_micros(10 + 304 + 20));
    }

    #[test]
    fn beb_window_doubles_and_caps() {
        let c = MacConfig::default();
        assert_eq!(c.window(32, 0), 32);
        assert_eq!(c.window(32, 1), 64);
        assert_eq!(c.window(32, 4), 512);
        assert_eq!(c.window(32, 5), 1024);
        assert_eq!(c.window(32, 6), 1024, "capped at cw_max");
        assert_eq!(c.window(32, 31), 1024, "huge attempt does not overflow");
    }

    #[test]
    fn large_cwmin_pins_the_window() {
        let c = MacConfig::default();
        // EZ-flow raised CWmin above the standard CWmax.
        assert_eq!(c.window(4096, 0), 4096);
        assert_eq!(c.window(4096, 3), 4096);
        assert_eq!(c.window(32768, 5), 32768);
    }

    #[test]
    fn small_cwmin_below_cap() {
        let c = MacConfig::default();
        // EZ-flow's mincw = 16.
        assert_eq!(c.window(16, 0), 16);
        assert_eq!(c.window(16, 6), 1024);
        assert_eq!(c.window(16, 7), 1024);
    }
}
