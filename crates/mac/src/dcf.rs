//! The DCF transmit/receive state machine.
//!
//! One [`Mac`] instance models one half-duplex 802.11 radio. The caller
//! (the network layer) is responsible for:
//!
//! * feeding carrier-sense transitions ([`MacInput::MediumBusy`] /
//!   [`MacInput::MediumIdle`]) derived from the shared channel,
//! * arming the timers the MAC requests and feeding them back
//!   ([`MacInput::TimerTxPath`] / [`MacInput::TimerAckJob`]) — stale timers
//!   are filtered by epoch, so the caller never needs to cancel anything,
//! * actually putting frames on the air when told to
//!   ([`MacOutput::StartTx`]) and reporting when they leave the air
//!   ([`MacInput::TxEnded`]),
//! * delivering clean received frames addressed to this node
//!   ([`MacInput::RxData`] / [`MacInput::RxAck`]).
//!
//! The transmit path is a textbook DCF cycle:
//!
//! ```text
//!   Idle --Enqueue--> Contend --(DIFS + backoff slots idle)--> TxData
//!        <--ACK ok--- WaitAck <--------- frame left the air ---'
//!          (success)     |
//!                        '--timeout--> Contend (attempt+1, window doubled)
//!                              ... until max_attempts -> drop
//! ```

use ezflow_phy::{Frame, FrameArena, FrameId, FrameKind};
use ezflow_sim::{Duration, SimRng, Time};

use crate::config::MacConfig;

/// Everything the network layer can tell the MAC.
#[derive(Clone, Debug)]
pub enum MacInput {
    /// Hand the MAC the next data frame to transmit. Only legal when
    /// [`Mac::is_idle`] is true. `queue` identifies which transmit queue it
    /// came from so completions can be attributed.
    Enqueue {
        /// Arena handle of the frame to send (hop addressing already set).
        /// Ownership moves to the MAC until a terminal completion.
        frame: FrameId,
        /// Opaque queue tag echoed back in completions.
        queue: usize,
    },
    /// The carrier went idle -> busy.
    MediumBusy,
    /// The carrier went busy -> idle.
    MediumIdle,
    /// A transmit-path timer armed via [`MacOutput::SetTimerTxPath`] fired.
    TimerTxPath {
        /// Epoch recorded when the timer was armed.
        epoch: u64,
    },
    /// An ACK-response timer armed via [`MacOutput::SetTimerAckJob`] fired.
    TimerAckJob {
        /// Epoch recorded when the timer was armed.
        epoch: u64,
    },
    /// The frame this MAC was transmitting has left the air.
    TxEnded {
        /// Whether the carrier is busy now that our own energy is gone.
        medium_busy: bool,
    },
    /// A clean data frame addressed to this node arrived. The MAC takes
    /// ownership of the handle: it either re-emits it as
    /// [`MacOutput::Deliver`] or releases it (duplicate).
    RxData {
        /// Arena handle of the received frame.
        frame: FrameId,
    },
    /// A clean ACK addressed to this node arrived (released by the MAC).
    RxAck {
        /// Arena handle of the received ACK.
        frame: FrameId,
    },
    /// A clean RTS addressed to this node arrived (released by the MAC).
    RxRts {
        /// Arena handle of the received RTS.
        frame: FrameId,
    },
    /// A clean CTS addressed to this node arrived (released by the MAC).
    RxCts {
        /// Arena handle of the received CTS.
        frame: FrameId,
    },
    /// An overheard RTS/CTS reserved the medium (virtual carrier sense):
    /// treat it as busy until `until`.
    NavSet {
        /// End of the reservation.
        until: Time,
    },
    /// A NAV-expiry timer armed via [`MacOutput::SetTimerNav`] fired.
    TimerNav,
    /// The node sensed a frame it could not decode (energy without a clean
    /// reception). With EIFS enabled, the next deferral uses the extended
    /// inter-frame space.
    EifsMark,
    /// The controller (EZ-flow!) changed this MAC's minimum contention
    /// window. Takes effect at the next backoff draw.
    SetCwMin {
        /// New minimum window, in slots.
        cw_min: u32,
    },
}

/// Contention state behind one DCF transmission attempt, captured when
/// the frame hits the air. This is the flight recorder's per-attempt
/// hook: `cw`/`slots` are the window and backoff actually drawn for the
/// attempt, not the MAC's current configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxAttempt {
    /// 0-based attempt number (0 = first transmission).
    pub attempt: u32,
    /// Contention window the backoff was drawn from.
    pub cw: u32,
    /// Backoff slots drawn for this attempt.
    pub slots: u32,
}

/// Everything the MAC can ask of the network layer.
#[derive(Clone, Debug)]
pub enum MacOutput {
    /// Put `frame` on the air for `air` time, then report `TxEnded`.
    /// The handle is a fresh per-attempt copy owned by the caller; the
    /// engine releases it when the transmission's fan-out completes.
    StartTx {
        /// Arena handle of the frame to transmit.
        frame: FrameId,
        /// Air time (PLCP + serialization).
        air: Duration,
        /// Attempt metadata for contended (data/RTS) transmissions;
        /// `None` for SIFS responses (ACK/CTS), which never contend.
        info: Option<TxAttempt>,
    },
    /// Arm (or re-arm) the transmit-path timer `after` from now.
    SetTimerTxPath {
        /// Delay from the current instant.
        after: Duration,
        /// Epoch to echo back.
        epoch: u64,
    },
    /// Arm the ACK-response timer `after` from now.
    SetTimerAckJob {
        /// Delay from the current instant.
        after: Duration,
        /// Epoch to echo back.
        epoch: u64,
    },
    /// Arm a NAV-expiry wakeup `after` from now (no epoch: the handler
    /// re-checks the live NAV).
    SetTimerNav {
        /// Delay from the current instant.
        after: Duration,
    },
    /// The frame was acknowledged. The moment the packet verifiably sits in
    /// the successor's queue — the BOE's "transmission of packet p" hook.
    TxSuccess {
        /// Arena handle of the acknowledged frame; ownership returns to
        /// the caller, which releases it after its bookkeeping.
        frame: FrameId,
        /// Queue tag from `Enqueue`.
        queue: usize,
        /// Attempts used (1 = first try).
        attempts: u32,
    },
    /// The frame exhausted its retries and was dropped.
    TxDropped {
        /// Arena handle of the dropped frame; ownership returns to the
        /// caller, which releases it after its bookkeeping.
        frame: FrameId,
        /// Queue tag from `Enqueue`.
        queue: usize,
        /// Attempts used.
        attempts: u32,
    },
    /// A new (non-duplicate) data frame addressed to this node arrived;
    /// forward or consume it.
    Deliver {
        /// Arena handle of the received frame; ownership moves to the
        /// caller (forward, consume at the sink, or release).
        frame: FrameId,
    },
    /// The MAC just became idle; the network layer may enqueue the next
    /// frame.
    NeedFrame,
}

/// Counters a [`Mac`] keeps about itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Data transmission attempts put on the air.
    pub tx_attempts: u64,
    /// Frames acknowledged.
    pub tx_success: u64,
    /// ACK-timeout retries.
    pub retries: u64,
    /// Frames dropped at the retry limit.
    pub drops_retry: u64,
    /// ACKs transmitted.
    pub acks_sent: u64,
    /// ACK transmissions suppressed because the radio was busy (should not
    /// happen under DCF timing; counted defensively).
    pub acks_suppressed: u64,
    /// Duplicate data frames received (re-ACKed, not re-delivered).
    pub dup_rx: u64,
    /// ACKs received that matched no outstanding frame.
    pub spurious_ack: u64,
    /// Clean data frames received and delivered upward.
    pub delivered: u64,
    /// RTS frames transmitted.
    pub rts_sent: u64,
    /// CTS frames transmitted.
    pub cts_sent: u64,
    /// CTS timeouts (failed RTS handshakes).
    pub cts_timeouts: u64,
    /// Backoff slots drawn across all contention rounds — a direct read
    /// on how much the station has been backing off.
    pub backoff_slots: u64,
    /// Countdown freezes caused by carrier sense reporting busy.
    pub cca_busy: u64,
    /// Countdowns that started with EIFS instead of DIFS (penalty after
    /// an undecodable frame).
    pub eifs_starts: u64,
    /// Timer firings ignored because their epoch token was stale — the
    /// cancellation-free scheduler's "cancelled" events, a direct read on
    /// how many heap entries were scheduled and then abandoned.
    pub stale_epochs: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// No frame, post-backoff completed: the next enqueue on an idle
    /// medium gets *immediate access* (DIFS only, no random backoff) —
    /// the standard rule that lets a relay forward a just-received packet
    /// ahead of the source's next contention round.
    Idle,
    /// No frame, but the mandatory post-transmission backoff is still
    /// counting down. An enqueue during this phase *attaches* to the
    /// remaining slots.
    PostBackoff,
    Contend,
    /// Transmitting an RTS (RTS/CTS mode only).
    TxRts,
    /// Waiting for the CTS answering our RTS.
    WaitCts,
    /// CTS received; waiting SIFS before the data frame.
    SifsData,
    TxData,
    WaitAck,
}

#[derive(Clone, Copy, Debug)]
struct Current {
    /// Arena handle of the frame being worked; the MAC owns it from
    /// `Enqueue` until `TxSuccess`/`TxDropped` hands it back.
    frame: FrameId,
    queue: usize,
    /// 0-based attempt counter.
    attempt: u32,
    slots_left: u32,
    /// Contention window the current attempt's backoff was drawn from.
    cw_drawn: u32,
    /// Backoff slots drawn for the current attempt (before countdown).
    slots_drawn: u32,
}

/// One 802.11 DCF radio.
pub struct Mac {
    cfg: MacConfig,
    node: usize,
    cw_min: u32,
    phase: Phase,
    cur: Option<Current>,
    /// Carrier-sense mirror (other transmitters only).
    medium_busy: bool,
    /// True while this radio is itself transmitting (data or ACK).
    radio_busy: bool,
    txing_kind: Option<FrameKind>,
    /// When the current DIFS+countdown run started; `None` while frozen.
    countdown_from: Option<Time>,
    /// Remaining post-backoff slots (meaningful in `Phase::PostBackoff`).
    post_slots: u32,
    /// Virtual carrier sense: the medium is reserved until this instant.
    nav_until: Time,
    /// EIFS pending: the next countdown defers EIFS instead of DIFS.
    eifs_pending: bool,
    /// The inter-frame space the running countdown was started with.
    current_ifs: Duration,
    tx_epoch: u64,
    ack_epoch: u64,
    ack_job: Option<FrameId>,
    /// Per-sender id of the last received frame, for duplicate filtering.
    /// A tiny association list, not a hash map: a node hears at most a
    /// handful of senders, and the linear probe beats hashing on every
    /// received frame.
    last_rx: Vec<(usize, u64)>,
    stats: MacStats,
}

impl Mac {
    /// Creates an idle MAC for `node`.
    pub fn new(node: usize, cfg: MacConfig) -> Self {
        let cw_min = cfg.cw_min_default;
        Mac {
            cfg,
            node,
            cw_min,
            phase: Phase::Idle,
            cur: None,
            medium_busy: false,
            radio_busy: false,
            txing_kind: None,
            countdown_from: None,
            post_slots: 0,
            nav_until: Time::ZERO,
            eifs_pending: false,
            current_ifs: cfg.difs,
            tx_epoch: 0,
            ack_epoch: 0,
            ack_job: None,
            last_rx: Vec::new(),
            stats: MacStats::default(),
        }
    }

    /// The node this MAC belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Current minimum contention window.
    pub fn cw_min(&self) -> u32 {
        self.cw_min
    }

    /// True iff the MAC can accept an [`MacInput::Enqueue`] — it has no
    /// frame in flight. During post-backoff the enqueue attaches to the
    /// remaining countdown.
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Idle | Phase::PostBackoff) && self.cur.is_none()
    }

    /// Counters.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Number of arena frames this MAC currently owns (the in-flight data
    /// frame and any pending ACK/CTS job) — the MAC's contribution to the
    /// engine's arena leak audit.
    pub fn held_frames(&self) -> usize {
        usize::from(self.cur.is_some()) + usize::from(self.ack_job.is_some())
    }

    /// Current tx-path epoch token. A pending [`MacInput::TimerTxPath`]
    /// carrying an older epoch is dead: the scheduler's pop-time elision
    /// hook compares against this to drop it without dispatching.
    pub fn tx_epoch(&self) -> u64 {
        self.tx_epoch
    }

    /// Current ACK-job epoch token (see [`Mac::tx_epoch`]).
    pub fn ack_epoch(&self) -> u64 {
        self.ack_epoch
    }

    /// Feeds one input, returns the outputs it provoked.
    ///
    /// Allocating convenience wrapper around [`Mac::input_into`]. (An input
    /// with no outputs still costs nothing: `Vec::new` does not allocate.)
    pub fn input(
        &mut self,
        now: Time,
        input: MacInput,
        rng: &mut SimRng,
        arena: &mut FrameArena,
    ) -> Vec<MacOutput> {
        let mut out = Vec::new();
        self.input_into(now, input, rng, arena, &mut out);
        out
    }

    /// Feeds one input, appending the outputs it provoked to `out`.
    ///
    /// The buffer is *not* cleared: the caller owns its lifecycle, so a
    /// drained buffer can be reused across millions of inputs without a
    /// single allocation — the network layer keeps a small pool for exactly
    /// that (MAC handling can recurse through frame delivery).
    pub fn input_into(
        &mut self,
        now: Time,
        input: MacInput,
        rng: &mut SimRng,
        arena: &mut FrameArena,
        out: &mut Vec<MacOutput>,
    ) {
        match input {
            MacInput::Enqueue { frame, queue } => self.on_enqueue(now, frame, queue, rng, out),
            MacInput::MediumBusy => self.on_medium_busy(now),
            MacInput::MediumIdle => self.on_medium_idle(now, out),
            MacInput::TimerTxPath { epoch } => self.on_timer_tx(now, epoch, rng, arena, out),
            MacInput::TimerAckJob { epoch } => self.on_timer_ack(now, epoch, arena, out),
            MacInput::TxEnded { medium_busy } => self.on_tx_ended(now, medium_busy, out),
            MacInput::RxData { frame } => self.on_rx_data(now, frame, arena, out),
            MacInput::RxAck { frame } => self.on_rx_ack(now, frame, rng, arena, out),
            MacInput::RxRts { frame } => self.on_rx_rts(frame, arena, out),
            MacInput::RxCts { frame } => self.on_rx_cts(frame, arena, out),
            MacInput::NavSet { until } => self.on_nav_set(now, until, out),
            MacInput::TimerNav => self.on_timer_nav(now, out),
            MacInput::EifsMark => self.eifs_mark(),
            MacInput::SetCwMin { cw_min } => {
                self.cw_min = cw_min.max(1);
            }
        }
    }

    fn draw_slots(&mut self, attempt: u32, rng: &mut SimRng) -> u32 {
        let window = self.cfg.window(self.cw_min, attempt);
        let slots = rng.gen_range(window.max(1));
        self.stats.backoff_slots += slots as u64;
        slots
    }

    fn can_count_down(&self, now: Time) -> bool {
        !self.medium_busy && !self.radio_busy && now >= self.nav_until
    }

    /// Number of backoff slots still owed in the current phase.
    fn slots_left(&self) -> u32 {
        match self.phase {
            Phase::Contend => self.cur.as_ref().expect("contend without frame").slots_left,
            Phase::PostBackoff => self.post_slots,
            _ => unreachable!("no countdown in {:?}", self.phase),
        }
    }

    fn counting_phase(&self) -> bool {
        matches!(self.phase, Phase::Contend | Phase::PostBackoff)
    }

    /// Starts (or restarts) the DIFS + remaining-slots countdown at `now`.
    fn start_countdown(&mut self, now: Time, out: &mut Vec<MacOutput>) {
        if let Some((after, epoch)) = self.arm_countdown(now) {
            out.push(MacOutput::SetTimerTxPath { after, epoch });
        }
    }

    /// The countdown arm itself, returned as `(after, epoch)` instead of
    /// pushed as a [`MacOutput`] — the engine's direct dispatch path
    /// schedules it without an output buffer round trip.
    fn arm_countdown(&mut self, now: Time) -> Option<(Duration, u64)> {
        debug_assert!(self.counting_phase());
        debug_assert!(self.can_count_down(now));
        if self.countdown_from.is_some() {
            return None; // already counting
        }
        let slots = self.slots_left();
        self.countdown_from = Some(now);
        self.tx_epoch += 1;
        // EIFS applies to the first deferral after the undecodable frame.
        self.current_ifs = if std::mem::take(&mut self.eifs_pending) {
            self.stats.eifs_starts += 1;
            self.cfg.eifs_value()
        } else {
            self.cfg.difs
        };
        Some((
            self.current_ifs + self.cfg.slot * slots as u64,
            self.tx_epoch,
        ))
    }

    /// Freezes the countdown at `now`, banking fully elapsed slots.
    fn freeze_countdown(&mut self, now: Time) {
        let Some(started) = self.countdown_from.take() else {
            return;
        };
        self.tx_epoch += 1; // invalidate the armed timer
        let elapsed = now.saturating_since(started);
        if elapsed <= self.current_ifs {
            return;
        }
        let consumed = (elapsed - self.current_ifs).div_floor(self.cfg.slot) as u32;
        match self.phase {
            Phase::Contend => {
                let cur = self.cur.as_mut().expect("contend without frame");
                cur.slots_left = cur.slots_left.saturating_sub(consumed);
            }
            Phase::PostBackoff => {
                self.post_slots = self.post_slots.saturating_sub(consumed);
            }
            _ => {}
        }
    }

    /// Begins the mandatory post-transmission backoff.
    fn begin_post_backoff(&mut self, now: Time, rng: &mut SimRng, out: &mut Vec<MacOutput>) {
        self.post_slots = self.draw_slots(0, rng);
        self.phase = Phase::PostBackoff;
        self.countdown_from = None;
        self.tx_epoch += 1;
        if self.can_count_down(now) {
            self.start_countdown(now, out);
        }
    }

    fn on_enqueue(
        &mut self,
        now: Time,
        frame: FrameId,
        queue: usize,
        rng: &mut SimRng,
        out: &mut Vec<MacOutput>,
    ) {
        assert!(self.is_idle(), "Enqueue on a non-idle MAC");
        let slots_left = match self.phase {
            Phase::PostBackoff => {
                // Attach to the running post-backoff: bank elapsed slots,
                // inherit the remainder.
                self.freeze_countdown(now);
                self.post_slots
            }
            _ if self.can_count_down(now) => 0, // immediate access (DIFS only)
            _ => self.draw_slots(0, rng),
        };
        self.cur = Some(Current {
            frame,
            queue,
            attempt: 0,
            slots_left,
            cw_drawn: self.cfg.window(self.cw_min, 0),
            slots_drawn: slots_left,
        });
        self.phase = Phase::Contend;
        if self.can_count_down(now) {
            self.start_countdown(now, out);
        }
    }

    fn on_medium_busy(&mut self, now: Time) {
        self.medium_busy = true;
        if self.counting_phase() {
            if self.countdown_from.is_some() {
                self.stats.cca_busy += 1;
            }
            self.freeze_countdown(now);
        }
    }

    fn on_medium_idle(&mut self, now: Time, out: &mut Vec<MacOutput>) {
        if let Some((after, epoch)) = self.medium_idle(now) {
            out.push(MacOutput::SetTimerTxPath { after, epoch });
        }
    }

    /// Direct-dispatch mirror of [`MacInput::MediumBusy`].
    ///
    /// Carrier-sense transitions are the bulk of all MAC inputs (every
    /// transmission toggles busy/idle at every sensing neighbour) and can
    /// never produce an output, so the engine calls this directly instead
    /// of routing a `MacInput` through an output buffer.
    pub fn medium_busy(&mut self, now: Time) {
        self.on_medium_busy(now);
    }

    /// Direct-dispatch mirror of [`MacInput::MediumIdle`]: the only
    /// possible output is a single tx-path timer arm, returned as
    /// `(after, epoch)` for the engine to schedule itself.
    pub fn medium_idle(&mut self, now: Time) -> Option<(Duration, u64)> {
        self.medium_busy = false;
        if self.counting_phase() && self.can_count_down(now) {
            self.arm_countdown(now)
        } else {
            None
        }
    }

    /// Direct-dispatch mirror of [`MacInput::EifsMark`] (no outputs).
    pub fn eifs_mark(&mut self) {
        if self.cfg.eifs {
            self.eifs_pending = true;
        }
    }

    fn on_timer_tx(
        &mut self,
        now: Time,
        epoch: u64,
        rng: &mut SimRng,
        arena: &mut FrameArena,
        out: &mut Vec<MacOutput>,
    ) {
        if epoch != self.tx_epoch {
            self.stats.stale_epochs += 1;
            return; // stale
        }
        match self.phase {
            Phase::Contend => {
                if !self.can_count_down(now) {
                    // Defensive: a freeze should have invalidated us.
                    return;
                }
                self.countdown_from = None;
                let cur = self.cur.as_mut().expect("contend without frame");
                cur.slots_left = 0;
                // The MAC keeps its handle for further retries; what goes
                // on the air is a per-attempt arena copy with the retry
                // bit stamped.
                let mut frame = *arena.get(cur.frame);
                frame.retry = cur.attempt > 0;
                let info = Some(TxAttempt {
                    attempt: cur.attempt,
                    cw: cur.cw_drawn,
                    slots: cur.slots_drawn,
                });
                if self.cfg.rts_cts {
                    // Reserve the medium first.
                    let nav = self.cfg.rts_nav(frame.payload_bytes);
                    let mut rts = Frame::rts_for(&frame, nav.as_micros());
                    rts.retry = frame.retry;
                    self.phase = Phase::TxRts;
                    self.radio_busy = true;
                    self.txing_kind = Some(FrameKind::Rts);
                    self.stats.rts_sent += 1;
                    let air = self.cfg.rts_air();
                    out.push(MacOutput::StartTx {
                        frame: arena.alloc(rts),
                        air,
                        info,
                    });
                } else {
                    self.phase = Phase::TxData;
                    self.radio_busy = true;
                    self.txing_kind = Some(FrameKind::Data);
                    self.stats.tx_attempts += 1;
                    let air = self.cfg.data_air(frame.payload_bytes);
                    out.push(MacOutput::StartTx {
                        frame: arena.alloc(frame),
                        air,
                        info,
                    });
                }
            }
            Phase::PostBackoff => {
                if !self.can_count_down(now) {
                    return;
                }
                // Post-backoff served: the MAC is now truly idle and the
                // next enqueue gets immediate access.
                self.countdown_from = None;
                self.post_slots = 0;
                self.phase = Phase::Idle;
                out.push(MacOutput::NeedFrame);
            }
            Phase::WaitAck => {
                // ACK timeout.
                self.retry_or_drop(now, rng, out);
            }
            Phase::WaitCts => {
                // CTS timeout: the handshake failed.
                self.stats.cts_timeouts += 1;
                self.retry_or_drop(now, rng, out);
            }
            Phase::SifsData => {
                // SIFS elapsed after the CTS: send the data frame
                // unconditionally (SIFS-priority, no carrier sense).
                let cur = self.cur.as_mut().expect("sifsdata without frame");
                let mut frame = *arena.get(cur.frame);
                frame.retry = cur.attempt > 0;
                let info = Some(TxAttempt {
                    attempt: cur.attempt,
                    cw: cur.cw_drawn,
                    slots: cur.slots_drawn,
                });
                self.phase = Phase::TxData;
                self.radio_busy = true;
                self.txing_kind = Some(FrameKind::Data);
                self.stats.tx_attempts += 1;
                let air = self.cfg.data_air(frame.payload_bytes);
                out.push(MacOutput::StartTx {
                    frame: arena.alloc(frame),
                    air,
                    info,
                });
            }
            _ => {}
        }
        let _ = now;
    }

    /// Shared ACK/CTS-timeout path: retry with a doubled window or drop
    /// at the attempt limit.
    fn retry_or_drop(&mut self, now: Time, rng: &mut SimRng, out: &mut Vec<MacOutput>) {
        let cur = self.cur.as_mut().expect("retry without frame");
        cur.attempt += 1;
        self.stats.retries += 1;
        if cur.attempt >= self.cfg.max_attempts {
            self.stats.drops_retry += 1;
            let cur = self.cur.take().expect("checked above");
            let frame = cur.frame;
            let queue = cur.queue;
            let attempts = cur.attempt;
            self.begin_post_backoff(now, rng, out);
            out.push(MacOutput::TxDropped {
                frame,
                queue,
                attempts,
            });
            out.push(MacOutput::NeedFrame);
        } else {
            let attempt = cur.attempt;
            let slots = self.draw_slots(attempt, rng);
            let cw = self.cfg.window(self.cw_min, attempt);
            let cur = self.cur.as_mut().expect("checked above");
            cur.slots_left = slots;
            cur.cw_drawn = cw;
            cur.slots_drawn = slots;
            self.phase = Phase::Contend;
            if self.can_count_down(now) {
                self.start_countdown(now, out);
            }
        }
    }

    fn on_timer_ack(
        &mut self,
        now: Time,
        epoch: u64,
        arena: &mut FrameArena,
        out: &mut Vec<MacOutput>,
    ) {
        if epoch != self.ack_epoch {
            self.stats.stale_epochs += 1;
            return;
        }
        let Some(ack) = self.ack_job.take() else {
            return;
        };
        if self.radio_busy {
            // Cannot happen under DCF timing (SIFS < DIFS); tolerate it.
            self.stats.acks_suppressed += 1;
            arena.release(ack);
            return;
        }
        // Our own transmission freezes the data-path countdown.
        if self.counting_phase() {
            self.freeze_countdown(now);
        }
        let kind = arena.get(ack).kind;
        self.radio_busy = true;
        self.txing_kind = Some(kind);
        let air = match kind {
            FrameKind::Cts => {
                self.stats.cts_sent += 1;
                self.cfg.cts_air()
            }
            _ => {
                self.stats.acks_sent += 1;
                self.cfg.ack_air()
            }
        };
        out.push(MacOutput::StartTx {
            frame: ack,
            air,
            info: None,
        });
    }

    fn on_tx_ended(&mut self, now: Time, medium_busy: bool, out: &mut Vec<MacOutput>) {
        self.radio_busy = false;
        self.medium_busy = medium_busy;
        match self.txing_kind.take() {
            Some(FrameKind::Data) => {
                debug_assert_eq!(self.phase, Phase::TxData);
                self.phase = Phase::WaitAck;
                self.tx_epoch += 1;
                out.push(MacOutput::SetTimerTxPath {
                    after: self.cfg.ack_timeout(),
                    epoch: self.tx_epoch,
                });
            }
            Some(FrameKind::Rts) => {
                debug_assert_eq!(self.phase, Phase::TxRts);
                self.phase = Phase::WaitCts;
                self.tx_epoch += 1;
                out.push(MacOutput::SetTimerTxPath {
                    after: self.cfg.cts_timeout(),
                    epoch: self.tx_epoch,
                });
            }
            Some(FrameKind::Ack) | Some(FrameKind::Cts) => {
                // A response left the radio; resume any paused countdown.
                if self.counting_phase() && self.can_count_down(now) {
                    self.start_countdown(now, out);
                }
            }
            None => debug_assert!(false, "TxEnded with no transmission in flight"),
        }
    }

    fn on_rx_data(
        &mut self,
        _now: Time,
        frame: FrameId,
        arena: &mut FrameArena,
        out: &mut Vec<MacOutput>,
    ) {
        let f = *arena.get(frame);
        debug_assert_eq!(f.dst, self.node);
        debug_assert!(f.is_data());
        // Always (re-)acknowledge after SIFS, even for duplicates.
        if let Some(old) = self.ack_job.take() {
            // Two clean overlapping receptions are impossible; if the
            // network layer ever produces this, prefer the newest.
            self.stats.acks_suppressed += 1;
            arena.release(old);
        }
        self.ack_job = Some(arena.alloc(Frame::ack_for(&f)));
        self.ack_epoch += 1;
        out.push(MacOutput::SetTimerAckJob {
            after: self.cfg.sifs,
            epoch: self.ack_epoch,
        });
        // Duplicate filtering: a retry repeats the most recent id from that
        // sender (per-link FIFO makes equality sufficient).
        match self.last_rx.iter_mut().find(|(src, _)| *src == f.src) {
            Some((_, seq)) if *seq == f.seq => {
                self.stats.dup_rx += 1;
                arena.release(frame);
                return;
            }
            Some((_, seq)) => *seq = f.seq,
            None => self.last_rx.push((f.src, f.seq)),
        }
        self.stats.delivered += 1;
        out.push(MacOutput::Deliver { frame });
    }

    fn on_rx_ack(
        &mut self,
        now: Time,
        frame: FrameId,
        rng: &mut SimRng,
        arena: &mut FrameArena,
        out: &mut Vec<MacOutput>,
    ) {
        // An ACK terminates at its receiver either way: copy, release.
        let ack = arena.release(frame);
        let matches = self.phase == Phase::WaitAck
            && self.cur.as_ref().is_some_and(|c| {
                let cf = arena.get(c.frame);
                cf.seq == ack.seq && ack.src == cf.dst
            });
        if !matches {
            self.stats.spurious_ack += 1;
            return;
        }
        self.tx_epoch += 1; // cancel the ACK timeout
        let cur = self.cur.take().expect("matched above");
        self.stats.tx_success += 1;
        self.begin_post_backoff(now, rng, out);
        out.push(MacOutput::TxSuccess {
            frame: cur.frame,
            queue: cur.queue,
            attempts: cur.attempt + 1,
        });
        out.push(MacOutput::NeedFrame);
    }

    fn on_rx_rts(&mut self, frame: FrameId, arena: &mut FrameArena, out: &mut Vec<MacOutput>) {
        let frame = arena.release(frame);
        debug_assert_eq!(frame.dst, self.node);
        // Answer with a CTS after SIFS, reserving the rest of the
        // handshake. As in the standard, the CTS duration is derived from
        // the RTS's own duration field (the RTS does not carry the data
        // length): NAV_cts = NAV_rts - SIFS - T_cts.
        // (Standard nuance: a station whose NAV is set should stay
        // silent; with our geometry an addressed station's NAV is never
        // set by a third party mid-handshake, so we always answer.)
        let nav = Duration::from_micros(
            frame
                .nav_micros
                .saturating_sub((self.cfg.sifs + self.cfg.cts_air()).as_micros()),
        );
        if let Some(old) = self.ack_job.take() {
            self.stats.acks_suppressed += 1;
            arena.release(old);
        }
        self.ack_job = Some(arena.alloc(Frame::cts_for(&frame, nav.as_micros())));
        self.ack_epoch += 1;
        out.push(MacOutput::SetTimerAckJob {
            after: self.cfg.sifs,
            epoch: self.ack_epoch,
        });
    }

    fn on_rx_cts(&mut self, frame: FrameId, arena: &mut FrameArena, out: &mut Vec<MacOutput>) {
        // A CTS terminates at its receiver either way: copy, release.
        let cts = arena.release(frame);
        let matches = self.phase == Phase::WaitCts
            && self.cur.as_ref().is_some_and(|c| {
                let cf = arena.get(c.frame);
                cf.seq == cts.seq && cts.src == cf.dst
            });
        if !matches {
            self.stats.spurious_ack += 1;
            return;
        }
        self.tx_epoch += 1; // cancel the CTS timeout
        self.phase = Phase::SifsData;
        out.push(MacOutput::SetTimerTxPath {
            after: self.cfg.sifs,
            epoch: self.tx_epoch,
        });
    }

    fn on_nav_set(&mut self, now: Time, until: Time, out: &mut Vec<MacOutput>) {
        if until <= self.nav_until || until <= now {
            return;
        }
        self.nav_until = until;
        if self.counting_phase() {
            self.freeze_countdown(now);
        }
        out.push(MacOutput::SetTimerNav {
            after: until.since(now),
        });
    }

    fn on_timer_nav(&mut self, now: Time, out: &mut Vec<MacOutput>) {
        // A stale wakeup (the NAV was extended since) simply re-checks.
        if self.counting_phase() && self.can_count_down(now) {
            self.start_countdown(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_sim::Duration;

    const SLOT: u64 = 20;
    const DIFS: u64 = 50;
    const SIFS: u64 = 10;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    fn data(seq: u64, src: usize, dst: usize) -> Frame {
        let mut f = Frame::data(seq, 0, src, dst, 1000, Time::ZERO);
        f.src = src;
        f.dst = dst;
        f
    }

    /// A MAC with cw_min = 1 always draws 0 backoff slots, making timer
    /// delays exact and tests deterministic.
    fn det_mac(node: usize) -> (Mac, SimRng, FrameArena) {
        let mut mac = Mac::new(node, MacConfig::default());
        let mut rng = SimRng::new(99);
        let mut arena = FrameArena::new();
        mac.input(
            Time::ZERO,
            MacInput::SetCwMin { cw_min: 1 },
            &mut rng,
            &mut arena,
        );
        (mac, rng, arena)
    }

    fn timer_delay(out: &[MacOutput]) -> (Duration, u64) {
        out.iter()
            .find_map(|o| match o {
                MacOutput::SetTimerTxPath { after, epoch } => Some((*after, *epoch)),
                _ => None,
            })
            .expect("expected a tx-path timer")
    }

    #[test]
    fn happy_path_tx_cycle() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        assert!(mac.is_idle());

        // Enqueue on an idle medium: DIFS + 0 slots.
        let out = mac.input(
            t(0),
            MacInput::Enqueue {
                frame: arena.alloc(data(1, 0, 1)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        let (after, epoch) = timer_delay(&out);
        assert_eq!(after, Duration::from_micros(DIFS));
        assert!(!mac.is_idle());

        // Backoff completes: frame goes on the air.
        let out = mac.input(
            t(DIFS),
            MacInput::TimerTxPath { epoch },
            &mut rng,
            &mut arena,
        );
        let air = match &out[0] {
            MacOutput::StartTx { frame, air, .. } => {
                assert_eq!(arena.get(*frame).seq, 1);
                assert!(!arena.get(*frame).retry);
                *air
            }
            o => panic!("expected StartTx, got {o:?}"),
        };
        assert_eq!(air, Duration::from_micros(8416));

        // Frame leaves the air: ACK timeout armed.
        let end = t(DIFS) + air;
        let out = mac.input(
            t(end.as_micros()),
            MacInput::TxEnded { medium_busy: false },
            &mut rng,
            &mut arena,
        );
        let (after, _epoch2) = timer_delay(&out);
        assert_eq!(after, Duration::from_micros(SIFS + 304 + SLOT));

        // ACK arrives in time.
        let ack = arena.alloc(Frame::ack_for(&data(1, 0, 1)));
        let out = mac.input(
            end + Duration::from_micros(SIFS + 304),
            MacInput::RxAck { frame: ack },
            &mut rng,
            &mut arena,
        );
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::TxSuccess { attempts: 1, .. })));
        assert!(out.iter().any(|o| matches!(o, MacOutput::NeedFrame)));
        // A post-transmission backoff is armed before the next access.
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::SetTimerTxPath { .. })));
        assert!(mac.is_idle(), "post-backoff still accepts the next frame");
        assert_eq!(mac.stats().tx_success, 1);
    }

    #[test]
    fn backoff_freezes_and_resumes_with_remaining_slots() {
        let mut mac = Mac::new(0, MacConfig::default());
        let mut rng = SimRng::new(7);
        let mut arena = FrameArena::new();
        mac.input(
            Time::ZERO,
            MacInput::SetCwMin { cw_min: 16 },
            &mut rng,
            &mut arena,
        );
        // Enqueue while the medium is busy: a random backoff is drawn
        // (immediate access does not apply).
        mac.input(t(0), MacInput::MediumBusy, &mut rng, &mut arena);
        let out = mac.input(
            t(0),
            MacInput::Enqueue {
                frame: arena.alloc(data(1, 0, 1)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        assert!(out.is_empty());
        let out = mac.input(t(0), MacInput::MediumIdle, &mut rng, &mut arena);
        let (after, _) = timer_delay(&out);
        let total_slots = (after.as_micros() - DIFS) / SLOT;

        // Busy after DIFS + 2 full slots + half a slot.
        let busy_at = DIFS + 2 * SLOT + 10;
        assert!(
            total_slots >= 3,
            "need >= 3 slots for this test, redraw seed"
        );
        mac.input(t(busy_at), MacInput::MediumBusy, &mut rng, &mut arena);
        // Idle again later: remaining = total - 2 (the half slot is lost).
        let out = mac.input(t(1000), MacInput::MediumIdle, &mut rng, &mut arena);
        let (after2, _) = timer_delay(&out);
        let remaining = (after2.as_micros() - DIFS) / SLOT;
        assert_eq!(remaining, total_slots - 2);
    }

    #[test]
    fn busy_during_difs_consumes_nothing() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        let out = mac.input(
            t(0),
            MacInput::Enqueue {
                frame: arena.alloc(data(1, 0, 1)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        let (after, _) = timer_delay(&out);
        assert_eq!(after.as_micros(), DIFS);
        mac.input(t(20), MacInput::MediumBusy, &mut rng, &mut arena); // mid-DIFS
        let out = mac.input(t(500), MacInput::MediumIdle, &mut rng, &mut arena);
        let (after2, _) = timer_delay(&out);
        assert_eq!(after2.as_micros(), DIFS, "DIFS restarts in full");
    }

    #[test]
    fn stale_timer_is_ignored() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        let out = mac.input(
            t(0),
            MacInput::Enqueue {
                frame: arena.alloc(data(1, 0, 1)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        let (_, epoch) = timer_delay(&out);
        mac.input(t(10), MacInput::MediumBusy, &mut rng, &mut arena); // invalidates
        let out = mac.input(
            t(DIFS),
            MacInput::TimerTxPath { epoch },
            &mut rng,
            &mut arena,
        );
        assert!(out.is_empty(), "stale timer must do nothing, got {out:?}");
        assert_eq!(mac.stats().tx_attempts, 0);
    }

    #[test]
    fn ack_timeout_retries_then_drops() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        let max = MacConfig::default().max_attempts;
        let mut now = 0u64;
        let out = mac.input(
            t(now),
            MacInput::Enqueue {
                frame: arena.alloc(data(5, 0, 1)),
                queue: 3,
            },
            &mut rng,
            &mut arena,
        );
        let (mut after, mut epoch) = timer_delay(&out);
        let mut attempts_seen = 0;
        let dropped = loop {
            now += after.as_micros();
            let out = mac.input(
                t(now),
                MacInput::TimerTxPath { epoch },
                &mut rng,
                &mut arena,
            );
            if let Some((queue, attempts)) = out.iter().find_map(|o| match o {
                MacOutput::TxDropped {
                    queue, attempts, ..
                } => Some((*queue, *attempts)),
                _ => None,
            }) {
                assert_eq!(queue, 3);
                assert_eq!(attempts, max);
                assert!(out.iter().any(|o| matches!(o, MacOutput::NeedFrame)));
                break true;
            }
            if let Some(air) = out.iter().find_map(|o| match o {
                MacOutput::StartTx { frame, air, .. } => {
                    if attempts_seen > 0 {
                        assert!(arena.get(*frame).retry, "retries must set the retry flag");
                    }
                    Some(*air)
                }
                _ => None,
            }) {
                attempts_seen += 1;
                now += air.as_micros();
                let out = mac.input(
                    t(now),
                    MacInput::TxEnded { medium_busy: false },
                    &mut rng,
                    &mut arena,
                );
                let (a, e) = timer_delay(&out);
                after = a;
                epoch = e;
            } else {
                // Timeout fired and a new contention round began.
                let (a, e) = timer_delay(&out);
                after = a;
                epoch = e;
            }
            if now > 10_000_000 {
                break false;
            }
        };
        assert!(dropped, "frame must eventually be dropped");
        assert_eq!(attempts_seen, max);
        assert_eq!(mac.stats().drops_retry, 1);
        assert_eq!(mac.stats().retries as u32, max);
        assert!(mac.is_idle());
    }

    #[test]
    fn receiver_acks_and_delivers_then_filters_duplicate() {
        let (mut mac, mut rng, mut arena) = det_mac(1);
        let f = data(9, 0, 1);
        let out = mac.input(
            t(100),
            MacInput::RxData {
                frame: arena.alloc(f),
            },
            &mut rng,
            &mut arena,
        );
        // ACK armed at SIFS, frame delivered.
        let ack_epoch = out
            .iter()
            .find_map(|o| match o {
                MacOutput::SetTimerAckJob { after, epoch } => {
                    assert_eq!(*after, Duration::from_micros(SIFS));
                    Some(*epoch)
                }
                _ => None,
            })
            .expect("ack timer");
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::Deliver { frame } if arena.get(*frame).seq == 9)));

        let out = mac.input(
            t(100 + SIFS),
            MacInput::TimerAckJob { epoch: ack_epoch },
            &mut rng,
            &mut arena,
        );
        match &out[0] {
            MacOutput::StartTx { frame, air, .. } => {
                let ack = arena.get(*frame);
                assert_eq!(ack.kind, FrameKind::Ack);
                assert_eq!(ack.dst, 0);
                assert_eq!(ack.seq, 9);
                assert_eq!(*air, Duration::from_micros(304));
            }
            o => panic!("expected ack StartTx, got {o:?}"),
        }
        mac.input(
            t(100 + SIFS + 304),
            MacInput::TxEnded { medium_busy: false },
            &mut rng,
            &mut arena,
        );

        // Duplicate (retry) arrives: re-ACK, no second Deliver.
        let mut dup = f;
        dup.retry = true;
        let out = mac.input(
            t(10_000),
            MacInput::RxData {
                frame: arena.alloc(dup),
            },
            &mut rng,
            &mut arena,
        );
        assert!(
            !out.iter().any(|o| matches!(o, MacOutput::Deliver { .. })),
            "duplicate must not be delivered"
        );
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::SetTimerAckJob { .. })));
        assert_eq!(mac.stats().dup_rx, 1);
        assert_eq!(mac.stats().delivered, 1);
    }

    #[test]
    fn own_ack_transmission_freezes_data_countdown() {
        let mut mac = Mac::new(1, MacConfig::default());
        let mut rng = SimRng::new(3);
        let mut arena = FrameArena::new();
        mac.input(
            Time::ZERO,
            MacInput::SetCwMin { cw_min: 64 },
            &mut rng,
            &mut arena,
        );
        // Contending with a data frame (enqueued under a busy medium so a
        // random backoff is drawn)...
        mac.input(t(0), MacInput::MediumBusy, &mut rng, &mut arena);
        let out = mac.input(
            t(0),
            MacInput::Enqueue {
                frame: arena.alloc(data(2, 1, 2)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        assert!(out.is_empty());
        let out = mac.input(t(0), MacInput::MediumIdle, &mut rng, &mut arena);
        let (after, _) = timer_delay(&out);
        let total_slots = (after.as_micros() - DIFS) / SLOT;
        assert!(total_slots >= 2, "redraw seed: need >= 2 slots");

        // ...the medium goes busy (incoming frame), which freezes us mid-run.
        let busy_at = DIFS + SLOT + 5; // one full slot elapsed
        mac.input(t(busy_at), MacInput::MediumBusy, &mut rng, &mut arena);
        // The incoming frame is for us; it ends and the medium goes idle.
        let rx_end = busy_at + 8416;
        let out = mac.input(
            t(rx_end),
            MacInput::RxData {
                frame: arena.alloc(data(7, 0, 1)),
            },
            &mut rng,
            &mut arena,
        );
        let ack_epoch = out
            .iter()
            .find_map(|o| match o {
                MacOutput::SetTimerAckJob { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap();
        let out = mac.input(t(rx_end), MacInput::MediumIdle, &mut rng, &mut arena);
        let (resume_after, _) = timer_delay(&out);
        assert_eq!(
            (resume_after.as_micros() - DIFS) / SLOT,
            total_slots - 1,
            "one slot was consumed before the freeze"
        );

        // SIFS later the ACK starts: countdown freezes again (radio busy),
        // and no slot is lost because less than DIFS elapsed.
        let out = mac.input(
            t(rx_end + SIFS),
            MacInput::TimerAckJob { epoch: ack_epoch },
            &mut rng,
            &mut arena,
        );
        assert!(matches!(out[0], MacOutput::StartTx { .. }));
        // While radio-busy a medium-idle input must not start a countdown.
        let out = mac.input(
            t(rx_end + SIFS + 1),
            MacInput::MediumIdle,
            &mut rng,
            &mut arena,
        );
        assert!(out.is_empty());
        // ACK done: countdown resumes with the same remaining slots.
        let ack_done = rx_end + SIFS + 304;
        let out = mac.input(
            t(ack_done),
            MacInput::TxEnded { medium_busy: false },
            &mut rng,
            &mut arena,
        );
        let (resume2, _) = timer_delay(&out);
        assert_eq!((resume2.as_micros() - DIFS) / SLOT, total_slots - 1);
    }

    #[test]
    fn spurious_ack_is_counted_not_acted_on() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        let ack = arena.alloc(Frame::ack_for(&data(77, 0, 1)));
        let out = mac.input(t(5), MacInput::RxAck { frame: ack }, &mut rng, &mut arena);
        assert!(out.is_empty());
        assert_eq!(mac.stats().spurious_ack, 1);
    }

    #[test]
    fn ack_for_wrong_seq_does_not_complete() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        let out = mac.input(
            t(0),
            MacInput::Enqueue {
                frame: arena.alloc(data(1, 0, 1)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        let (_, epoch) = timer_delay(&out);
        let out = mac.input(
            t(DIFS),
            MacInput::TimerTxPath { epoch },
            &mut rng,
            &mut arena,
        );
        let air = match &out[0] {
            MacOutput::StartTx { air, .. } => *air,
            _ => panic!(),
        };
        mac.input(
            t(DIFS) + air,
            MacInput::TxEnded { medium_busy: false },
            &mut rng,
            &mut arena,
        );
        let wrong = arena.alloc(Frame::ack_for(&data(2, 0, 1)));
        let out = mac.input(
            t(DIFS) + air + Duration::from_micros(100),
            MacInput::RxAck { frame: wrong },
            &mut rng,
            &mut arena,
        );
        assert!(out.is_empty());
        assert!(!mac.is_idle(), "still waiting for the right ACK");
    }

    #[test]
    fn enqueue_while_medium_busy_defers() {
        let (mut mac, mut rng, mut arena) = det_mac(0);
        mac.input(t(0), MacInput::MediumBusy, &mut rng, &mut arena);
        let out = mac.input(
            t(5),
            MacInput::Enqueue {
                frame: arena.alloc(data(1, 0, 1)),
                queue: 0,
            },
            &mut rng,
            &mut arena,
        );
        assert!(out.is_empty(), "no timer while busy");
        let out = mac.input(t(500), MacInput::MediumIdle, &mut rng, &mut arena);
        let (after, _) = timer_delay(&out);
        assert_eq!(after.as_micros(), DIFS);
    }

    #[test]
    fn cw_min_change_applies_to_next_draw() {
        let mut mac = Mac::new(0, MacConfig::default());
        let mut rng = SimRng::new(11);
        let mut arena = FrameArena::new();
        // Pin to a huge window: delays must exceed DIFS + 100 slots with
        // overwhelming probability over a few draws.
        mac.input(
            Time::ZERO,
            MacInput::SetCwMin { cw_min: 32768 },
            &mut rng,
            &mut arena,
        );
        let mut big = 0;
        for i in 0..5 {
            // Enqueue under a busy medium so a random backoff is drawn.
            mac.input(t(i * 1_000_000), MacInput::MediumBusy, &mut rng, &mut arena);
            let out = mac.input(
                t(i * 1_000_000),
                MacInput::Enqueue {
                    frame: arena.alloc(data(i, 0, 1)),
                    queue: 0,
                },
                &mut rng,
                &mut arena,
            );
            assert!(out.is_empty());
            let out = mac.input(t(i * 1_000_000), MacInput::MediumIdle, &mut rng, &mut arena);
            let (after, _epoch) = timer_delay(&out);
            if after.as_micros() > DIFS + 100 * SLOT {
                big += 1;
            }
            // Rebuild the MAC each round to abort the attempt cleanly.
            mac = Mac::new(0, MacConfig::default());
            mac.input(
                Time::ZERO,
                MacInput::SetCwMin { cw_min: 32768 },
                &mut rng,
                &mut arena,
            );
        }
        assert!(big >= 4, "32768-slot windows should draw large backoffs");
    }
}
