//! EIFS: after sensing an undecodable frame, the next deferral uses the
//! extended inter-frame space instead of DIFS.

use ezflow_mac::{Mac, MacConfig, MacInput, MacOutput};
use ezflow_phy::{Frame, FrameArena};
use ezflow_sim::{SimRng, Time};

const DIFS: u64 = 50;
const EIFS: u64 = 10 + 304 + 50; // SIFS + ACK air + DIFS = 364

fn t(us: u64) -> Time {
    Time::from_micros(us)
}

fn mac_with_eifs(enabled: bool) -> (Mac, SimRng, FrameArena) {
    let cfg = MacConfig {
        eifs: enabled,
        ..MacConfig::default()
    };
    let mut mac = Mac::new(0, cfg);
    let mut rng = SimRng::new(7);
    let mut arena = FrameArena::new();
    mac.input(
        Time::ZERO,
        MacInput::SetCwMin { cw_min: 1 },
        &mut rng,
        &mut arena,
    );
    (mac, rng, arena)
}

fn timer_delay(out: &[MacOutput]) -> u64 {
    out.iter()
        .find_map(|o| match o {
            MacOutput::SetTimerTxPath { after, .. } => Some(after.as_micros()),
            _ => None,
        })
        .expect("tx-path timer")
}

fn data(seq: u64) -> Frame {
    let mut f = Frame::data(seq, 0, 0, 2, 1000, Time::ZERO);
    f.src = 0;
    f.dst = 1;
    f
}

#[test]
fn eifs_extends_the_next_deferral_only() {
    let (mut mac, mut rng, mut arena) = mac_with_eifs(true);
    // Contend while busy (an undecodable frame is on the air).
    mac.input(t(0), MacInput::MediumBusy, &mut rng, &mut arena);
    let out = mac.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(1)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    assert!(out.is_empty());
    // The frame ends dirty: EIFS mark, then idle.
    mac.input(t(1000), MacInput::EifsMark, &mut rng, &mut arena);
    let out = mac.input(t(1000), MacInput::MediumIdle, &mut rng, &mut arena);
    assert_eq!(timer_delay(&out), EIFS, "first resume uses EIFS");

    // Interrupt and resume again without a new mark: back to DIFS.
    mac.input(t(1100), MacInput::MediumBusy, &mut rng, &mut arena);
    let out = mac.input(t(2000), MacInput::MediumIdle, &mut rng, &mut arena);
    assert_eq!(timer_delay(&out), DIFS, "EIFS is one-shot");
}

#[test]
fn eifs_mark_is_ignored_when_disabled() {
    let (mut mac, mut rng, mut arena) = mac_with_eifs(false);
    mac.input(t(0), MacInput::MediumBusy, &mut rng, &mut arena);
    mac.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(1)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    mac.input(t(1000), MacInput::EifsMark, &mut rng, &mut arena);
    let out = mac.input(t(1000), MacInput::MediumIdle, &mut rng, &mut arena);
    assert_eq!(timer_delay(&out), DIFS);
}

#[test]
fn eifs_slot_consumption_uses_the_extended_space() {
    // With a countdown started under EIFS, a freeze before EIFS elapses
    // must consume no slots.
    let mut mac = Mac::new(
        0,
        MacConfig {
            eifs: true,
            ..MacConfig::default()
        },
    );
    let mut rng = SimRng::new(3);
    let mut arena = FrameArena::new();
    mac.input(
        Time::ZERO,
        MacInput::SetCwMin { cw_min: 16 },
        &mut rng,
        &mut arena,
    );
    mac.input(t(0), MacInput::MediumBusy, &mut rng, &mut arena);
    mac.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(1)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    mac.input(t(500), MacInput::EifsMark, &mut rng, &mut arena);
    let out = mac.input(t(500), MacInput::MediumIdle, &mut rng, &mut arena);
    let total = timer_delay(&out);
    let slots = (total - EIFS) / 20;
    // Freeze inside the EIFS window (after DIFS would already have
    // elapsed): nothing may be consumed.
    mac.input(
        t(500 + DIFS + 40),
        MacInput::MediumBusy,
        &mut rng,
        &mut arena,
    );
    let out = mac.input(t(5_000), MacInput::MediumIdle, &mut rng, &mut arena);
    let resumed = timer_delay(&out);
    assert_eq!(
        (resumed - DIFS) / 20,
        slots,
        "no slots elapsed during the EIFS window"
    );
}
