//! RTS/CTS handshake tests: the full four-way exchange, CTS timeouts, and
//! NAV (virtual carrier sense) deference.

use ezflow_mac::{Mac, MacConfig, MacInput, MacOutput};
use ezflow_phy::{Frame, FrameArena, FrameId, FrameKind};
use ezflow_sim::{Duration, SimRng, Time};

const SIFS: u64 = 10;
const DIFS: u64 = 50;
const SLOT: u64 = 20;
const RTS_AIR: u64 = 192 + 160; // 20 B
const CTS_AIR: u64 = 192 + 112; // 14 B
const DATA_AIR: u64 = 8416;
const ACK_AIR: u64 = 304;

fn t(us: u64) -> Time {
    Time::from_micros(us)
}

fn rts_mac(node: usize, arena: &mut FrameArena) -> (Mac, SimRng) {
    let cfg = MacConfig {
        rts_cts: true,
        ..MacConfig::default()
    };
    let mut mac = Mac::new(node, cfg);
    let mut rng = SimRng::new(7);
    mac.input(
        Time::ZERO,
        MacInput::SetCwMin { cw_min: 1 },
        &mut rng,
        arena,
    );
    (mac, rng)
}

fn data(seq: u64, src: usize, dst: usize) -> Frame {
    let mut f = Frame::data(seq, 0, src, dst, 1000, Time::ZERO);
    f.src = src;
    f.dst = dst;
    f
}

fn tx_timer(out: &[MacOutput]) -> (Duration, u64) {
    out.iter()
        .find_map(|o| match o {
            MacOutput::SetTimerTxPath { after, epoch } => Some((*after, *epoch)),
            _ => None,
        })
        .expect("tx-path timer")
}

fn started(out: &[MacOutput]) -> FrameId {
    out.iter()
        .find_map(|o| match o {
            MacOutput::StartTx { frame, .. } => Some(*frame),
            _ => None,
        })
        .expect("StartTx")
}

#[test]
fn full_four_way_handshake() {
    let mut arena = FrameArena::new();
    let (mut snd, mut rng) = rts_mac(0, &mut arena);
    let (mut rcv, mut rng2) = rts_mac(1, &mut arena);

    // Sender contends, then emits an RTS instead of data.
    let out = snd.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(5, 0, 1)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    let (after, epoch) = tx_timer(&out);
    assert_eq!(after.as_micros(), DIFS);
    let out = snd.input(
        t(DIFS),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    let rts = started(&out);
    let rtsf = *arena.get(rts);
    assert_eq!(rtsf.kind, FrameKind::Rts);
    assert_eq!(rtsf.seq, 5);
    assert_eq!(
        rtsf.nav_micros,
        3 * SIFS + CTS_AIR + DATA_AIR + ACK_AIR,
        "RTS reserves CTS+DATA+ACK"
    );
    let rts_end = DIFS + RTS_AIR;
    let out = snd.input(
        t(rts_end),
        MacInput::TxEnded { medium_busy: false },
        &mut rng,
        &mut arena,
    );
    let (cts_to, _) = tx_timer(&out);
    assert_eq!(cts_to.as_micros(), SIFS + CTS_AIR + SLOT);

    // Receiver answers with a CTS after SIFS.
    let out = rcv.input(
        t(rts_end),
        MacInput::RxRts { frame: rts },
        &mut rng2,
        &mut arena,
    );
    let cts_epoch = out
        .iter()
        .find_map(|o| match o {
            MacOutput::SetTimerAckJob { after, epoch } => {
                assert_eq!(after.as_micros(), SIFS);
                Some(*epoch)
            }
            _ => None,
        })
        .expect("cts job");
    let out = rcv.input(
        t(rts_end + SIFS),
        MacInput::TimerAckJob { epoch: cts_epoch },
        &mut rng2,
        &mut arena,
    );
    let cts = started(&out);
    let ctsf = *arena.get(cts);
    assert_eq!(ctsf.kind, FrameKind::Cts);
    assert_eq!(ctsf.dst, 0);
    assert_eq!(ctsf.nav_micros, 2 * SIFS + DATA_AIR + ACK_AIR);
    let cts_end = rts_end + SIFS + CTS_AIR;
    rcv.input(
        t(cts_end),
        MacInput::TxEnded { medium_busy: false },
        &mut rng2,
        &mut arena,
    );

    // Sender gets the CTS, waits SIFS, sends the data.
    let out = snd.input(
        t(cts_end),
        MacInput::RxCts { frame: cts },
        &mut rng,
        &mut arena,
    );
    let (sifs_wait, epoch) = tx_timer(&out);
    assert_eq!(sifs_wait.as_micros(), SIFS);
    let out = snd.input(
        t(cts_end + SIFS),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    let d = started(&out);
    let df = *arena.get(d);
    assert_eq!(df.kind, FrameKind::Data);
    let data_end = cts_end + SIFS + DATA_AIR;
    let out = snd.input(
        t(data_end),
        MacInput::TxEnded { medium_busy: false },
        &mut rng,
        &mut arena,
    );
    let (ack_to, _) = tx_timer(&out);
    assert_eq!(ack_to.as_micros(), SIFS + ACK_AIR + SLOT);

    // Receiver delivers and ACKs; sender completes.
    let out = rcv.input(
        t(data_end),
        MacInput::RxData { frame: d },
        &mut rng2,
        &mut arena,
    );
    assert!(out.iter().any(|o| matches!(o, MacOutput::Deliver { .. })));
    let ack = arena.alloc(Frame::ack_for(&df));
    let out = snd.input(
        t(data_end + SIFS + ACK_AIR),
        MacInput::RxAck { frame: ack },
        &mut rng,
        &mut arena,
    );
    assert!(out
        .iter()
        .any(|o| matches!(o, MacOutput::TxSuccess { attempts: 1, .. })));
    assert_eq!(snd.stats().rts_sent, 1);
    assert_eq!(snd.stats().tx_success, 1);
    assert_eq!(rcv.stats().cts_sent, 1);
}

#[test]
fn cts_timeout_retries_the_rts() {
    let mut arena = FrameArena::new();
    let (mut snd, mut rng) = rts_mac(0, &mut arena);
    let out = snd.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(5, 0, 1)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    let (after, epoch) = tx_timer(&out);
    let mut now = after.as_micros();
    let out = snd.input(
        t(now),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    assert_eq!(arena.get(started(&out)).kind, FrameKind::Rts);
    now += RTS_AIR;
    let out = snd.input(
        t(now),
        MacInput::TxEnded { medium_busy: false },
        &mut rng,
        &mut arena,
    );
    let (to, epoch) = tx_timer(&out);
    now += to.as_micros();
    // No CTS arrives: timeout -> back to contention with attempt 2.
    let out = snd.input(
        t(now),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    let (re, epoch) = tx_timer(&out);
    assert_eq!(snd.stats().cts_timeouts, 1);
    assert_eq!(snd.stats().retries, 1);
    now += re.as_micros();
    let out = snd.input(
        t(now),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    let rts = *arena.get(started(&out));
    assert_eq!(rts.kind, FrameKind::Rts, "the retry re-issues an RTS");
    assert!(rts.retry);
}

#[test]
fn nav_defers_bystanders() {
    // A bystander in contention overhears a CTS and must stay silent for
    // the announced reservation even though the medium is physically idle.
    let mut arena = FrameArena::new();
    let (mut by, mut rng) = rts_mac(2, &mut arena);
    let out = by.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(9, 2, 3)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    let (_, epoch) = tx_timer(&out);

    // NAV lands mid-DIFS.
    let until = t(20 + 5_000);
    let out = by.input(t(20), MacInput::NavSet { until }, &mut rng, &mut arena);
    assert!(
        out.iter()
            .any(|o| matches!(o, MacOutput::SetTimerNav { after } if after.as_micros() == 5_000)),
        "a NAV wakeup must be armed"
    );
    // The old countdown timer is now stale.
    let out = by.input(
        t(DIFS),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    assert!(out.is_empty(), "must not transmit during NAV");
    // Medium-idle reports during NAV do not restart the countdown.
    let out = by.input(t(100), MacInput::MediumIdle, &mut rng, &mut arena);
    assert!(out.is_empty());
    // NAV expiry resumes: fresh DIFS + remaining slots.
    let out = by.input(t(5_020), MacInput::TimerNav, &mut rng, &mut arena);
    let (after, epoch) = tx_timer(&out);
    assert_eq!(after.as_micros(), DIFS);
    let out = by.input(
        t(5_020 + DIFS),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    assert_eq!(arena.get(started(&out)).kind, FrameKind::Rts);
}

#[test]
fn nav_extension_wins_over_stale_wakeup() {
    let mut arena = FrameArena::new();
    let (mut by, mut rng) = rts_mac(2, &mut arena);
    by.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(9, 2, 3)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    by.input(
        t(10),
        MacInput::NavSet { until: t(1_000) },
        &mut rng,
        &mut arena,
    );
    // Extended before expiry.
    by.input(
        t(500),
        MacInput::NavSet { until: t(8_000) },
        &mut rng,
        &mut arena,
    );
    // The first wakeup fires but the NAV is still set: nothing happens.
    let out = by.input(t(1_000), MacInput::TimerNav, &mut rng, &mut arena);
    assert!(out.is_empty(), "stale NAV wakeup must re-check");
    // The second wakeup resumes.
    let out = by.input(t(8_000), MacInput::TimerNav, &mut rng, &mut arena);
    let (after, _) = tx_timer(&out);
    assert_eq!(after.as_micros(), DIFS);
}

#[test]
fn nav_blocks_immediate_access_on_enqueue() {
    // A NAV set while idle must deny the immediate-access shortcut: the
    // enqueue draws a random backoff and waits for the NAV wakeup.
    let mut arena = FrameArena::new();
    let (mut mac, mut rng) = rts_mac(2, &mut arena);
    mac.input(
        t(0),
        MacInput::NavSet { until: t(5_000) },
        &mut rng,
        &mut arena,
    );
    let out = mac.input(
        t(100),
        MacInput::Enqueue {
            frame: arena.alloc(data(3, 2, 3)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    assert!(
        out.is_empty(),
        "no countdown may start during a NAV reservation: {out:?}"
    );
    let out = mac.input(t(5_000), MacInput::TimerNav, &mut rng, &mut arena);
    let (after, _) = tx_timer(&out);
    assert!(after.as_micros() >= DIFS);
}

#[test]
fn rx_data_while_waiting_for_cts_is_served() {
    // A relay mid-handshake as a *sender* can still receive data and must
    // schedule the ACK for it.
    let mut arena = FrameArena::new();
    let (mut snd, mut rng) = rts_mac(1, &mut arena);
    let out = snd.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(5, 1, 2)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    let (after, epoch) = tx_timer(&out);
    let mut now = after.as_micros();
    snd.input(
        t(now),
        MacInput::TimerTxPath { epoch },
        &mut rng,
        &mut arena,
    );
    now += RTS_AIR;
    snd.input(
        t(now),
        MacInput::TxEnded { medium_busy: false },
        &mut rng,
        &mut arena,
    );
    // While waiting for the CTS, a data frame from node 0 arrives.
    let out = snd.input(
        t(now + 2),
        MacInput::RxData {
            frame: arena.alloc(data(9, 0, 1)),
        },
        &mut rng,
        &mut arena,
    );
    assert!(out.iter().any(|o| matches!(o, MacOutput::Deliver { .. })));
    assert!(out
        .iter()
        .any(|o| matches!(o, MacOutput::SetTimerAckJob { .. })));
}

#[test]
fn shorter_nav_does_not_shrink_reservation() {
    let mut arena = FrameArena::new();
    let (mut by, mut rng) = rts_mac(2, &mut arena);
    by.input(
        t(0),
        MacInput::Enqueue {
            frame: arena.alloc(data(9, 2, 3)),
            queue: 0,
        },
        &mut rng,
        &mut arena,
    );
    by.input(
        t(0),
        MacInput::NavSet { until: t(9_000) },
        &mut rng,
        &mut arena,
    );
    let out = by.input(
        t(100),
        MacInput::NavSet { until: t(500) },
        &mut rng,
        &mut arena,
    );
    assert!(out.is_empty(), "shorter overlapping NAV is absorbed");
    let out = by.input(t(500), MacInput::TimerNav, &mut rng, &mut arena);
    assert!(out.is_empty(), "still reserved until 9ms");
}
