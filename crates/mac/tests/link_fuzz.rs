//! Protocol-level fuzz of the DCF ARQ over an *independent* mini-medium.
//!
//! This harness is deliberately NOT the `ezflow-phy`/`ezflow-net` stack: a
//! sender MAC and a receiver MAC are connected by a ~60-line event loop
//! that delivers frames with random loss. If the MAC state machine and the
//! real network layer ever disagree about protocol semantics, one of the
//! two harnesses breaks.
//!
//! Invariants checked, for random loss rates and packet counts:
//! * every acknowledged (TxSuccess) frame was delivered at the receiver;
//! * the receiver delivers each packet at most once (duplicate filtering);
//! * deliveries are FIFO (seq strictly increasing);
//! * accounting closes: successes + drops = packets offered;
//! * the sender MAC ends idle (no stuck state under any loss pattern).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ezflow_mac::{Mac, MacConfig, MacInput, MacOutput};
use ezflow_phy::{Frame, FrameArena, FrameKind};
use ezflow_sim::{SimRng, Time};
use proptest::prelude::*;

const SND: usize = 0;
const RCV: usize = 1;

struct Harness {
    now: u64,
    /// Shared frame store, exactly as the network layer owns one.
    arena: FrameArena,
    queue: BinaryHeap<Reverse<(u64, u64, usize, EvKind)>>,
    seqno: u64,
    loss: f64,
    rng: SimRng,
    /// Outcomes.
    delivered: Vec<u64>,
    success: Vec<u64>,
    dropped: Vec<u64>,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EvKind {
    TimerTx(u64),
    TimerAck(u64),
    TimerNav,
    TxEnded,
    Rx(Box<FrameBits>),
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct FrameBits {
    kind: u8,
    seq: u64,
    src: usize,
    dst: usize,
    payload: u32,
    retry: bool,
    nav: u64,
}

fn pack(f: &Frame) -> FrameBits {
    FrameBits {
        kind: match f.kind {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Rts => 2,
            FrameKind::Cts => 3,
        },
        seq: f.seq,
        src: f.src,
        dst: f.dst,
        payload: f.payload_bytes,
        retry: f.retry,
        nav: f.nav_micros,
    }
}

fn unpack(b: &FrameBits) -> Frame {
    let mut f = Frame::data(b.seq, 0, b.src, b.dst, b.payload, Time::ZERO);
    f.kind = match b.kind {
        0 => FrameKind::Data,
        1 => FrameKind::Ack,
        2 => FrameKind::Rts,
        _ => FrameKind::Cts,
    };
    f.src = b.src;
    f.dst = b.dst;
    f.retry = b.retry;
    f.nav_micros = b.nav;
    if f.kind != FrameKind::Data {
        f.payload_bytes = 0;
    }
    f
}

impl Harness {
    fn new(loss: f64, seed: u64) -> Self {
        Harness {
            now: 0,
            arena: FrameArena::new(),
            queue: BinaryHeap::new(),
            seqno: 0,
            loss,
            rng: SimRng::new(seed),
            delivered: Vec::new(),
            success: Vec::new(),
            dropped: Vec::new(),
        }
    }

    fn schedule(&mut self, at: u64, who: usize, kind: EvKind) {
        let tie = self.seqno;
        self.seqno += 1;
        self.queue.push(Reverse((at, tie, who, kind)));
    }

    fn handle_outputs(&mut self, who: usize, outs: Vec<MacOutput>) {
        for o in outs {
            match o {
                MacOutput::StartTx { frame, air, .. } => {
                    let end = self.now + air.as_micros();
                    self.schedule(end, who, EvKind::TxEnded);
                    // The peer receives it unless the loss process bites.
                    let p = self.loss;
                    let survives = !self.rng.gen_bool(p);
                    if survives {
                        let peer = 1 - who;
                        let bits = pack(self.arena.get(frame));
                        self.schedule(end, peer, EvKind::Rx(Box::new(bits)));
                    }
                    // The on-air copy terminates here: its bits are on the
                    // wire (or lost) either way.
                    self.arena.release(frame);
                }
                MacOutput::SetTimerTxPath { after, epoch } => {
                    self.schedule(self.now + after.as_micros(), who, EvKind::TimerTx(epoch));
                }
                MacOutput::SetTimerAckJob { after, epoch } => {
                    self.schedule(self.now + after.as_micros(), who, EvKind::TimerAck(epoch));
                }
                MacOutput::SetTimerNav { after } => {
                    self.schedule(self.now + after.as_micros(), who, EvKind::TimerNav);
                }
                MacOutput::TxSuccess { frame, .. } => {
                    let seq = self.arena.release(frame).seq;
                    self.success.push(seq);
                }
                MacOutput::TxDropped { frame, .. } => {
                    let seq = self.arena.release(frame).seq;
                    self.dropped.push(seq);
                }
                MacOutput::Deliver { frame } => {
                    let seq = self.arena.release(frame).seq;
                    self.delivered.push(seq);
                }
                MacOutput::NeedFrame => {}
            }
        }
    }

    /// Runs `packets` frames from SND to RCV; returns the MACs for
    /// post-mortem inspection.
    fn run(mut self, packets: u64, rts: bool) -> (Self, Mac, Mac) {
        let cfg = MacConfig {
            rts_cts: rts,
            ..MacConfig::default()
        };
        let mut snd = Mac::new(SND, cfg);
        let mut rcv = Mac::new(RCV, cfg);
        let mut snd_rng = SimRng::new(1);
        let mut rcv_rng = SimRng::new(2);
        let mut offered = 0u64;

        loop {
            // Feed the sender whenever it can take a frame.
            if snd.is_idle() && offered < packets {
                let mut f = Frame::data(offered, 0, SND, RCV, 500, Time::ZERO);
                f.src = SND;
                f.dst = RCV;
                let id = self.arena.alloc(f);
                let outs = snd.input(
                    Time::from_micros(self.now),
                    MacInput::Enqueue {
                        frame: id,
                        queue: 0,
                    },
                    &mut snd_rng,
                    &mut self.arena,
                );
                offered += 1;
                self.handle_outputs(SND, outs);
                continue;
            }
            let Some(Reverse((at, _, who, kind))) = self.queue.pop() else {
                break;
            };
            self.now = at;
            let input = match kind {
                EvKind::TimerTx(epoch) => MacInput::TimerTxPath { epoch },
                EvKind::TimerAck(epoch) => MacInput::TimerAckJob { epoch },
                EvKind::TimerNav => MacInput::TimerNav,
                EvKind::TxEnded => MacInput::TxEnded { medium_busy: false },
                EvKind::Rx(bits) => {
                    let f = unpack(&bits);
                    if f.dst != who {
                        continue;
                    }
                    let id = self.arena.alloc(f);
                    match f.kind {
                        FrameKind::Data => MacInput::RxData { frame: id },
                        FrameKind::Ack => MacInput::RxAck { frame: id },
                        FrameKind::Rts => MacInput::RxRts { frame: id },
                        FrameKind::Cts => MacInput::RxCts { frame: id },
                    }
                }
            };
            let outs = if who == SND {
                snd.input(
                    Time::from_micros(self.now),
                    input,
                    &mut snd_rng,
                    &mut self.arena,
                )
            } else {
                rcv.input(
                    Time::from_micros(self.now),
                    input,
                    &mut rcv_rng,
                    &mut self.arena,
                )
            };
            self.handle_outputs(who, outs);
            if self.now > 120_000_000_000 {
                panic!("harness ran away past 120k simulated seconds");
            }
        }
        assert_eq!(offered, packets);
        // Ownership audit: once the event queue drains, every allocated
        // frame has been released except what the MACs admit to holding.
        assert_eq!(
            self.arena.live(),
            snd.held_frames() + rcv.held_frames(),
            "arena leak: live frames unaccounted for"
        );
        (self, snd, rcv)
    }
}

fn check_invariants(h: &Harness, snd: &Mac, packets: u64, loss: f64) {
    // Accounting closes.
    assert_eq!(
        h.success.len() + h.dropped.len(),
        packets as usize,
        "every offered packet ends as success or drop"
    );
    assert!(snd.is_idle(), "sender must end idle");
    // No duplicate deliveries; FIFO order.
    for w in h.delivered.windows(2) {
        assert!(w[0] < w[1], "deliveries must be strictly increasing");
    }
    // Every acknowledged frame was delivered.
    let delivered: std::collections::HashSet<u64> = h.delivered.iter().copied().collect();
    for s in &h.success {
        assert!(delivered.contains(s), "acked seq {s} never delivered");
    }
    if loss == 0.0 {
        assert_eq!(h.delivered.len() as u64, packets);
        assert!(h.dropped.is_empty(), "no drops on a perfect link");
        assert_eq!(snd.stats().retries, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arq_invariants_hold_under_random_loss(
        seed in any::<u64>(),
        loss in 0f64..0.6,
        packets in 1u64..120,
        rts in any::<bool>(),
    ) {
        let h = Harness::new(loss, seed);
        let (h, snd, _rcv) = h.run(packets, rts);
        check_invariants(&h, &snd, packets, loss);
    }

    #[test]
    fn perfect_link_delivers_everything(
        seed in any::<u64>(),
        packets in 1u64..200,
        rts in any::<bool>(),
    ) {
        let h = Harness::new(0.0, seed);
        let (h, snd, rcv) = h.run(packets, rts);
        check_invariants(&h, &snd, packets, 0.0);
        prop_assert_eq!(rcv.stats().delivered, packets);
        prop_assert_eq!(snd.stats().tx_success, packets);
        if rts {
            prop_assert_eq!(snd.stats().rts_sent, packets);
            prop_assert_eq!(rcv.stats().cts_sent, packets);
        }
    }

    #[test]
    fn total_loss_drops_everything(seed in any::<u64>(), packets in 1u64..40, rts in any::<bool>()) {
        let h = Harness::new(1.0, seed);
        let (h, snd, rcv) = h.run(packets, rts);
        prop_assert_eq!(h.dropped.len() as u64, packets);
        prop_assert!(h.success.is_empty());
        prop_assert_eq!(rcv.stats().delivered, 0);
        prop_assert_eq!(snd.stats().drops_retry, packets);
    }
}
