//! Property-based tests for the simulation kernel.

use ezflow_sim::{
    BoeVerdict, DropCause, FrameClass, RxOutcome, Scheduler, SimRng, Time, TraceEvent, TraceKind,
    TracePayload, TraceRing,
};
use proptest::prelude::*;

/// JSON numbers are f64-backed, so ids only round-trip exactly below 2^53.
const MAX_EXACT: u64 = 1 << 53;

fn class_of(i: u64) -> FrameClass {
    match i % 4 {
        0 => FrameClass::Data,
        1 => FrameClass::Ack,
        2 => FrameClass::Rts,
        _ => FrameClass::Cts,
    }
}

fn cause_of(i: u64) -> DropCause {
    match i % 5 {
        0 => DropCause::RetryLimit,
        1 => DropCause::QueueFull,
        2 => DropCause::SourceQueueFull,
        3 => DropCause::Unroutable,
        _ => DropCause::StaleEpoch,
    }
}

fn outcome_of(i: u64) -> RxOutcome {
    match i % 4 {
        0 => RxOutcome::Clean,
        1 => RxOutcome::Capture,
        2 => RxOutcome::Collision,
        _ => RxOutcome::Loss,
    }
}

fn verdict_of(i: u64) -> BoeVerdict {
    match i % 3 {
        0 => BoeVerdict::Hit,
        1 => BoeVerdict::Miss,
        _ => BoeVerdict::Ambiguous,
    }
}

/// One arbitrary payload covering every `TracePayload` variant; `pick`
/// selects the variant, the remaining draws fill its fields. An imported
/// `Text` payload keeps only its presence (the schema cannot reconstitute
/// a `&'static str`), so the generator sticks to the empty annotation.
fn payload_of(pick: u64, a: u64, b: u64, c: u64, d: u64) -> TracePayload {
    let seq = a % MAX_EXACT;
    match pick % 15 {
        0 => TracePayload::Empty,
        1 => TracePayload::Text(""),
        2 => TracePayload::Frame {
            class: class_of(b),
            seq,
            flow: c as u32,
            src: (b % 4096) as usize,
            dst: (d % 4096) as usize,
            retry: (c % 16) as u32,
        },
        3 => TracePayload::Collision {
            seq,
            src: (b % 4096) as usize,
        },
        4 => TracePayload::Drop {
            cause: cause_of(b),
            seq,
        },
        5 => TracePayload::Queue {
            occupancy: b as u32,
            cap: c as u32,
        },
        6 => TracePayload::CwChange {
            from: b as u32,
            to: c as u32,
        },
        7 => TracePayload::BoeSample {
            successor: (b % 4096) as usize,
            estimate: c as u32,
        },
        8 => TracePayload::Admit {
            seq,
            flow: b as u32,
        },
        9 => TracePayload::Enqueue {
            seq,
            flow: b as u32,
            occupancy: c as u32,
            cap: d as u32,
        },
        10 => TracePayload::Dequeue {
            seq,
            flow: b as u32,
        },
        11 => TracePayload::Attempt {
            seq,
            attempt: (b % 16) as u32,
            cw: c as u32,
            slots: d as u32,
        },
        12 => TracePayload::RxOutcome {
            seq,
            class: class_of(b),
            outcome: outcome_of(c),
        },
        13 => TracePayload::BoeOverhear {
            seq,
            verdict: verdict_of(b),
        },
        _ => TracePayload::Deliver {
            seq,
            flow: b as u32,
        },
    }
}

fn kind_of(i: u64) -> TraceKind {
    match i % 15 {
        0 => TraceKind::TxStart,
        1 => TraceKind::TxEnd,
        2 => TraceKind::Collision,
        3 => TraceKind::Drop,
        4 => TraceKind::Queue,
        5 => TraceKind::CwChange,
        6 => TraceKind::BoeSample,
        7 => TraceKind::Admit,
        8 => TraceKind::Enqueue,
        9 => TraceKind::Dequeue,
        10 => TraceKind::Attempt,
        11 => TraceKind::RxOutcome,
        12 => TraceKind::BoeOverhear,
        13 => TraceKind::Deliver,
        _ => TraceKind::Misc,
    }
}

proptest! {
    /// The scheduler pops events in exactly the order of a stable sort by
    /// time — for any interleaving of pushes.
    #[test]
    fn scheduler_is_a_stable_time_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(Time::from_micros(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        reference.sort_by_key(|&(t, _)| t); // stable: preserves push order
        let mut popped = Vec::new();
        while let Some((t, i)) = s.pop() {
            popped.push((t.as_micros(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Popping interleaved with pushing never yields an event earlier than
    /// one already delivered.
    #[test]
    fn time_never_goes_backwards(
        ops in prop::collection::vec((0u64..1000, prop::bool::ANY), 1..300)
    ) {
        let mut s = Scheduler::new();
        let mut last = 0u64;
        let mut horizon = 0u64;
        for (t, pop) in ops {
            // Only schedule at/after the delivery horizon, as the network
            // does (no scheduling into the past).
            let at = horizon.max(t);
            s.schedule(Time::from_micros(at), ());
            if pop {
                if let Some((t, ())) = s.pop() {
                    prop_assert!(t.as_micros() >= last);
                    last = t.as_micros();
                    horizon = last;
                }
            }
        }
    }

    /// gen_range never leaves its bound and hits both halves of the range.
    #[test]
    fn gen_range_is_bounded(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = SimRng::new(seed);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            let v = rng.gen_range(bound);
            prop_assert!(v < bound);
            if v < bound / 2 { lo = true; } else { hi = true; }
        }
        if bound >= 16 {
            prop_assert!(lo && hi, "draws should cover the range");
        }
    }

    /// Identical seeds give identical streams; the stream survives clone.
    #[test]
    fn rng_is_deterministic_and_cloneable(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = a.clone();
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), c.next_u64());
        }
    }

    /// pick_weighted only ever picks indices with positive weight.
    /// Every `TracePayload` variant — including the flight-recorder
    /// lifecycle ones — survives a JSON round-trip (`to_json`/`from_json`
    /// at the event level), for arbitrary field values.
    #[test]
    fn trace_event_json_round_trips_all_variants(
        at in 0u64..MAX_EXACT,
        node in 0u64..4097,
        kinds in prop::collection::vec(any::<u64>(), 1..40),
        fields in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 40)
    ) {
        for (i, &k) in kinds.iter().enumerate() {
            let (a, b, c, d) = fields[i];
            // Variant index tracks position so a single run sweeps the
            // whole enum; the trailing draws randomise the fields.
            let ev = TraceEvent {
                at: Time::from_micros(at),
                // 4096 stands in for "no node" — the schema omits it.
                node: if node == 4096 { usize::MAX } else { node as usize },
                kind: kind_of(k),
                payload: payload_of(i as u64, a, b, c, d),
            };
            let back = TraceEvent::from_json(&ev.to_json());
            prop_assert_eq!(back.as_ref(), Ok(&ev), "payload {}", i % 15);
        }
    }

    /// A ring holding one record of every payload variant exports JSONL
    /// that parses back to exactly the held records.
    #[test]
    fn trace_jsonl_round_trips_all_variants(
        seeds in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 15)
    ) {
        let mut ring = TraceRing::new(64);
        for (i, &(a, b, c, d)) in seeds.iter().enumerate() {
            ring.push(
                Time::from_micros(i as u64),
                i,
                kind_of(i as u64),
                payload_of(i as u64, a, b, c, d),
            );
        }
        let parsed = TraceRing::parse_jsonl(&ring.to_jsonl());
        let held: Vec<TraceEvent> = ring.iter().copied().collect();
        prop_assert_eq!(parsed, Ok(held));
    }

    #[test]
    fn pick_weighted_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0f64..10.0, 1..20)
    ) {
        let mut rng = SimRng::new(seed);
        let total: f64 = weights.iter().sum();
        for _ in 0..100 {
            match rng.pick_weighted(&weights) {
                Some(i) => prop_assert!(weights[i] > 0.0),
                None => prop_assert!(total <= 0.0),
            }
        }
    }
}
