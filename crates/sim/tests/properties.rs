//! Property-based tests for the simulation kernel.

use ezflow_sim::{Scheduler, SimRng, Time};
use proptest::prelude::*;

proptest! {
    /// The scheduler pops events in exactly the order of a stable sort by
    /// time — for any interleaving of pushes.
    #[test]
    fn scheduler_is_a_stable_time_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(Time::from_micros(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        reference.sort_by_key(|&(t, _)| t); // stable: preserves push order
        let mut popped = Vec::new();
        while let Some((t, i)) = s.pop() {
            popped.push((t.as_micros(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Popping interleaved with pushing never yields an event earlier than
    /// one already delivered.
    #[test]
    fn time_never_goes_backwards(
        ops in prop::collection::vec((0u64..1000, prop::bool::ANY), 1..300)
    ) {
        let mut s = Scheduler::new();
        let mut last = 0u64;
        let mut horizon = 0u64;
        for (t, pop) in ops {
            // Only schedule at/after the delivery horizon, as the network
            // does (no scheduling into the past).
            let at = horizon.max(t);
            s.schedule(Time::from_micros(at), ());
            if pop {
                if let Some((t, ())) = s.pop() {
                    prop_assert!(t.as_micros() >= last);
                    last = t.as_micros();
                    horizon = last;
                }
            }
        }
    }

    /// gen_range never leaves its bound and hits both halves of the range.
    #[test]
    fn gen_range_is_bounded(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = SimRng::new(seed);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            let v = rng.gen_range(bound);
            prop_assert!(v < bound);
            if v < bound / 2 { lo = true; } else { hi = true; }
        }
        if bound >= 16 {
            prop_assert!(lo && hi, "draws should cover the range");
        }
    }

    /// Identical seeds give identical streams; the stream survives clone.
    #[test]
    fn rng_is_deterministic_and_cloneable(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = a.clone();
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), c.next_u64());
        }
    }

    /// pick_weighted only ever picks indices with positive weight.
    #[test]
    fn pick_weighted_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0f64..10.0, 1..20)
    ) {
        let mut rng = SimRng::new(seed);
        let total: f64 = weights.iter().sum();
        for _ in 0..100 {
            match rng.pick_weighted(&weights) {
                Some(i) => prop_assert!(weights[i] > 0.0),
                None => prop_assert!(total <= 0.0),
            }
        }
    }
}
