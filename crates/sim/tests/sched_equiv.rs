//! Heap vs calendar-queue equivalence.
//!
//! The two scheduler backends must be observationally indistinguishable:
//! identical pop sequences (times, payloads and `EventId`s), identical
//! stale-elision decisions, and identical bookkeeping (`len`,
//! `depth_high_water`, `stale_drops`, `peek_time`). This harness drives
//! both with the same randomized schedule/cancel workload — short
//! DCF-like timers, same-instant FIFO ties, deep-overflow events past the
//! wheel horizon, epoch-token cancel storms, and `pop_before` horizons
//! that slice the run arbitrarily — and asserts lock-step equality after
//! every operation. `scripts/check.sh` runs this file explicitly so the
//! heap fallback can never rot.

use ezflow_sim::{SchedKind, Scheduler, SimRng, Time, TimerHandle};
use proptest::prelude::*;

/// Event payload: an owner with the epoch token it was scheduled under
/// (the MAC's cancellation pattern) plus a unique tag for identity checks.
/// Keyed entries — the ones moved in place through [`TimerHandle`]s —
/// carry [`KEYED`] instead of an epoch: per the engine's handle
/// discipline they are never abandoned to the stale hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev {
    owner: usize,
    epoch: u64,
    tag: u64,
}

const OWNERS: usize = 8;

/// Epoch sentinel for handle-managed entries (exempt from stale elision).
const KEYED: u64 = u64::MAX;

/// `rng.gen_range` with u64 ergonomics for this file's workload mixes.
fn below(rng: &mut SimRng, bound: u64) -> u64 {
    rng.gen_range(bound as u32) as u64
}

struct Pair {
    heap: Scheduler<Ev>,
    wheel: Scheduler<Ev>,
    /// Current epoch per owner; events scheduled under an older epoch are
    /// stale and must be elided at pop time by both backends.
    epochs: [u64; OWNERS],
    /// Live handle pairs `(tag, heap handle, wheel handle)` for keyed
    /// entries still pending in both queues.
    handles: Vec<(u64, TimerHandle, TimerHandle)>,
    /// Logical timers currently parked (removed, awaiting revival).
    parked: usize,
    now: u64,
    next_tag: u64,
}

impl Pair {
    fn new() -> Self {
        Pair {
            heap: Scheduler::with_kind(SchedKind::Heap),
            wheel: Scheduler::with_kind(SchedKind::Wheel),
            epochs: [0; OWNERS],
            handles: Vec::new(),
            parked: 0,
            now: 0,
            next_tag: 0,
        }
    }

    fn schedule(&mut self, delta_us: u64, owner: usize) {
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: self.epochs[owner],
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.heap.schedule(at, ev);
        let b = self.wheel.schedule(at, ev);
        assert_eq!(a, b, "EventIds must match");
        self.check();
    }

    /// Schedules a keyed entry and tracks its handles.
    fn schedule_keyed(&mut self, delta_us: u64, owner: usize) {
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: KEYED,
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.heap.schedule_keyed(at, ev);
        let b = self.wheel.schedule_keyed(at, ev);
        assert_eq!(a, b, "handles must match");
        self.handles.push((ev.tag, a, b));
        self.check();
    }

    /// Moves the `pick`-th live keyed entry to a new instant in place.
    fn reschedule(&mut self, pick: usize, delta_us: u64) {
        if self.handles.is_empty() {
            return;
        }
        let i = pick % self.handles.len();
        let (_, ha, hb) = self.handles[i];
        let at = Time::from_micros(self.now + delta_us);
        let owner = pick % OWNERS;
        let ev = Ev {
            owner,
            epoch: KEYED,
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.heap.reschedule(Some(ha), at, ev);
        let b = self.wheel.reschedule(Some(hb), at, ev);
        assert_eq!(a, b, "rescheduled handles must match");
        self.handles[i] = (ev.tag, a, b);
        self.check();
    }

    /// Parks the `pick`-th live keyed entry (physical removal).
    fn park(&mut self, pick: usize) {
        if self.handles.is_empty() {
            return;
        }
        let i = pick % self.handles.len();
        let (_, ha, hb) = self.handles.swap_remove(i);
        assert!(self.heap.remove(ha), "heap lost a live handle");
        assert!(self.wheel.remove(hb), "wheel lost a live handle");
        self.parked += 1;
        self.check();
    }

    /// Revives one parked logical timer as a reschedule without a
    /// predecessor.
    fn resume(&mut self, delta_us: u64, owner: usize) {
        if self.parked == 0 {
            return;
        }
        self.parked -= 1;
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: KEYED,
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.heap.reschedule(None, at, ev);
        let b = self.wheel.reschedule(None, at, ev);
        assert_eq!(a, b);
        self.handles.push((ev.tag, a, b));
        self.check();
    }

    fn bump(&mut self, owner: usize) {
        self.epochs[owner] += 1;
    }

    /// Pops one event from each backend up to `until`, asserting both
    /// return the same thing and elide the same stale entries.
    fn pop_before(&mut self, until: Time) -> Option<(Time, Ev)> {
        let epochs = self.epochs;
        let stale = |_: Time, e: &Ev| e.epoch != KEYED && epochs[e.owner] != e.epoch;
        let a = self.heap.pop_before(until, stale);
        let b = self.wheel.pop_before(until, stale);
        assert_eq!(a, b, "pop sequences must match");
        if let Some((t, ev)) = a {
            assert!(t.as_micros() >= self.now, "time went backwards");
            self.now = t.as_micros();
            if ev.epoch == KEYED {
                // The entry left the queue: its handles are dead.
                self.handles.retain(|(tag, _, _)| *tag != ev.tag);
            }
        } else if until != Time::MAX {
            self.now = until.as_micros();
        }
        self.check();
        a
    }

    /// Lock-step bookkeeping equality (the `depth_high_water` satellite:
    /// maintained identically by both backends, elisions included).
    fn check(&self) {
        assert_eq!(self.heap.len(), self.wheel.len());
        assert_eq!(self.heap.is_empty(), self.wheel.is_empty());
        assert_eq!(self.heap.scheduled_total(), self.wheel.scheduled_total());
        assert_eq!(
            self.heap.depth_high_water(),
            self.wheel.depth_high_water(),
            "high-water accounting diverged"
        );
        assert_eq!(self.heap.stale_drops(), self.wheel.stale_drops());
        assert_eq!(
            self.heap.rescheduled_total(),
            self.wheel.rescheduled_total()
        );
        assert_eq!(self.heap.removed_total(), self.wheel.removed_total());
        assert_eq!(self.heap.peek_time(), self.wheel.peek_time());
    }

    /// Drains both queues to empty, comparing every pop.
    fn drain(&mut self) {
        while self.pop_before(Time::MAX).is_some() {}
        assert!(self.heap.is_empty() && self.wheel.is_empty());
    }
}

/// One randomized workload: schedule-heavy, with cancel storms and
/// arbitrary pop horizons.
fn run_workload(seed: u64, ops: usize) {
    let mut rng = SimRng::new(seed);
    let mut pair = Pair::new();
    for _ in 0..ops {
        // Shared delta mix: mostly short DCF-like horizons, with tie
        // pressure, around-the-horizon and deep-overflow tails.
        let delta = match below(&mut rng, 10) {
            0..=4 => below(&mut rng, 2_048),  // slots, SIFS/DIFS, ACK timeouts
            5..=6 => below(&mut rng, 4) * 20, // same-instant / same-slot ties
            7..=8 => 61_000 + below(&mut rng, 9_000), // straddles the 65.536 ms horizon
            _ => below(&mut rng, 3_000_000),  // far future (overflow heap)
        };
        let owner = below(&mut rng, OWNERS as u64) as usize;
        match below(&mut rng, 100) {
            0..=39 => pair.schedule(delta, owner),
            40..=49 => pair.schedule_keyed(delta, owner),
            // In-place reschedule storm: move a live keyed entry,
            // possibly across the bucket/overflow boundary.
            50..=61 => {
                let pick = below(&mut rng, 1 << 30) as usize;
                pair.reschedule(pick, delta);
            }
            62..=66 => {
                let pick = below(&mut rng, 1 << 30) as usize;
                pair.park(pick);
            }
            67..=69 => pair.resume(delta, owner),
            70..=79 => {
                // Cancel storm: invalidate one owner's outstanding timers.
                pair.bump(owner);
            }
            _ => {
                let until = Time::from_micros(pair.now + below(&mut rng, 100_000));
                pair.pop_before(until);
            }
        }
    }
    pair.drain();
}

proptest! {
    #[test]
    fn heap_and_wheel_agree_on_random_workloads(seed in any::<u64>()) {
        run_workload(seed, 400);
    }

    /// Keyed churn under horizon slicing: `remove`/`reschedule` storms
    /// interleaved with small `pop_before` horizons, so entries are moved
    /// and parked *while* the wheel rotates bucket by bucket instead of
    /// draining in one sweep. This is the seam the sharded façade leans
    /// on — it pops single entries per merge step, which makes every pop
    /// a tiny horizon slice from the backend's point of view.
    #[test]
    fn keyed_churn_under_horizon_slicing_stays_in_lock_step(
        seed in any::<u64>(),
        slice_us in 1u64..150_000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut pair = Pair::new();
        for i in 0..16 {
            pair.schedule_keyed(below(&mut rng, 2_048), i % OWNERS);
        }
        for step in 0..250usize {
            // Delta mix biased to straddle bucket and horizon boundaries,
            // so keyed moves cross the bucket/overflow seam mid-rotation.
            let delta = match below(&mut rng, 6) {
                0 => below(&mut rng, 256),
                1 => below(&mut rng, 4) * 20,
                2 => 60_000 + below(&mut rng, 12_000),
                3 => 65_536 + below(&mut rng, 128),
                _ => below(&mut rng, 1_500_000),
            };
            match below(&mut rng, 10) {
                0..=3 => pair.reschedule(below(&mut rng, 1 << 30) as usize, delta),
                4 => pair.park(below(&mut rng, 1 << 30) as usize),
                5 => pair.resume(delta, step % OWNERS),
                6 => pair.schedule_keyed(delta, step % OWNERS),
                7 => pair.schedule(delta, step % OWNERS),
                8 => pair.bump(step % OWNERS),
                _ => {
                    // Advance through several thin horizon slices rather
                    // than one big drain: rotation happens under churn.
                    for _ in 0..3 {
                        let until = Time::from_micros(pair.now + slice_us);
                        while pair.pop_before(until).is_some() {}
                    }
                }
            }
        }
        pair.drain();
    }
}

#[test]
fn same_instant_fifo_ties_pop_identically() {
    let mut pair = Pair::new();
    // A burst of ties at one instant, interleaved with bumps so some of
    // the tied entries are stale.
    for i in 0..64 {
        pair.schedule(100, i % OWNERS);
        if i % 5 == 0 {
            pair.bump(i % OWNERS);
        }
    }
    let mut tags = Vec::new();
    while let Some((at, ev)) = pair.pop_before(Time::from_micros(100)) {
        assert_eq!(at, Time::from_micros(100));
        tags.push(ev.tag);
    }
    let mut sorted = tags.clone();
    sorted.sort_unstable();
    assert_eq!(tags, sorted, "ties must pop in schedule (FIFO) order");
    assert!(
        pair.heap.stale_drops() > 0,
        "the storm must elide something"
    );
}

#[test]
fn cancel_storm_elides_everything_identically() {
    let mut pair = Pair::new();
    for i in 0..200u64 {
        pair.schedule(i * 7, (i % OWNERS as u64) as usize);
    }
    for o in 0..OWNERS {
        pair.bump(o);
    }
    pair.drain();
    assert_eq!(pair.heap.stale_drops(), 200, "every entry was stale");
    assert_eq!(pair.heap.depth_high_water(), 200);
}

#[test]
fn reschedule_storm_stays_in_lock_step() {
    // A dense in-place reschedule storm — every keyed entry moved many
    // times, crossing the wheel's bucket/overflow boundary in both
    // directions and mixing with parks, revivals and epoch-stale
    // bystanders — must keep both backends byte-identical.
    let mut rng = SimRng::new(77);
    let mut pair = Pair::new();
    for i in 0..24 {
        pair.schedule_keyed(below(&mut rng, 2_048), i % OWNERS);
        pair.schedule(below(&mut rng, 2_048), i % OWNERS);
    }
    for step in 0..600 {
        let delta = match below(&mut rng, 4) {
            0 => below(&mut rng, 512),
            1 => below(&mut rng, 4) * 20,
            2 => 60_000 + below(&mut rng, 12_000),
            _ => below(&mut rng, 1_000_000),
        };
        match below(&mut rng, 10) {
            0..=5 => pair.reschedule(below(&mut rng, 1 << 30) as usize, delta),
            6 => pair.park(below(&mut rng, 1 << 30) as usize),
            7 => pair.resume(delta, step % OWNERS),
            8 => pair.bump(step % OWNERS),
            _ => {
                let until = Time::from_micros(pair.now + below(&mut rng, 5_000));
                pair.pop_before(until);
            }
        }
    }
    assert!(
        pair.heap.rescheduled_total() > 100,
        "the storm must actually reschedule"
    );
    pair.drain();
}

#[test]
fn horizon_slicing_never_changes_decisions() {
    // Slicing the same workload into many tiny pop_before horizons must
    // give the same final accounting as one big drain (stale entries
    // beyond the horizon are left alone by contract).
    let run = |slice_us: u64| {
        let mut rng = SimRng::new(9);
        let mut pair = Pair::new();
        for _ in 0..100 {
            let delta = below(&mut rng, 50_000);
            let owner = below(&mut rng, OWNERS as u64) as usize;
            pair.schedule(delta, owner);
            if below(&mut rng, 3) == 0 {
                pair.bump(below(&mut rng, OWNERS as u64) as usize);
            }
        }
        let mut popped = Vec::new();
        let mut until = 0;
        while !pair.heap.is_empty() {
            until += slice_us;
            while let Some((t, ev)) = pair.pop_before(Time::from_micros(until)) {
                popped.push((t, ev.tag));
            }
        }
        (popped, pair.heap.stale_drops())
    };
    assert_eq!(run(100), run(1_000_000));
}
