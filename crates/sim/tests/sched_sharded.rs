//! Sharded vs serial scheduler equivalence.
//!
//! The sharded façade must be observationally indistinguishable from one
//! serial [`Scheduler`] no matter how entries are spread across shards:
//! identical pop sequences (times, payloads, `EventId`s), identical
//! stale-elision decisions, and identical global bookkeeping. This is the
//! byte-identity foundation of the sharded engine — the network snapshot
//! pins in `ezflow-net` rest on the property proven here at the queue
//! level. Same harness shape as `sched_equiv.rs`, but the pair under
//! test is serial-vs-sharded (for both backend kinds and several shard
//! counts) rather than heap-vs-wheel.

use ezflow_sim::{Duration, SchedKind, Scheduler, ShardedScheduler, SimRng, Time, TimerHandle};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev {
    owner: usize,
    epoch: u64,
    tag: u64,
}

const OWNERS: usize = 8;

/// Epoch sentinel for handle-managed entries (exempt from stale elision).
const KEYED: u64 = u64::MAX;

/// DIFS + one slot — the engine's cross-shard lookahead.
const LOOKAHEAD: Duration = Duration::from_micros(70);

fn below(rng: &mut SimRng, bound: u64) -> u64 {
    rng.gen_range(bound as u32) as u64
}

struct Pair {
    serial: Scheduler<Ev>,
    sharded: ShardedScheduler<Ev>,
    /// Shard count, for the owner → shard route.
    k: usize,
    epochs: [u64; OWNERS],
    /// Live `(tag, owner, serial handle, sharded handle)` keyed entries.
    handles: Vec<(u64, usize, TimerHandle, TimerHandle)>,
    parked: Vec<usize>,
    now: u64,
    next_tag: u64,
}

impl Pair {
    fn new(kind: SchedKind, k: usize) -> Self {
        Pair {
            serial: Scheduler::with_kind(kind),
            sharded: ShardedScheduler::with_kind(kind, k, LOOKAHEAD),
            k,
            epochs: [0; OWNERS],
            handles: Vec::new(),
            parked: Vec::new(),
            now: 0,
            next_tag: 0,
        }
    }

    /// The static owner → shard route (a node never migrates).
    fn shard(&self, owner: usize) -> usize {
        owner % self.k
    }

    fn schedule(&mut self, delta_us: u64, owner: usize) {
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: self.epochs[owner],
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.serial.schedule(at, ev);
        let b = self.sharded.schedule(self.shard(owner), at, ev);
        assert_eq!(a, b, "EventIds must match");
        self.check();
    }

    fn schedule_keyed(&mut self, delta_us: u64, owner: usize) {
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: KEYED,
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.serial.schedule_keyed(at, ev);
        let b = self.sharded.schedule_keyed(self.shard(owner), at, ev);
        assert_eq!(a, b, "handles must match");
        self.handles.push((ev.tag, owner, a, b));
        self.check();
    }

    fn reschedule(&mut self, pick: usize, delta_us: u64) {
        if self.handles.is_empty() {
            return;
        }
        let i = pick % self.handles.len();
        let (_, owner, ha, hb) = self.handles[i];
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: KEYED,
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.serial.reschedule(Some(ha), at, ev);
        let b = self.sharded.reschedule(self.shard(owner), Some(hb), at, ev);
        assert_eq!(a, b, "rescheduled handles must match");
        self.handles[i] = (ev.tag, owner, a, b);
        self.check();
    }

    fn park(&mut self, pick: usize) {
        if self.handles.is_empty() {
            return;
        }
        let i = pick % self.handles.len();
        let (_, owner, ha, hb) = self.handles.swap_remove(i);
        assert!(self.serial.remove(ha), "serial lost a live handle");
        assert!(
            self.sharded.remove(self.shard(owner), hb),
            "sharded lost a live handle"
        );
        self.parked.push(owner);
        self.check();
    }

    fn resume(&mut self, delta_us: u64) {
        let Some(owner) = self.parked.pop() else {
            return;
        };
        let at = Time::from_micros(self.now + delta_us);
        let ev = Ev {
            owner,
            epoch: KEYED,
            tag: self.next_tag,
        };
        self.next_tag += 1;
        let a = self.serial.reschedule(None, at, ev);
        let b = self.sharded.reschedule(self.shard(owner), None, at, ev);
        assert_eq!(a, b);
        self.handles.push((ev.tag, owner, a, b));
        self.check();
    }

    fn bump(&mut self, owner: usize) {
        self.epochs[owner] += 1;
    }

    fn pop_before(&mut self, until: Time) -> Option<(Time, Ev)> {
        let epochs = self.epochs;
        let stale = |_: Time, e: &Ev| e.epoch != KEYED && epochs[e.owner] != e.epoch;
        let a = self.serial.pop_before(until, stale);
        let b = self.sharded.pop_before(until, stale);
        assert_eq!(a, b, "pop sequences must match");
        if let Some((t, ev)) = a {
            self.now = t.as_micros();
            if ev.epoch == KEYED {
                self.handles.retain(|(tag, ..)| *tag != ev.tag);
            }
        } else if until != Time::MAX {
            self.now = until.as_micros();
        }
        self.check();
        a
    }

    fn check(&self) {
        assert_eq!(self.serial.len(), self.sharded.len());
        assert_eq!(self.serial.is_empty(), self.sharded.is_empty());
        assert_eq!(
            self.serial.scheduled_total(),
            self.sharded.scheduled_total()
        );
        assert_eq!(
            self.serial.depth_high_water(),
            self.sharded.depth_high_water(),
            "high-water accounting diverged"
        );
        assert_eq!(self.serial.stale_drops(), self.sharded.stale_drops());
        assert_eq!(
            self.serial.rescheduled_total(),
            self.sharded.rescheduled_total()
        );
        assert_eq!(self.serial.removed_total(), self.sharded.removed_total());
        assert_eq!(self.serial.peek_time(), self.sharded.peek_time());
    }

    fn drain(&mut self) {
        while self.pop_before(Time::MAX).is_some() {}
        assert!(self.serial.is_empty() && self.sharded.is_empty());
    }
}

/// One randomized workload against one (kind, shard count) pair: the
/// full op mix of `sched_equiv` — keyed moves, parks, revivals, cancel
/// storms, horizon slices — with owners statically routed to shards.
fn run_workload(kind: SchedKind, k: usize, seed: u64, ops: usize) {
    let mut rng = SimRng::new(seed);
    let mut pair = Pair::new(kind, k);
    for _ in 0..ops {
        let delta = match below(&mut rng, 10) {
            0..=4 => below(&mut rng, 2_048),
            5..=6 => below(&mut rng, 4) * 20,
            7..=8 => 61_000 + below(&mut rng, 9_000),
            _ => below(&mut rng, 3_000_000),
        };
        let owner = below(&mut rng, OWNERS as u64) as usize;
        match below(&mut rng, 100) {
            0..=39 => pair.schedule(delta, owner),
            40..=49 => pair.schedule_keyed(delta, owner),
            50..=61 => {
                let pick = below(&mut rng, 1 << 30) as usize;
                pair.reschedule(pick, delta);
            }
            62..=66 => {
                let pick = below(&mut rng, 1 << 30) as usize;
                pair.park(pick);
            }
            67..=69 => pair.resume(delta),
            70..=79 => pair.bump(owner),
            _ => {
                let until = Time::from_micros(pair.now + below(&mut rng, 100_000));
                pair.pop_before(until);
            }
        }
    }
    pair.drain();
}

proptest! {
    #[test]
    fn sharded_and_serial_agree_on_random_workloads(
        seed in any::<u64>(),
        k in 1usize..=4,
    ) {
        run_workload(SchedKind::Wheel, k, seed, 300);
    }

    #[test]
    fn sharded_heap_backend_agrees_too(seed in any::<u64>()) {
        run_workload(SchedKind::Heap, 3, seed, 200);
    }
}

#[test]
fn same_instant_ties_merge_in_seq_order_across_shards() {
    // The adversarial case for the merge point: a burst of entries at one
    // instant spread over every shard must still pop in global schedule
    // (seq) order — time alone cannot order them.
    for k in [2, 3, 4] {
        let mut pair = Pair::new(SchedKind::Wheel, k);
        for i in 0..48 {
            pair.schedule(100, i % OWNERS);
            if i % 7 == 0 {
                pair.bump(i % OWNERS);
            }
        }
        let mut tags = Vec::new();
        while let Some((at, ev)) = pair.pop_before(Time::from_micros(100)) {
            assert_eq!(at, Time::from_micros(100));
            tags.push(ev.tag);
        }
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted, "ties must merge in schedule (FIFO) order");
        assert!(
            pair.serial.stale_drops() > 0,
            "the storm must elide something"
        );
    }
}
