//! Bounded in-memory event tracing.
//!
//! A `TraceRing` is the simulator's answer to `tcpdump`: components push
//! one-line records of interesting moments (frame on air, collision, queue
//! drop, contention-window change) and the ring keeps the most recent `cap`
//! of them. Records carry a typed, `Copy` [`TracePayload`] instead of a
//! pre-formatted string, so pushing on the hot path never allocates —
//! formatting happens only when somebody renders or exports the ring. It
//! can be disabled entirely (`cap == 0`) for benchmark runs.
//!
//! For offline analysis the ring exports JSONL (one JSON object per line)
//! via [`TraceRing::to_jsonl`], and [`TraceRing::parse_jsonl`] reads the
//! same format back. [`TraceFilter`] narrows a ring by kind, node, and
//! time window.

use crate::json::JsonValue;
use crate::time::Time;
use core::fmt;
use std::collections::VecDeque;

/// What kind of moment a trace record captures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TraceKind {
    /// A frame started transmission.
    TxStart,
    /// A frame finished transmission and was (or was not) received.
    TxEnd,
    /// A reception was destroyed by an overlapping transmission.
    Collision,
    /// A packet was dropped (queue overflow or retry limit).
    Drop,
    /// A queue changed occupancy in a way worth noting.
    Queue,
    /// A controller changed a contention-window parameter.
    CwChange,
    /// A buffer-occupancy estimate was produced by the BOE.
    BoeSample,
    /// A packet was admitted at its source (flight-recorder lifecycle).
    Admit,
    /// A packet entered a per-hop forwarding queue.
    Enqueue,
    /// A packet left a queue and was handed to the MAC.
    Dequeue,
    /// The DCF started a transmission attempt for a packet.
    Attempt,
    /// The addressed receiver's decode outcome for a transmission.
    RxOutcome,
    /// A BOE matched (or failed to match) an overheard frame.
    BoeOverhear,
    /// A packet reached its final destination.
    Deliver,
    /// Anything else.
    Misc,
}

impl TraceKind {
    /// Stable machine-readable name, used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::TxStart => "TxStart",
            TraceKind::TxEnd => "TxEnd",
            TraceKind::Collision => "Collision",
            TraceKind::Drop => "Drop",
            TraceKind::Queue => "Queue",
            TraceKind::CwChange => "CwChange",
            TraceKind::BoeSample => "BoeSample",
            TraceKind::Admit => "Admit",
            TraceKind::Enqueue => "Enqueue",
            TraceKind::Dequeue => "Dequeue",
            TraceKind::Attempt => "Attempt",
            TraceKind::RxOutcome => "RxOutcome",
            TraceKind::BoeOverhear => "BoeOverhear",
            TraceKind::Deliver => "Deliver",
            TraceKind::Misc => "Misc",
        }
    }

    fn from_name(name: &str) -> Option<TraceKind> {
        Some(match name {
            "TxStart" => TraceKind::TxStart,
            "TxEnd" => TraceKind::TxEnd,
            "Collision" => TraceKind::Collision,
            "Drop" => TraceKind::Drop,
            "Queue" => TraceKind::Queue,
            "CwChange" => TraceKind::CwChange,
            "BoeSample" => TraceKind::BoeSample,
            "Admit" => TraceKind::Admit,
            "Enqueue" => TraceKind::Enqueue,
            "Dequeue" => TraceKind::Dequeue,
            "Attempt" => TraceKind::Attempt,
            "RxOutcome" => TraceKind::RxOutcome,
            "BoeOverhear" => TraceKind::BoeOverhear,
            "Deliver" => TraceKind::Deliver,
            "Misc" => TraceKind::Misc,
            _ => return None,
        })
    }
}

/// MAC-level class of a traced frame. The sim kernel keeps its own copy
/// of this enum (rather than borrowing the PHY's frame type) so tracing
/// stays dependency-free; producers map their frame kinds into it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FrameClass {
    /// A data frame.
    Data,
    /// An acknowledgement.
    Ack,
    /// A request-to-send.
    Rts,
    /// A clear-to-send.
    Cts,
}

impl FrameClass {
    /// Stable name ("Data", "Ack", ...).
    pub fn name(self) -> &'static str {
        match self {
            FrameClass::Data => "Data",
            FrameClass::Ack => "Ack",
            FrameClass::Rts => "Rts",
            FrameClass::Cts => "Cts",
        }
    }

    fn from_name(name: &str) -> Option<FrameClass> {
        Some(match name {
            "Data" => FrameClass::Data,
            "Ack" => FrameClass::Ack,
            "Rts" => FrameClass::Rts,
            "Cts" => FrameClass::Cts,
            _ => return None,
        })
    }
}

/// Why a packet was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DropCause {
    /// The MAC gave up after the retry limit.
    RetryLimit,
    /// A relay's forwarding queue was full.
    QueueFull,
    /// The source's own queue was full at admission time.
    SourceQueueFull,
    /// A relay had no route toward the packet's final destination.
    Unroutable,
    /// A MAC timer from a superseded transmission epoch was discarded
    /// (an event drop, not a packet drop; `seq` carries the stale epoch).
    StaleEpoch,
}

impl DropCause {
    /// Stable name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::RetryLimit => "retry_limit",
            DropCause::QueueFull => "queue_full",
            DropCause::SourceQueueFull => "source_queue_full",
            DropCause::Unroutable => "unroutable",
            DropCause::StaleEpoch => "stale_epoch",
        }
    }

    fn from_name(name: &str) -> Option<DropCause> {
        Some(match name {
            "retry_limit" => DropCause::RetryLimit,
            "queue_full" => DropCause::QueueFull,
            "source_queue_full" => DropCause::SourceQueueFull,
            "unroutable" => DropCause::Unroutable,
            "stale_epoch" => DropCause::StaleEpoch,
            _ => return None,
        })
    }
}

/// What happened to a transmission at its addressed receiver. The sim
/// kernel owns this enum (like [`FrameClass`]) so tracing stays
/// dependency-free; the PHY maps its decode result into it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RxOutcome {
    /// Decoded cleanly with no overlapping transmission.
    Clean,
    /// Decoded cleanly despite an overlapping transmission (capture).
    Capture,
    /// Destroyed by an overlapping transmission.
    Collision,
    /// Lost to the stochastic (Bernoulli) link-loss model.
    Loss,
}

impl RxOutcome {
    /// Stable name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            RxOutcome::Clean => "clean",
            RxOutcome::Capture => "capture",
            RxOutcome::Collision => "collision",
            RxOutcome::Loss => "loss",
        }
    }

    fn from_name(name: &str) -> Option<RxOutcome> {
        Some(match name {
            "clean" => RxOutcome::Clean,
            "capture" => RxOutcome::Capture,
            "collision" => RxOutcome::Collision,
            "loss" => RxOutcome::Loss,
            _ => return None,
        })
    }
}

/// How a BOE classified an overheard frame against its sent window.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BoeVerdict {
    /// The checksum matched exactly one recently sent frame.
    Hit,
    /// The checksum matched nothing in the sent window.
    Miss,
    /// The checksum matched more than one sent frame.
    Ambiguous,
}

impl BoeVerdict {
    /// Stable name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            BoeVerdict::Hit => "hit",
            BoeVerdict::Miss => "miss",
            BoeVerdict::Ambiguous => "ambiguous",
        }
    }

    fn from_name(name: &str) -> Option<BoeVerdict> {
        Some(match name {
            "hit" => BoeVerdict::Hit,
            "miss" => BoeVerdict::Miss,
            "ambiguous" => BoeVerdict::Ambiguous,
            _ => return None,
        })
    }
}

/// The typed, allocation-free body of a trace record.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TracePayload {
    /// No extra detail.
    Empty,
    /// A fixed annotation (for `Misc` records).
    Text(&'static str),
    /// A frame identified by class, sequence number, flow, and endpoints.
    Frame {
        /// MAC-level class.
        class: FrameClass,
        /// Flow-level sequence number.
        seq: u64,
        /// Flow id the frame belongs to.
        flow: u32,
        /// Transmitting node.
        src: usize,
        /// Intended receiver.
        dst: usize,
        /// Retry count at the moment of the record.
        retry: u32,
    },
    /// A reception destroyed by interference from `src`.
    Collision {
        /// Sequence number of the victim frame.
        seq: u64,
        /// The interfering transmitter.
        src: usize,
    },
    /// A packet dropped, and why.
    Drop {
        /// The reason.
        cause: DropCause,
        /// Sequence number of the dropped packet.
        seq: u64,
    },
    /// A queue occupancy observation.
    Queue {
        /// Packets currently queued.
        occupancy: u32,
        /// Queue capacity.
        cap: u32,
    },
    /// A contention-window move.
    CwChange {
        /// Previous CWmin.
        from: u32,
        /// New CWmin.
        to: u32,
    },
    /// A buffer-occupancy estimate from the BOE.
    BoeSample {
        /// The successor the estimate concerns.
        successor: usize,
        /// Estimated backlog (packets).
        estimate: u32,
    },
    /// A packet admitted at its source (the flight recorder's first
    /// lifecycle record for a packet id).
    Admit {
        /// Packet id (globally unique frame sequence number).
        seq: u64,
        /// Flow the packet belongs to.
        flow: u32,
    },
    /// A packet accepted into a per-hop queue; `occupancy` is the queue
    /// depth after the push.
    Enqueue {
        /// Packet id.
        seq: u64,
        /// Flow the packet belongs to.
        flow: u32,
        /// Queue depth after the push.
        occupancy: u32,
        /// Queue capacity.
        cap: u32,
    },
    /// A packet popped from a queue and handed to the node's MAC.
    Dequeue {
        /// Packet id.
        seq: u64,
        /// Flow the packet belongs to.
        flow: u32,
    },
    /// One DCF transmission attempt, with the contention state the MAC
    /// held when it drew the backoff for this attempt.
    Attempt {
        /// Packet id.
        seq: u64,
        /// Zero-based attempt number (0 = first transmission).
        attempt: u32,
        /// Contention window the backoff was drawn from.
        cw: u32,
        /// Backoff slots drawn for this attempt.
        slots: u32,
    },
    /// The addressed receiver's decode outcome for one transmission.
    RxOutcome {
        /// Packet id of the transmitted frame.
        seq: u64,
        /// MAC-level class of the transmitted frame.
        class: FrameClass,
        /// What happened at the receiver.
        outcome: RxOutcome,
    },
    /// A BOE's verdict on a frame overheard from its successor.
    BoeOverhear {
        /// Packet id of the overheard frame.
        seq: u64,
        /// Hit, miss, or ambiguous against the sent window.
        verdict: BoeVerdict,
    },
    /// A packet delivered at its final destination.
    Deliver {
        /// Packet id.
        seq: u64,
        /// Flow the packet belongs to.
        flow: u32,
    },
}

impl fmt::Display for TracePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracePayload::Empty => Ok(()),
            TracePayload::Text(s) => f.write_str(s),
            TracePayload::Frame {
                class,
                seq,
                flow,
                src,
                dst,
                retry,
            } => write!(
                f,
                "{} seq={seq} flow={flow} {src}->{dst} retry={retry}",
                class.name()
            ),
            TracePayload::Collision { seq, src } => write!(f, "seq={seq} from {src}"),
            TracePayload::Drop { cause, seq } => write!(f, "{} seq={seq}", cause.name()),
            TracePayload::Queue { occupancy, cap } => write!(f, "{occupancy}/{cap}"),
            TracePayload::CwChange { from, to } => write!(f, "{from} -> {to}"),
            TracePayload::BoeSample {
                successor,
                estimate,
            } => write!(f, "succ {successor} b={estimate}"),
            TracePayload::Admit { seq, flow } => write!(f, "seq={seq} flow={flow}"),
            TracePayload::Enqueue {
                seq,
                flow,
                occupancy,
                cap,
            } => write!(f, "seq={seq} flow={flow} q={occupancy}/{cap}"),
            TracePayload::Dequeue { seq, flow } => write!(f, "seq={seq} flow={flow}"),
            TracePayload::Attempt {
                seq,
                attempt,
                cw,
                slots,
            } => write!(f, "seq={seq} attempt={attempt} cw={cw} slots={slots}"),
            TracePayload::RxOutcome {
                seq,
                class,
                outcome,
            } => write!(f, "seq={seq} {} {}", class.name(), outcome.name()),
            TracePayload::BoeOverhear { seq, verdict } => {
                write!(f, "seq={seq} {}", verdict.name())
            }
            TracePayload::Deliver { seq, flow } => write!(f, "seq={seq} flow={flow}"),
        }
    }
}

impl TracePayload {
    fn to_json(self) -> JsonValue {
        match self {
            TracePayload::Empty => JsonValue::obj(vec![("type", JsonValue::str("empty"))]),
            TracePayload::Text(s) => JsonValue::obj(vec![
                ("type", JsonValue::str("text")),
                ("text", JsonValue::str(s)),
            ]),
            TracePayload::Frame {
                class,
                seq,
                flow,
                src,
                dst,
                retry,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("frame")),
                ("class", JsonValue::str(class.name())),
                ("seq", seq.into()),
                ("flow", flow.into()),
                ("src", src.into()),
                ("dst", dst.into()),
                ("retry", retry.into()),
            ]),
            TracePayload::Collision { seq, src } => JsonValue::obj(vec![
                ("type", JsonValue::str("collision")),
                ("seq", seq.into()),
                ("src", src.into()),
            ]),
            TracePayload::Drop { cause, seq } => JsonValue::obj(vec![
                ("type", JsonValue::str("drop")),
                ("cause", JsonValue::str(cause.name())),
                ("seq", seq.into()),
            ]),
            TracePayload::Queue { occupancy, cap } => JsonValue::obj(vec![
                ("type", JsonValue::str("queue")),
                ("occupancy", occupancy.into()),
                ("cap", cap.into()),
            ]),
            TracePayload::CwChange { from, to } => JsonValue::obj(vec![
                ("type", JsonValue::str("cw_change")),
                ("from", from.into()),
                ("to", to.into()),
            ]),
            TracePayload::BoeSample {
                successor,
                estimate,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("boe_sample")),
                ("successor", successor.into()),
                ("estimate", estimate.into()),
            ]),
            TracePayload::Admit { seq, flow } => JsonValue::obj(vec![
                ("type", JsonValue::str("admit")),
                ("seq", seq.into()),
                ("flow", flow.into()),
            ]),
            TracePayload::Enqueue {
                seq,
                flow,
                occupancy,
                cap,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("enqueue")),
                ("seq", seq.into()),
                ("flow", flow.into()),
                ("occupancy", occupancy.into()),
                ("cap", cap.into()),
            ]),
            TracePayload::Dequeue { seq, flow } => JsonValue::obj(vec![
                ("type", JsonValue::str("dequeue")),
                ("seq", seq.into()),
                ("flow", flow.into()),
            ]),
            TracePayload::Attempt {
                seq,
                attempt,
                cw,
                slots,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("attempt")),
                ("seq", seq.into()),
                ("attempt", attempt.into()),
                ("cw", cw.into()),
                ("slots", slots.into()),
            ]),
            TracePayload::RxOutcome {
                seq,
                class,
                outcome,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("rx_outcome")),
                ("seq", seq.into()),
                ("class", JsonValue::str(class.name())),
                ("outcome", JsonValue::str(outcome.name())),
            ]),
            TracePayload::BoeOverhear { seq, verdict } => JsonValue::obj(vec![
                ("type", JsonValue::str("boe_overhear")),
                ("seq", seq.into()),
                ("verdict", JsonValue::str(verdict.name())),
            ]),
            TracePayload::Deliver { seq, flow } => JsonValue::obj(vec![
                ("type", JsonValue::str("deliver")),
                ("seq", seq.into()),
                ("flow", flow.into()),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<TracePayload, String> {
        let ty = v
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or("payload missing 'type'")?;
        let u64_field = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("payload missing numeric '{name}'"))
        };
        Ok(match ty {
            "empty" => TracePayload::Empty,
            // &'static str cannot be reconstituted from parsed text; an
            // imported text payload keeps only its presence.
            "text" => TracePayload::Text(""),
            "frame" => {
                let class = v
                    .get("class")
                    .and_then(JsonValue::as_str)
                    .and_then(FrameClass::from_name)
                    .ok_or("bad frame class")?;
                TracePayload::Frame {
                    class,
                    seq: u64_field("seq")?,
                    flow: u64_field("flow")? as u32,
                    src: u64_field("src")? as usize,
                    dst: u64_field("dst")? as usize,
                    retry: u64_field("retry")? as u32,
                }
            }
            "collision" => TracePayload::Collision {
                seq: u64_field("seq")?,
                src: u64_field("src")? as usize,
            },
            "drop" => {
                let cause = v
                    .get("cause")
                    .and_then(JsonValue::as_str)
                    .and_then(DropCause::from_name)
                    .ok_or("bad drop cause")?;
                TracePayload::Drop {
                    cause,
                    seq: u64_field("seq")?,
                }
            }
            "queue" => TracePayload::Queue {
                occupancy: u64_field("occupancy")? as u32,
                cap: u64_field("cap")? as u32,
            },
            "cw_change" => TracePayload::CwChange {
                from: u64_field("from")? as u32,
                to: u64_field("to")? as u32,
            },
            "boe_sample" => TracePayload::BoeSample {
                successor: u64_field("successor")? as usize,
                estimate: u64_field("estimate")? as u32,
            },
            "admit" => TracePayload::Admit {
                seq: u64_field("seq")?,
                flow: u64_field("flow")? as u32,
            },
            "enqueue" => TracePayload::Enqueue {
                seq: u64_field("seq")?,
                flow: u64_field("flow")? as u32,
                occupancy: u64_field("occupancy")? as u32,
                cap: u64_field("cap")? as u32,
            },
            "dequeue" => TracePayload::Dequeue {
                seq: u64_field("seq")?,
                flow: u64_field("flow")? as u32,
            },
            "attempt" => TracePayload::Attempt {
                seq: u64_field("seq")?,
                attempt: u64_field("attempt")? as u32,
                cw: u64_field("cw")? as u32,
                slots: u64_field("slots")? as u32,
            },
            "rx_outcome" => {
                let class = v
                    .get("class")
                    .and_then(JsonValue::as_str)
                    .and_then(FrameClass::from_name)
                    .ok_or("bad rx_outcome class")?;
                let outcome = v
                    .get("outcome")
                    .and_then(JsonValue::as_str)
                    .and_then(RxOutcome::from_name)
                    .ok_or("bad rx outcome")?;
                TracePayload::RxOutcome {
                    seq: u64_field("seq")?,
                    class,
                    outcome,
                }
            }
            "boe_overhear" => {
                let verdict = v
                    .get("verdict")
                    .and_then(JsonValue::as_str)
                    .and_then(BoeVerdict::from_name)
                    .ok_or("bad boe verdict")?;
                TracePayload::BoeOverhear {
                    seq: u64_field("seq")?,
                    verdict,
                }
            }
            "deliver" => TracePayload::Deliver {
                seq: u64_field("seq")?,
                flow: u64_field("flow")? as u32,
            },
            other => return Err(format!("unknown payload type '{other}'")),
        })
    }

    /// The packet id (frame sequence number) this payload concerns, if it
    /// is packet-specific. This is what the flight recorder and the
    /// `trace` inspector use to group records into per-packet journeys.
    pub fn packet(&self) -> Option<u64> {
        match *self {
            TracePayload::Frame { seq, .. }
            | TracePayload::Collision { seq, .. }
            | TracePayload::Drop { seq, .. }
            | TracePayload::Admit { seq, .. }
            | TracePayload::Enqueue { seq, .. }
            | TracePayload::Dequeue { seq, .. }
            | TracePayload::Attempt { seq, .. }
            | TracePayload::RxOutcome { seq, .. }
            | TracePayload::BoeOverhear { seq, .. }
            | TracePayload::Deliver { seq, .. } => Some(seq),
            TracePayload::Empty
            | TracePayload::Text(_)
            | TracePayload::Queue { .. }
            | TracePayload::CwChange { .. }
            | TracePayload::BoeSample { .. } => None,
        }
    }
}

/// One trace record. `Copy`: pushing stores 40-odd bytes, no heap.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Time,
    /// Node the record concerns (usize::MAX when not node-specific).
    pub node: usize,
    /// Category.
    pub kind: TraceKind,
    /// Typed detail; formatted only on render/export.
    pub payload: TracePayload,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == usize::MAX {
            write!(f, "[{}] {:?}: {}", self.at, self.kind, self.payload)
        } else {
            write!(
                f,
                "[{}] n{} {:?}: {}",
                self.at, self.node, self.kind, self.payload
            )
        }
    }
}

impl TraceEvent {
    /// The JSONL representation of one record.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("at_us", JsonValue::from(self.at.as_micros()))];
        if self.node != usize::MAX {
            fields.push(("node", JsonValue::from(self.node)));
        }
        fields.push(("kind", JsonValue::str(self.kind.name())));
        fields.push(("payload", self.payload.to_json()));
        JsonValue::obj(fields)
    }

    /// Reconstruct a record from its JSONL representation.
    pub fn from_json(v: &JsonValue) -> Result<TraceEvent, String> {
        let at = v
            .get("at_us")
            .and_then(JsonValue::as_u64)
            .ok_or("record missing 'at_us'")?;
        let node = match v.get("node") {
            Some(n) => n.as_u64().ok_or("bad 'node'")? as usize,
            None => usize::MAX,
        };
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(TraceKind::from_name)
            .ok_or("bad 'kind'")?;
        let payload = TracePayload::from_json(v.get("payload").ok_or("record missing 'payload'")?)?;
        Ok(TraceEvent {
            at: Time::from_micros(at),
            node,
            kind,
            payload,
        })
    }
}

/// A conjunctive filter over trace records: every constraint set must
/// hold. Built fluently: `TraceFilter::new().kind(..).node(..)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceFilter {
    kind: Option<TraceKind>,
    node: Option<usize>,
    from: Option<Time>,
    until: Option<Time>,
}

impl TraceFilter {
    /// A filter matching everything.
    pub fn new() -> Self {
        TraceFilter::default()
    }

    /// Keep only records of `kind`.
    pub fn kind(mut self, kind: TraceKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep only records concerning `node`.
    pub fn node(mut self, node: usize) -> Self {
        self.node = Some(node);
        self
    }

    /// Keep only records in the half-open window `[from, until)`.
    pub fn between(mut self, from: Time, until: Time) -> Self {
        self.from = Some(from);
        self.until = Some(until);
        self
    }

    /// Whether `ev` passes every constraint.
    pub fn matches(&self, ev: &TraceEvent) -> bool {
        if let Some(k) = self.kind {
            if ev.kind != k {
                return false;
            }
        }
        if let Some(n) = self.node {
            if ev.node != n {
                return false;
            }
        }
        if let Some(from) = self.from {
            if ev.at < from {
                return false;
            }
        }
        if let Some(until) = self.until {
            if ev.at >= until {
                return false;
            }
        }
        true
    }
}

/// A bounded ring of [`TraceEvent`]s.
pub struct TraceRing {
    cap: usize,
    ring: VecDeque<TraceEvent>,
    pushed: u64,
}

/// The ring is embedded in `ezflow-net`'s `Network`, which crosses thread
/// boundaries when a sweep runner fans runs across workers — so it must
/// stay `Send` (plain owned data; this trips at compile time if a future
/// field breaks that).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TraceRing>();
};

impl TraceRing {
    /// Creates a ring keeping at most `cap` records; `cap == 0` disables
    /// tracing (pushes become no-ops beyond a counter increment).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            // Full capacity up front (bounded for sanity), so steady-state
            // pushes never reallocate.
            ring: VecDeque::with_capacity(cap.min(4096)),
            pushed: 0,
        }
    }

    /// Whether records are being kept.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Pushes a record, evicting the oldest if full. The payload is
    /// `Copy`; nothing is formatted or allocated here.
    pub fn push(&mut self, at: Time, node: usize, kind: TraceKind, payload: TracePayload) {
        self.pushed += 1;
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            at,
            node,
            kind,
            payload,
        });
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Records passing `filter`, oldest first.
    pub fn filtered(&self, filter: TraceFilter) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter().filter(move |ev| filter.matches(ev))
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True iff no records are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total number of records ever pushed (including evicted/disabled).
    pub fn pushed_total(&self) -> u64 {
        self.pushed
    }

    /// Renders the whole ring, one record per line (debugging helper).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Exports the held records as JSONL: one compact JSON object per
    /// line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    /// Drops all held records (the counter is preserved).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Parses records from JSONL produced by [`TraceRing::to_jsonl`].
    /// Blank lines are skipped; the error names the offending line.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            out.push(TraceEvent::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    fn frame(seq: u64) -> TracePayload {
        TracePayload::Frame {
            class: FrameClass::Data,
            seq,
            flow: 0,
            src: 0,
            dst: 1,
            retry: 0,
        }
    }

    #[test]
    fn keeps_most_recent_cap_records() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(t(i), 0, TraceKind::TxStart, frame(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed_total(), 5);
        let seqs: Vec<u64> = ring
            .iter()
            .map(|e| match e.payload {
                TracePayload::Frame { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_cap_disables_storage_but_counts() {
        let mut ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.push(
            t(1),
            0,
            TraceKind::Drop,
            TracePayload::Drop {
                cause: DropCause::QueueFull,
                seq: 9,
            },
        );
        assert!(ring.is_empty());
        assert_eq!(ring.pushed_total(), 1);
    }

    #[test]
    fn render_formats_lines() {
        let mut ring = TraceRing::new(8);
        ring.push(
            t(1_000_000),
            2,
            TraceKind::Collision,
            TracePayload::Collision { seq: 7, src: 3 },
        );
        ring.push(
            t(2_000_000),
            usize::MAX,
            TraceKind::Misc,
            TracePayload::Text("global"),
        );
        let text = ring.render();
        assert!(text.contains("n2 Collision: seq=7 from 3"), "{text}");
        assert!(text.contains("Misc: global"), "{text}");
        // The node field is omitted for global records.
        assert!(!text.contains("n18446744073709551615"), "{text}");
    }

    #[test]
    fn clear_preserves_counter() {
        let mut ring = TraceRing::new(2);
        ring.push(t(0), 0, TraceKind::Misc, TracePayload::Empty);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed_total(), 1);
    }

    #[test]
    fn filters_by_kind_node_and_window() {
        let mut ring = TraceRing::new(64);
        for i in 0..10u64 {
            let kind = if i % 2 == 0 {
                TraceKind::TxStart
            } else {
                TraceKind::TxEnd
            };
            ring.push(t(i * 100), (i % 3) as usize, kind, frame(i));
        }
        let starts: Vec<_> = ring
            .filtered(TraceFilter::new().kind(TraceKind::TxStart))
            .collect();
        assert_eq!(starts.len(), 5);
        assert!(starts.iter().all(|e| e.kind == TraceKind::TxStart));

        let on_node_1: Vec<_> = ring.filtered(TraceFilter::new().node(1)).collect();
        assert_eq!(on_node_1.len(), 3, "i = 1, 4, 7");

        // Half-open window: 300 included, 600 excluded.
        let windowed: Vec<_> = ring
            .filtered(TraceFilter::new().between(t(300), t(600)))
            .collect();
        assert_eq!(windowed.len(), 3, "i = 3, 4, 5");

        let combined: Vec<_> = ring
            .filtered(
                TraceFilter::new()
                    .kind(TraceKind::TxEnd)
                    .node(1)
                    .between(t(0), t(500)),
            )
            .collect();
        assert_eq!(combined.len(), 1, "only i = 1");
    }

    #[test]
    fn jsonl_round_trips_every_payload() {
        let mut ring = TraceRing::new(64);
        ring.push(t(1), 0, TraceKind::TxStart, frame(5));
        ring.push(
            t(2),
            1,
            TraceKind::Collision,
            TracePayload::Collision { seq: 5, src: 2 },
        );
        ring.push(
            t(3),
            2,
            TraceKind::Drop,
            TracePayload::Drop {
                cause: DropCause::RetryLimit,
                seq: 6,
            },
        );
        ring.push(
            t(4),
            0,
            TraceKind::Queue,
            TracePayload::Queue {
                occupancy: 12,
                cap: 50,
            },
        );
        ring.push(
            t(5),
            0,
            TraceKind::CwChange,
            TracePayload::CwChange { from: 32, to: 64 },
        );
        ring.push(
            t(6),
            1,
            TraceKind::BoeSample,
            TracePayload::BoeSample {
                successor: 2,
                estimate: 7,
            },
        );
        ring.push(t(7), usize::MAX, TraceKind::Misc, TracePayload::Empty);

        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), ring.len());
        let parsed = TraceRing::parse_jsonl(&jsonl).unwrap();
        let original: Vec<TraceEvent> = ring.iter().copied().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        assert!(TraceRing::parse_jsonl("{oops")
            .unwrap_err()
            .contains("line 1"));
        let missing_kind = r#"{"at_us": 1, "payload": {"type": "empty"}}"#;
        assert!(TraceRing::parse_jsonl(missing_kind).is_err());
        // Blank lines are fine.
        assert_eq!(TraceRing::parse_jsonl("\n\n").unwrap().len(), 0);
    }
}
