//! Bounded in-memory event tracing.
//!
//! A `TraceRing` is the simulator's answer to `tcpdump`: components push
//! one-line records of interesting moments (frame on air, collision, queue
//! drop, contention-window change) and the ring keeps the most recent `cap`
//! of them. Records carry a typed, `Copy` [`TracePayload`] instead of a
//! pre-formatted string, so pushing on the hot path never allocates —
//! formatting happens only when somebody renders or exports the ring. It
//! can be disabled entirely (`cap == 0`) for benchmark runs.
//!
//! For offline analysis the ring exports JSONL (one JSON object per line)
//! via [`TraceRing::to_jsonl`], and [`TraceRing::parse_jsonl`] reads the
//! same format back. [`TraceFilter`] narrows a ring by kind, node, and
//! time window.

use crate::json::JsonValue;
use crate::time::Time;
use core::fmt;
use std::collections::VecDeque;

/// What kind of moment a trace record captures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TraceKind {
    /// A frame started transmission.
    TxStart,
    /// A frame finished transmission and was (or was not) received.
    TxEnd,
    /// A reception was destroyed by an overlapping transmission.
    Collision,
    /// A packet was dropped (queue overflow or retry limit).
    Drop,
    /// A queue changed occupancy in a way worth noting.
    Queue,
    /// A controller changed a contention-window parameter.
    CwChange,
    /// A buffer-occupancy estimate was produced by the BOE.
    BoeSample,
    /// Anything else.
    Misc,
}

impl TraceKind {
    /// Stable machine-readable name, used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::TxStart => "TxStart",
            TraceKind::TxEnd => "TxEnd",
            TraceKind::Collision => "Collision",
            TraceKind::Drop => "Drop",
            TraceKind::Queue => "Queue",
            TraceKind::CwChange => "CwChange",
            TraceKind::BoeSample => "BoeSample",
            TraceKind::Misc => "Misc",
        }
    }

    fn from_name(name: &str) -> Option<TraceKind> {
        Some(match name {
            "TxStart" => TraceKind::TxStart,
            "TxEnd" => TraceKind::TxEnd,
            "Collision" => TraceKind::Collision,
            "Drop" => TraceKind::Drop,
            "Queue" => TraceKind::Queue,
            "CwChange" => TraceKind::CwChange,
            "BoeSample" => TraceKind::BoeSample,
            "Misc" => TraceKind::Misc,
            _ => return None,
        })
    }
}

/// MAC-level class of a traced frame. The sim kernel keeps its own copy
/// of this enum (rather than borrowing the PHY's frame type) so tracing
/// stays dependency-free; producers map their frame kinds into it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FrameClass {
    /// A data frame.
    Data,
    /// An acknowledgement.
    Ack,
    /// A request-to-send.
    Rts,
    /// A clear-to-send.
    Cts,
}

impl FrameClass {
    /// Stable name ("Data", "Ack", ...).
    pub fn name(self) -> &'static str {
        match self {
            FrameClass::Data => "Data",
            FrameClass::Ack => "Ack",
            FrameClass::Rts => "Rts",
            FrameClass::Cts => "Cts",
        }
    }

    fn from_name(name: &str) -> Option<FrameClass> {
        Some(match name {
            "Data" => FrameClass::Data,
            "Ack" => FrameClass::Ack,
            "Rts" => FrameClass::Rts,
            "Cts" => FrameClass::Cts,
            _ => return None,
        })
    }
}

/// Why a packet was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DropCause {
    /// The MAC gave up after the retry limit.
    RetryLimit,
    /// A forwarding queue was full.
    QueueFull,
}

impl DropCause {
    /// Stable name used by the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::RetryLimit => "retry_limit",
            DropCause::QueueFull => "queue_full",
        }
    }

    fn from_name(name: &str) -> Option<DropCause> {
        Some(match name {
            "retry_limit" => DropCause::RetryLimit,
            "queue_full" => DropCause::QueueFull,
            _ => return None,
        })
    }
}

/// The typed, allocation-free body of a trace record.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TracePayload {
    /// No extra detail.
    Empty,
    /// A fixed annotation (for `Misc` records).
    Text(&'static str),
    /// A frame identified by class, sequence number, flow, and endpoints.
    Frame {
        /// MAC-level class.
        class: FrameClass,
        /// Flow-level sequence number.
        seq: u64,
        /// Flow id the frame belongs to.
        flow: u32,
        /// Transmitting node.
        src: usize,
        /// Intended receiver.
        dst: usize,
        /// Retry count at the moment of the record.
        retry: u32,
    },
    /// A reception destroyed by interference from `src`.
    Collision {
        /// Sequence number of the victim frame.
        seq: u64,
        /// The interfering transmitter.
        src: usize,
    },
    /// A packet dropped, and why.
    Drop {
        /// The reason.
        cause: DropCause,
        /// Sequence number of the dropped packet.
        seq: u64,
    },
    /// A queue occupancy observation.
    Queue {
        /// Packets currently queued.
        occupancy: u32,
        /// Queue capacity.
        cap: u32,
    },
    /// A contention-window move.
    CwChange {
        /// Previous CWmin.
        from: u32,
        /// New CWmin.
        to: u32,
    },
    /// A buffer-occupancy estimate from the BOE.
    BoeSample {
        /// The successor the estimate concerns.
        successor: usize,
        /// Estimated backlog (packets).
        estimate: u32,
    },
}

impl fmt::Display for TracePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracePayload::Empty => Ok(()),
            TracePayload::Text(s) => f.write_str(s),
            TracePayload::Frame {
                class,
                seq,
                flow,
                src,
                dst,
                retry,
            } => write!(
                f,
                "{} seq={seq} flow={flow} {src}->{dst} retry={retry}",
                class.name()
            ),
            TracePayload::Collision { seq, src } => write!(f, "seq={seq} from {src}"),
            TracePayload::Drop { cause, seq } => write!(f, "{} seq={seq}", cause.name()),
            TracePayload::Queue { occupancy, cap } => write!(f, "{occupancy}/{cap}"),
            TracePayload::CwChange { from, to } => write!(f, "{from} -> {to}"),
            TracePayload::BoeSample {
                successor,
                estimate,
            } => write!(f, "succ {successor} b={estimate}"),
        }
    }
}

impl TracePayload {
    fn to_json(self) -> JsonValue {
        match self {
            TracePayload::Empty => JsonValue::obj(vec![("type", JsonValue::str("empty"))]),
            TracePayload::Text(s) => JsonValue::obj(vec![
                ("type", JsonValue::str("text")),
                ("text", JsonValue::str(s)),
            ]),
            TracePayload::Frame {
                class,
                seq,
                flow,
                src,
                dst,
                retry,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("frame")),
                ("class", JsonValue::str(class.name())),
                ("seq", seq.into()),
                ("flow", flow.into()),
                ("src", src.into()),
                ("dst", dst.into()),
                ("retry", retry.into()),
            ]),
            TracePayload::Collision { seq, src } => JsonValue::obj(vec![
                ("type", JsonValue::str("collision")),
                ("seq", seq.into()),
                ("src", src.into()),
            ]),
            TracePayload::Drop { cause, seq } => JsonValue::obj(vec![
                ("type", JsonValue::str("drop")),
                ("cause", JsonValue::str(cause.name())),
                ("seq", seq.into()),
            ]),
            TracePayload::Queue { occupancy, cap } => JsonValue::obj(vec![
                ("type", JsonValue::str("queue")),
                ("occupancy", occupancy.into()),
                ("cap", cap.into()),
            ]),
            TracePayload::CwChange { from, to } => JsonValue::obj(vec![
                ("type", JsonValue::str("cw_change")),
                ("from", from.into()),
                ("to", to.into()),
            ]),
            TracePayload::BoeSample {
                successor,
                estimate,
            } => JsonValue::obj(vec![
                ("type", JsonValue::str("boe_sample")),
                ("successor", successor.into()),
                ("estimate", estimate.into()),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<TracePayload, String> {
        let ty = v
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or("payload missing 'type'")?;
        let u64_field = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("payload missing numeric '{name}'"))
        };
        Ok(match ty {
            "empty" => TracePayload::Empty,
            // &'static str cannot be reconstituted from parsed text; an
            // imported text payload keeps only its presence.
            "text" => TracePayload::Text(""),
            "frame" => {
                let class = v
                    .get("class")
                    .and_then(JsonValue::as_str)
                    .and_then(FrameClass::from_name)
                    .ok_or("bad frame class")?;
                TracePayload::Frame {
                    class,
                    seq: u64_field("seq")?,
                    flow: u64_field("flow")? as u32,
                    src: u64_field("src")? as usize,
                    dst: u64_field("dst")? as usize,
                    retry: u64_field("retry")? as u32,
                }
            }
            "collision" => TracePayload::Collision {
                seq: u64_field("seq")?,
                src: u64_field("src")? as usize,
            },
            "drop" => {
                let cause = v
                    .get("cause")
                    .and_then(JsonValue::as_str)
                    .and_then(DropCause::from_name)
                    .ok_or("bad drop cause")?;
                TracePayload::Drop {
                    cause,
                    seq: u64_field("seq")?,
                }
            }
            "queue" => TracePayload::Queue {
                occupancy: u64_field("occupancy")? as u32,
                cap: u64_field("cap")? as u32,
            },
            "cw_change" => TracePayload::CwChange {
                from: u64_field("from")? as u32,
                to: u64_field("to")? as u32,
            },
            "boe_sample" => TracePayload::BoeSample {
                successor: u64_field("successor")? as usize,
                estimate: u64_field("estimate")? as u32,
            },
            other => return Err(format!("unknown payload type '{other}'")),
        })
    }
}

/// One trace record. `Copy`: pushing stores 40-odd bytes, no heap.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Time,
    /// Node the record concerns (usize::MAX when not node-specific).
    pub node: usize,
    /// Category.
    pub kind: TraceKind,
    /// Typed detail; formatted only on render/export.
    pub payload: TracePayload,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == usize::MAX {
            write!(f, "[{}] {:?}: {}", self.at, self.kind, self.payload)
        } else {
            write!(
                f,
                "[{}] n{} {:?}: {}",
                self.at, self.node, self.kind, self.payload
            )
        }
    }
}

impl TraceEvent {
    /// The JSONL representation of one record.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("at_us", JsonValue::from(self.at.as_micros()))];
        if self.node != usize::MAX {
            fields.push(("node", JsonValue::from(self.node)));
        }
        fields.push(("kind", JsonValue::str(self.kind.name())));
        fields.push(("payload", self.payload.to_json()));
        JsonValue::obj(fields)
    }

    /// Reconstruct a record from its JSONL representation.
    pub fn from_json(v: &JsonValue) -> Result<TraceEvent, String> {
        let at = v
            .get("at_us")
            .and_then(JsonValue::as_u64)
            .ok_or("record missing 'at_us'")?;
        let node = match v.get("node") {
            Some(n) => n.as_u64().ok_or("bad 'node'")? as usize,
            None => usize::MAX,
        };
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(TraceKind::from_name)
            .ok_or("bad 'kind'")?;
        let payload = TracePayload::from_json(v.get("payload").ok_or("record missing 'payload'")?)?;
        Ok(TraceEvent {
            at: Time::from_micros(at),
            node,
            kind,
            payload,
        })
    }
}

/// A conjunctive filter over trace records: every constraint set must
/// hold. Built fluently: `TraceFilter::new().kind(..).node(..)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceFilter {
    kind: Option<TraceKind>,
    node: Option<usize>,
    from: Option<Time>,
    until: Option<Time>,
}

impl TraceFilter {
    /// A filter matching everything.
    pub fn new() -> Self {
        TraceFilter::default()
    }

    /// Keep only records of `kind`.
    pub fn kind(mut self, kind: TraceKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep only records concerning `node`.
    pub fn node(mut self, node: usize) -> Self {
        self.node = Some(node);
        self
    }

    /// Keep only records in the half-open window `[from, until)`.
    pub fn between(mut self, from: Time, until: Time) -> Self {
        self.from = Some(from);
        self.until = Some(until);
        self
    }

    /// Whether `ev` passes every constraint.
    pub fn matches(&self, ev: &TraceEvent) -> bool {
        if let Some(k) = self.kind {
            if ev.kind != k {
                return false;
            }
        }
        if let Some(n) = self.node {
            if ev.node != n {
                return false;
            }
        }
        if let Some(from) = self.from {
            if ev.at < from {
                return false;
            }
        }
        if let Some(until) = self.until {
            if ev.at >= until {
                return false;
            }
        }
        true
    }
}

/// A bounded ring of [`TraceEvent`]s.
pub struct TraceRing {
    cap: usize,
    ring: VecDeque<TraceEvent>,
    pushed: u64,
}

/// The ring is embedded in `ezflow-net`'s `Network`, which crosses thread
/// boundaries when a sweep runner fans runs across workers — so it must
/// stay `Send` (plain owned data; this trips at compile time if a future
/// field breaks that).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TraceRing>();
};

impl TraceRing {
    /// Creates a ring keeping at most `cap` records; `cap == 0` disables
    /// tracing (pushes become no-ops beyond a counter increment).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            // Full capacity up front (bounded for sanity), so steady-state
            // pushes never reallocate.
            ring: VecDeque::with_capacity(cap.min(4096)),
            pushed: 0,
        }
    }

    /// Whether records are being kept.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Pushes a record, evicting the oldest if full. The payload is
    /// `Copy`; nothing is formatted or allocated here.
    pub fn push(&mut self, at: Time, node: usize, kind: TraceKind, payload: TracePayload) {
        self.pushed += 1;
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            at,
            node,
            kind,
            payload,
        });
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Records passing `filter`, oldest first.
    pub fn filtered(&self, filter: TraceFilter) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter().filter(move |ev| filter.matches(ev))
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True iff no records are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total number of records ever pushed (including evicted/disabled).
    pub fn pushed_total(&self) -> u64 {
        self.pushed
    }

    /// Renders the whole ring, one record per line (debugging helper).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Exports the held records as JSONL: one compact JSON object per
    /// line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    /// Drops all held records (the counter is preserved).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Parses records from JSONL produced by [`TraceRing::to_jsonl`].
    /// Blank lines are skipped; the error names the offending line.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            out.push(TraceEvent::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    fn frame(seq: u64) -> TracePayload {
        TracePayload::Frame {
            class: FrameClass::Data,
            seq,
            flow: 0,
            src: 0,
            dst: 1,
            retry: 0,
        }
    }

    #[test]
    fn keeps_most_recent_cap_records() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(t(i), 0, TraceKind::TxStart, frame(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed_total(), 5);
        let seqs: Vec<u64> = ring
            .iter()
            .map(|e| match e.payload {
                TracePayload::Frame { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_cap_disables_storage_but_counts() {
        let mut ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.push(
            t(1),
            0,
            TraceKind::Drop,
            TracePayload::Drop {
                cause: DropCause::QueueFull,
                seq: 9,
            },
        );
        assert!(ring.is_empty());
        assert_eq!(ring.pushed_total(), 1);
    }

    #[test]
    fn render_formats_lines() {
        let mut ring = TraceRing::new(8);
        ring.push(
            t(1_000_000),
            2,
            TraceKind::Collision,
            TracePayload::Collision { seq: 7, src: 3 },
        );
        ring.push(
            t(2_000_000),
            usize::MAX,
            TraceKind::Misc,
            TracePayload::Text("global"),
        );
        let text = ring.render();
        assert!(text.contains("n2 Collision: seq=7 from 3"), "{text}");
        assert!(text.contains("Misc: global"), "{text}");
        // The node field is omitted for global records.
        assert!(!text.contains("n18446744073709551615"), "{text}");
    }

    #[test]
    fn clear_preserves_counter() {
        let mut ring = TraceRing::new(2);
        ring.push(t(0), 0, TraceKind::Misc, TracePayload::Empty);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed_total(), 1);
    }

    #[test]
    fn filters_by_kind_node_and_window() {
        let mut ring = TraceRing::new(64);
        for i in 0..10u64 {
            let kind = if i % 2 == 0 {
                TraceKind::TxStart
            } else {
                TraceKind::TxEnd
            };
            ring.push(t(i * 100), (i % 3) as usize, kind, frame(i));
        }
        let starts: Vec<_> = ring
            .filtered(TraceFilter::new().kind(TraceKind::TxStart))
            .collect();
        assert_eq!(starts.len(), 5);
        assert!(starts.iter().all(|e| e.kind == TraceKind::TxStart));

        let on_node_1: Vec<_> = ring.filtered(TraceFilter::new().node(1)).collect();
        assert_eq!(on_node_1.len(), 3, "i = 1, 4, 7");

        // Half-open window: 300 included, 600 excluded.
        let windowed: Vec<_> = ring
            .filtered(TraceFilter::new().between(t(300), t(600)))
            .collect();
        assert_eq!(windowed.len(), 3, "i = 3, 4, 5");

        let combined: Vec<_> = ring
            .filtered(
                TraceFilter::new()
                    .kind(TraceKind::TxEnd)
                    .node(1)
                    .between(t(0), t(500)),
            )
            .collect();
        assert_eq!(combined.len(), 1, "only i = 1");
    }

    #[test]
    fn jsonl_round_trips_every_payload() {
        let mut ring = TraceRing::new(64);
        ring.push(t(1), 0, TraceKind::TxStart, frame(5));
        ring.push(
            t(2),
            1,
            TraceKind::Collision,
            TracePayload::Collision { seq: 5, src: 2 },
        );
        ring.push(
            t(3),
            2,
            TraceKind::Drop,
            TracePayload::Drop {
                cause: DropCause::RetryLimit,
                seq: 6,
            },
        );
        ring.push(
            t(4),
            0,
            TraceKind::Queue,
            TracePayload::Queue {
                occupancy: 12,
                cap: 50,
            },
        );
        ring.push(
            t(5),
            0,
            TraceKind::CwChange,
            TracePayload::CwChange { from: 32, to: 64 },
        );
        ring.push(
            t(6),
            1,
            TraceKind::BoeSample,
            TracePayload::BoeSample {
                successor: 2,
                estimate: 7,
            },
        );
        ring.push(t(7), usize::MAX, TraceKind::Misc, TracePayload::Empty);

        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), ring.len());
        let parsed = TraceRing::parse_jsonl(&jsonl).unwrap();
        let original: Vec<TraceEvent> = ring.iter().copied().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        assert!(TraceRing::parse_jsonl("{oops")
            .unwrap_err()
            .contains("line 1"));
        let missing_kind = r#"{"at_us": 1, "payload": {"type": "empty"}}"#;
        assert!(TraceRing::parse_jsonl(missing_kind).is_err());
        // Blank lines are fine.
        assert_eq!(TraceRing::parse_jsonl("\n\n").unwrap().len(), 0);
    }
}
