//! Bounded in-memory event tracing.
//!
//! A `TraceRing` is the simulator's answer to `tcpdump`: components push
//! one-line records of interesting moments (frame on air, collision, queue
//! drop, contention-window change) and the ring keeps the most recent `cap`
//! of them. It is cheap enough to leave on in tests — the records are plain
//! structs, there is no formatting cost until somebody renders them — and
//! it can be disabled entirely (`cap == 0`) for benchmark runs.

use crate::time::Time;
use core::fmt;
use std::collections::VecDeque;

/// What kind of moment a trace record captures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TraceKind {
    /// A frame started transmission.
    TxStart,
    /// A frame finished transmission and was (or was not) received.
    TxEnd,
    /// A reception was destroyed by an overlapping transmission.
    Collision,
    /// A packet was dropped (queue overflow or retry limit).
    Drop,
    /// A queue changed occupancy in a way worth noting.
    Queue,
    /// A controller changed a contention-window parameter.
    CwChange,
    /// A buffer-occupancy estimate was produced by the BOE.
    BoeSample,
    /// Anything else.
    Misc,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Time,
    /// Node the record concerns (usize::MAX when not node-specific).
    pub node: usize,
    /// Category.
    pub kind: TraceKind,
    /// Human-readable detail, already formatted by the producer.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == usize::MAX {
            write!(f, "[{}] {:?}: {}", self.at, self.kind, self.detail)
        } else {
            write!(
                f,
                "[{}] n{} {:?}: {}",
                self.at, self.node, self.kind, self.detail
            )
        }
    }
}

/// A bounded ring of [`TraceEvent`]s.
pub struct TraceRing {
    cap: usize,
    ring: VecDeque<TraceEvent>,
    pushed: u64,
}

impl TraceRing {
    /// Creates a ring keeping at most `cap` records; `cap == 0` disables
    /// tracing (pushes become no-ops beyond a counter increment).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            ring: VecDeque::with_capacity(cap.min(4096)),
            pushed: 0,
        }
    }

    /// Whether records are being kept.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Pushes a record, evicting the oldest if full.
    pub fn push(&mut self, at: Time, node: usize, kind: TraceKind, detail: impl Into<String>) {
        self.pushed += 1;
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            at,
            node,
            kind,
            detail: detail.into(),
        });
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True iff no records are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total number of records ever pushed (including evicted/disabled).
    pub fn pushed_total(&self) -> u64 {
        self.pushed
    }

    /// Renders the whole ring, one record per line (debugging helper).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Drops all held records (the counter is preserved).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn keeps_most_recent_cap_records() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(t(i), 0, TraceKind::Misc, format!("e{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed_total(), 5);
        let details: Vec<_> = ring.iter().map(|e| e.detail.clone()).collect();
        assert_eq!(details, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn zero_cap_disables_storage_but_counts() {
        let mut ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.push(t(1), 0, TraceKind::Drop, "gone");
        assert!(ring.is_empty());
        assert_eq!(ring.pushed_total(), 1);
    }

    #[test]
    fn render_formats_lines() {
        let mut ring = TraceRing::new(8);
        ring.push(t(1_000_000), 2, TraceKind::Collision, "frame 7 at n3");
        ring.push(t(2_000_000), usize::MAX, TraceKind::Misc, "global");
        let text = ring.render();
        assert!(text.contains("n2 Collision: frame 7 at n3"), "{text}");
        assert!(text.contains("Misc: global"), "{text}");
        // The node field is omitted for global records.
        assert!(!text.contains("n18446744073709551615"), "{text}");
    }

    #[test]
    fn clear_preserves_counter() {
        let mut ring = TraceRing::new(2);
        ring.push(t(0), 0, TraceKind::Misc, "a");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed_total(), 1);
    }
}
