//! # ezflow-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate every other crate of the EZ-Flow reproduction
//! is built on. It deliberately contains no networking knowledge: it provides
//! exactly four things and nothing else:
//!
//! * [`Time`] / [`Duration`] — simulated time with microsecond resolution,
//!   the natural granularity for IEEE 802.11b timing (slot = 20 µs,
//!   SIFS = 10 µs).
//! * [`Scheduler`] — a total-order event queue. Events scheduled for the
//!   same instant are popped in the order they were pushed, which makes every
//!   simulation bit-for-bit reproducible for a given seed.
//! * [`SimRng`] — a small, self-contained PCG32 pseudo-random generator.
//!   Using our own generator (rather than `rand`'s `SmallRng`, whose stream
//!   is not stable across crate versions) guarantees that recorded
//!   experiment outputs stay reproducible.
//! * [`TraceRing`] — a bounded in-memory trace of simulation events, the
//!   moral equivalent of the `--pcap` option every smoltcp example carries:
//!   invaluable when debugging MAC interactions, free when disabled.
//!
//! The kernel follows the "simplicity and robustness" design goals of the
//! Rust embedded-networking ecosystem: no `unsafe`, no clever type tricks,
//! no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;

pub use json::{JsonError, JsonValue};
pub use rng::SimRng;
pub use sched::{
    Cancelable, EventId, SchedKind, Scheduler, ShardedScheduler, TimerHandle, WheelStats,
};
pub use time::{Duration, Time};
pub use trace::{
    BoeVerdict, DropCause, FrameClass, RxOutcome, TraceEvent, TraceFilter, TraceKind, TracePayload,
    TraceRing,
};
