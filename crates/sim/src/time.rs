//! Simulated time.
//!
//! [`Time`] is an absolute instant and [`Duration`] a span, both counted in
//! integer microseconds since the start of the simulation. One microsecond
//! is fine enough for every IEEE 802.11b interval we model (the shortest,
//! SIFS, is 10 µs) while keeping arithmetic exact — floating-point time is a
//! classic source of non-reproducibility in network simulators.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An absolute simulated instant, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The instant at which every simulation starts.
    pub const ZERO: Time = Time(0);

    /// The farthest representable instant — a "no horizon" sentinel for
    /// [`crate::Scheduler::pop_before`].
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * MICROS_PER_SEC)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * MICROS_PER_MILLI)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This instant in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is
    /// in the future (a defensive choice: the caller has a bug, but a panic
    /// inside metric bookkeeping would mask it).
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Exact duration since `earlier`. Panics (in debug builds) on underflow.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(self >= earlier, "Time::since underflow");
        Duration(self.0 - earlier.0)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * MICROS_PER_MILLI)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of whole `other` spans that fit in `self`.
    pub fn div_floor(self, other: Duration) -> u64 {
        debug_assert!(other.0 != 0, "division by zero Duration");
        self.0 / other.0
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(Time::from_millis(2).as_micros(), 2_000);
        assert_eq!(Time::from_micros(7).as_micros(), 7);
        assert_eq!(Duration::from_secs(1).as_micros(), MICROS_PER_SEC);
        assert_eq!(Duration::from_millis(1).as_micros(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - Time::from_secs(1)).as_micros(), 500_000);
        assert_eq!((t - Duration::from_millis(500)), Time::from_secs(1));
        assert_eq!(Duration::from_micros(20) * 3, Duration::from_micros(60));
        assert_eq!(Duration::from_micros(60) / 3, Duration::from_micros(20));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(2);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn div_floor_counts_whole_spans() {
        let span = Duration::from_micros(95);
        assert_eq!(span.div_floor(Duration::from_micros(20)), 4);
        assert_eq!(span.div_floor(Duration::from_micros(95)), 1);
        assert_eq!(span.div_floor(Duration::from_micros(96)), 0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_micros(5) < Time::from_micros(6));
        assert!(Duration::from_secs(1) > Duration::from_millis(999));
    }

    #[test]
    fn as_secs_f64_is_fractional() {
        assert!((Time::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Duration::from_micros(250).as_secs_f64() - 0.00025).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", Duration::from_micros(42)), "42us");
        assert_eq!(format!("{:?}", Duration::from_micros(42)), "42us");
    }
}
