//! Deterministic pseudo-random number generation.
//!
//! [`SimRng`] implements the PCG-XSH-RR 32-bit generator (O'Neill 2014).
//! We carry our own 40-line implementation instead of depending on
//! `rand::SmallRng` because the *stream* of `SmallRng` is explicitly not
//! stable across `rand` releases, and a reproduction whose recorded numbers
//! change when a dependency is bumped is a poor reproduction. The generator
//! is statistically strong for simulation purposes (it is the default in
//! NumPy) and trivially auditable.

/// A seedable, deterministic PCG32 generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl SimRng {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams forever.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator from a seed and a stream selector; generators
    /// with the same seed but different streams are independent. Used to
    /// give each simulated node its own stream derived from the master
    /// seed, so adding a node never perturbs the draws of existing nodes.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = SimRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator; deterministic in `tag`.
    pub fn derive(&self, tag: u64) -> SimRng {
        // Mix the tag through SplitMix64 so nearby tags give unrelated
        // streams.
        let mut z = tag.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        SimRng::with_stream(self.state ^ z, z)
    }

    /// Next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's rejection method). `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0, "gen_range bound must be > 0");
        loop {
            let x = self.next_u32() as u64;
            let m = x * bound as u64;
            let l = m as u32;
            if l >= bound {
                return (m >> 32) as u32;
            }
            // Slow path: threshold for rejection.
            let t = bound.wrapping_neg() % bound;
            if l >= t {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`. Returns `None` when the total weight is not a
    /// positive finite number. Used by the analytical model's sequential
    /// elimination kernel, where weights are `1 / cw_i`.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating-point slop: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn known_first_values_are_stable() {
        // Pin the stream so accidental algorithm changes are caught: these
        // values were recorded from the initial implementation and must
        // never change (EXPERIMENTS.md depends on them).
        let mut rng = SimRng::new(0);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut again = SimRng::new(0);
        let second: Vec<u32> = (0..4).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_is_in_bounds_and_roughly_uniform() {
        let mut rng = SimRng::new(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            let v = rng.gen_range(8);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; 5-sigma band.
            assert!((9_300..10_700).contains(&c), "count {c} out of band");
        }
    }

    #[test]
    fn gen_range_handles_bound_one() {
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(1), 0);
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SimRng::new(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_500..31_500).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn derive_gives_independent_children() {
        let parent = SimRng::new(9);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let mut c1b = parent.derive(1);
        assert_eq!(
            c1.next_u64(),
            c1b.next_u64(),
            "derive must be deterministic"
        );
        let same = (0..64).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut rng = SimRng::new(13);
        let weights = [1.0, 3.0, 0.0, 4.0];
        let mut counts = [0u32; 4];
        for _ in 0..80_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[2], 0);
        let total = 80_000.0;
        assert!((counts[0] as f64 / total - 0.125).abs() < 0.01);
        assert!((counts[1] as f64 / total - 0.375).abs() < 0.01);
        assert!((counts[3] as f64 / total - 0.5).abs() < 0.01);
    }

    #[test]
    fn pick_weighted_rejects_degenerate_input() {
        let mut rng = SimRng::new(17);
        assert_eq!(rng.pick_weighted(&[]), None);
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.pick_weighted(&[f64::INFINITY]), None);
    }
}
