//! Minimal JSON document model with a writer and a recursive-descent
//! parser.
//!
//! The build environment has no registry access, so the observability
//! layer (trace export, run snapshots) serialises through this module
//! instead of serde. It supports the full JSON grammar with two
//! deliberate simplifications: numbers are carried as `f64` (exact for
//! integers up to 2^53, far beyond any counter this simulator produces
//! in practice), and object key order is preserved as written rather
//! than hashed, so output is deterministic and diffs are stable.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object value from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        fmt::write(out, format_args!("{}", n as i64)).unwrap();
    } else {
        fmt::write(out, format_args!("{n}")).unwrap();
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => fmt::write(out, format_args!("\\u{:04x}", c as u32)).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    /// 1-based `(line, column)` of the failure inside `text` (the same
    /// document that was parsed). Columns count bytes, which matches
    /// what an editor shows for the ASCII config files this crate
    /// reads.
    pub fn line_col(&self, text: &str) -> (usize, usize) {
        let at = self.at.min(text.len());
        let prefix = &text.as_bytes()[..at];
        let line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + at
            - prefix
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1);
        (line, col)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not combined; snapshots never
                            // emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = JsonValue::obj(vec![
            ("name", JsonValue::str("chain \"3\"\n")),
            ("count", JsonValue::from(42u64)),
            ("ratio", JsonValue::from(0.25)),
            ("ok", JsonValue::from(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]),
            ),
            ("empty", JsonValue::Array(vec![])),
            ("empty_obj", JsonValue::Object(vec![])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn accessors_navigate() {
        let doc = JsonValue::parse(r#"{"a": {"b": [10, 2.5, "x", false]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(10));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None, "fractional is not a u64");
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[3].as_bool(), Some(false));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parses_escapes_and_exponents() {
        let v = JsonValue::parse(r#"["A\t\"q\"", -1.5e3, 1e-2]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_str(), Some("A\t\"q\""));
        assert_eq!(arr[1].as_f64(), Some(-1500.0));
        assert_eq!(arr[2].as_f64(), Some(0.01));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"open", "1 2", ""] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = JsonValue::parse("[1, @]").unwrap_err();
        assert_eq!(err.at, 4);
    }

    #[test]
    fn errors_locate_line_and_column() {
        let text = "{\n  \"a\": 1,\n  \"b\": @\n}";
        let err = JsonValue::parse(text).unwrap_err();
        assert_eq!(err.line_col(text), (3, 8));
        let flat = "[1, @]";
        let err = JsonValue::parse(flat).unwrap_err();
        assert_eq!(err.line_col(flat), (1, 5));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::from(7u64).to_compact(), "7");
        assert_eq!(JsonValue::from(0.5).to_compact(), "0.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_compact(), "null");
    }
}
