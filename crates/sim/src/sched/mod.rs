//! The event scheduler.
//!
//! A total-order event queue over `(Time, sequence, event)` triples. The
//! monotonically increasing sequence number breaks ties between events
//! scheduled for the same instant, so that event delivery order — and
//! hence the entire simulation — is a pure function of the inputs and the
//! RNG seed. This determinism is what makes the EXPERIMENTS.md numbers
//! regenerable to the last digit.
//!
//! Two interchangeable backends implement that order (select one with
//! [`Scheduler::with_kind`]; the equivalence is property-tested):
//!
//! * [`SchedKind::Heap`] — the reference implementation, a plain binary
//!   heap ([`heap`]). O(log n) push/pop, no tuning knobs, obviously
//!   correct.
//! * [`SchedKind::Wheel`] — the default, a hierarchical calendar queue
//!   ([`wheel`]): an array of fixed-width near-future buckets (width
//!   tuned to the 802.11 slot time) rotated as time advances, plus an
//!   overflow min-heap for far-future events that refills buckets on
//!   rotation. Amortised O(1) push/pop under the short-horizon timer
//!   churn of the DCF (Brown's calendar queue — the same structure ns-2,
//!   the paper's own substrate, uses for its event list).
//!
//! Both backends also support **pop-time stale elision** through the
//! [`Cancelable`] hook: events whose owner has moved on (the MAC's
//! epoch-token pattern) are dropped inside the pop loop, in earliest-first
//! order, without ever being dispatched. Elisions are counted
//! ([`Scheduler::stale_drops`]) and, because both backends visit entries
//! in exactly the same `(at, seq)` order, the elision decisions — and
//! therefore every observable statistic — are identical across backends.

use crate::time::Time;
use core::cmp::Ordering;

pub mod heap;
pub mod sharded;
pub mod wheel;

pub use sharded::ShardedScheduler;

use heap::HeapQueue;
use wheel::WheelQueue;

/// Identifier of a scheduled event, unique within one [`Scheduler`].
///
/// Components that need to abandon a pending timer have two tools: the
/// *epoch token* pattern (the event carries an epoch, the owner bumps its
/// epoch, and stale events are elided at pop time through the
/// [`Cancelable`] hook) and keyed in-place rescheduling through a
/// [`TimerHandle`] ([`Scheduler::reschedule`] / [`Scheduler::remove`]),
/// which moves a pending entry instead of abandoning it — the entry never
/// becomes churn for the pop loop at all. `EventId` exists so that
/// callers can correlate trace output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

/// Handle to one *pending* entry, for keyed removal and in-place
/// rescheduling. Returned by [`Scheduler::schedule_keyed`] and
/// [`Scheduler::reschedule`]; dead the moment the entry is popped, elided
/// or removed — the owner must drop its copy on those events (the engine
/// keeps one slot per MAC timer and clears it from the pop loop and the
/// [`Cancelable`] hook), so a held handle always refers to a live entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerHandle {
    at: Time,
    seq: u64,
}

impl TimerHandle {
    /// The instant the underlying entry is scheduled for.
    pub fn at(self) -> Time {
        self.at
    }

    /// The entry's event id (for trace correlation).
    pub fn id(self) -> EventId {
        EventId(self.seq)
    }
}

/// Which queue backend a [`Scheduler`] uses. Both produce identical pop
/// sequences and statistics; they differ only in wall-clock cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedKind {
    /// Reference binary heap (O(log n), no tuning).
    Heap,
    /// Calendar-queue wheel with an overflow heap (amortised O(1)).
    #[default]
    Wheel,
}

impl SchedKind {
    /// Stable lower-case name (`"heap"` / `"wheel"`), the CLI vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Heap => "heap",
            SchedKind::Wheel => "wheel",
        }
    }
}

impl core::str::FromStr for SchedKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(SchedKind::Heap),
            "wheel" => Ok(SchedKind::Wheel),
            other => Err(format!("unknown scheduler kind '{other}' (heap|wheel)")),
        }
    }
}

/// Pop-time cancellation hook: the generalisation of the MAC's
/// epoch-token pattern to the scheduler itself.
///
/// [`Scheduler::pop_before`] asks this hook about each entry it is about
/// to deliver, earliest first; a `true` answer elides the entry inside
/// the pop loop — it is never returned to the caller — and increments
/// [`Scheduler::stale_drops`]. Any `FnMut(Time, &E) -> bool` closure is a
/// `Cancelable`.
///
/// Determinism contract: the answer must depend only on simulation state,
/// not on which backend is asking — both backends present entries in the
/// identical `(at, seq)` order, so a well-behaved hook yields identical
/// elision decisions on either.
pub trait Cancelable<E> {
    /// True if the entry scheduled for `at` is dead and must be elided.
    fn is_stale(&mut self, at: Time, event: &E) -> bool;
}

impl<E, F: FnMut(Time, &E) -> bool> Cancelable<E> for F {
    fn is_stale(&mut self, at: Time, event: &E) -> bool {
        self(at, event)
    }
}

/// Wheel-backend accounting (all zero for the heap backend). These are
/// implementation detail gauges — deterministic for a given backend but
/// *not* part of the backend-independent observable state, so snapshots
/// carry them only in the perf block that determinism comparisons zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WheelStats {
    /// Cursor advances, in buckets (an idle jump over an empty wheel
    /// counts once — the distance carries no information).
    pub rotations: u64,
    /// Entries migrated from the overflow heap into buckets on rotation.
    pub overflow_refills: u64,
    /// Deepest any single bucket has ever been.
    pub bucket_high_water: u64,
}

/// One pending entry. Shared by both backends: the heap (and the wheel's
/// overflow) order it through the inverted [`Ord`] below, the wheel's
/// buckets keep ascending `(at, seq)` order directly.
#[derive(Clone)]
pub(crate) struct Entry<E> {
    pub(crate) at: Time,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> Entry<E> {
    /// The total-order key.
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within one
        // instant, the first-scheduled) entry is popped first.
        other.key().cmp(&self.key())
    }
}

enum Backend<E> {
    Heap(HeapQueue<E>),
    Wheel(Box<WheelQueue<E>>),
}

/// A deterministic discrete-event queue.
///
/// ```
/// use ezflow_sim::{Scheduler, Time};
///
/// let mut s: Scheduler<&str> = Scheduler::new();
/// s.schedule(Time::from_micros(20), "second");
/// s.schedule(Time::from_micros(10), "first");
/// s.schedule(Time::from_micros(20), "third"); // same time: FIFO among ties
/// assert_eq!(s.pop(), Some((Time::from_micros(10), "first")));
/// assert_eq!(s.pop(), Some((Time::from_micros(20), "second")));
/// assert_eq!(s.pop(), Some((Time::from_micros(20), "third")));
/// assert_eq!(s.pop(), None);
/// ```
///
/// All bookkeeping every caller observes (`len`, `scheduled_total`,
/// `depth_high_water`, `stale_drops`) lives here in the wrapper, *not* in
/// the backends, so the two implementations cannot drift in how they
/// account for it.
pub struct Scheduler<E> {
    backend: Backend<E>,
    next_seq: u64,
    len: usize,
    depth_high_water: usize,
    stale_drops: u64,
    /// Entries created by [`Scheduler::reschedule`] — re-arms of a logical
    /// timer that already paid its fresh [`Scheduler::schedule`].
    rescheduled: u64,
    /// Entries physically removed by [`Scheduler::remove`] (parked logical
    /// timers awaiting a later reschedule, or outright cancellations).
    removed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the default backend
    /// ([`SchedKind::Wheel`]).
    pub fn new() -> Self {
        Self::with_kind(SchedKind::default())
    }

    /// Creates an empty scheduler with an explicit backend.
    pub fn with_kind(kind: SchedKind) -> Self {
        let backend = match kind {
            SchedKind::Heap => Backend::Heap(HeapQueue::new()),
            SchedKind::Wheel => Backend::Wheel(Box::new(WheelQueue::new())),
        };
        Scheduler {
            backend,
            next_seq: 0,
            len: 0,
            depth_high_water: 0,
            stale_drops: 0,
            rescheduled: 0,
            removed: 0,
        }
    }

    /// Which backend this scheduler runs on.
    pub fn kind(&self) -> SchedKind {
        match self.backend {
            Backend::Heap(_) => SchedKind::Heap,
            Backend::Wheel(_) => SchedKind::Wheel,
        }
    }

    /// Schedules `event` for instant `at`. Returns an id usable for tracing.
    ///
    /// Inlined across the crate boundary: the engine calls this once per
    /// MAC timer and transmission, and the wheel's common case is a bitmap
    /// update plus a bucket push.
    #[inline]
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { at, seq, event };
        match &mut self.backend {
            Backend::Heap(h) => h.push(entry),
            Backend::Wheel(w) => w.push(entry),
        }
        // The pending count only grows on push, so sampling the high water
        // here captures the true peak — and doing it in the wrapper keeps
        // the accounting identical across backends by construction.
        self.len += 1;
        self.depth_high_water = self.depth_high_water.max(self.len);
        EventId(seq)
    }

    /// [`Scheduler::schedule`], returning a [`TimerHandle`] for later
    /// keyed rescheduling or removal.
    #[inline]
    pub fn schedule_keyed(&mut self, at: Time, event: E) -> TimerHandle {
        let EventId(seq) = self.schedule(at, event);
        TimerHandle { at, seq }
    }

    /// Moves a pending entry to a new instant in place: removes `prev`
    /// (when `Some` — pass `None` to revive a timer that was parked via
    /// [`Scheduler::remove`]) and inserts `event` at `at` under a fresh
    /// sequence number.
    ///
    /// The fresh seq is deliberate: it is exactly the `(at, seq)` key a
    /// plain [`Scheduler::schedule`] call would assign at this moment, so
    /// converting a schedule-new-then-elide-old caller to reschedule
    /// leaves the pop order — and therefore the whole simulation —
    /// bit-identical. Only the churn accounting moves: the entry counts in
    /// [`Scheduler::rescheduled_total`], not [`Scheduler::scheduled_total`],
    /// and the abandoned predecessor never sits in the queue waiting to be
    /// elided.
    #[inline]
    pub fn reschedule(&mut self, prev: Option<TimerHandle>, at: Time, event: E) -> TimerHandle {
        if let Some(h) = prev {
            let found = self.remove_entry(h);
            debug_assert!(found, "reschedule of a dead handle {h:?}");
            if found {
                self.len -= 1;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rescheduled += 1;
        let entry = Entry { at, seq, event };
        match &mut self.backend {
            Backend::Heap(h) => h.push(entry),
            Backend::Wheel(w) => w.push(entry),
        }
        self.len += 1;
        self.depth_high_water = self.depth_high_water.max(self.len);
        TimerHandle { at, seq }
    }

    /// Physically removes a pending entry (a parked logical timer — the
    /// owner expects to [`Scheduler::reschedule`] it later — or an
    /// outright cancellation). Returns whether the entry was found; a
    /// `false` means the caller's handle was dead, which the handle
    /// discipline (see [`TimerHandle`]) rules out.
    pub fn remove(&mut self, h: TimerHandle) -> bool {
        if self.remove_entry(h) {
            self.len -= 1;
            self.removed += 1;
            true
        } else {
            false
        }
    }

    fn remove_entry(&mut self, h: TimerHandle) -> bool {
        match &mut self.backend {
            Backend::Heap(q) => q.remove(h.at, h.seq),
            Backend::Wheel(q) => q.remove(h.at, h.seq),
        }
    }

    /// The instant of the earliest pending event, if any (stale entries
    /// included — staleness is only decided at pop time).
    pub fn peek_time(&self) -> Option<Time> {
        match &self.backend {
            Backend::Heap(h) => h.peek_time(),
            Backend::Wheel(w) => w.peek_time(),
        }
    }

    /// Number of pending events (stale entries included until they are
    /// elided by a pop).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of *fresh* events ever scheduled (diagnostic).
    /// Re-arms through [`Scheduler::reschedule`] are counted separately in
    /// [`Scheduler::rescheduled_total`]: a logical timer that is armed
    /// once and then moved N times contributes 1 here and N there, so this
    /// count converges toward `dispatched + pending` as callers adopt
    /// in-place rescheduling over schedule-and-abandon.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq - self.rescheduled
    }

    /// Entries created by [`Scheduler::reschedule`] — in-place re-arms of
    /// already-scheduled logical timers.
    pub fn rescheduled_total(&self) -> u64 {
        self.rescheduled
    }

    /// Entries physically removed by [`Scheduler::remove`].
    pub fn removed_total(&self) -> u64 {
        self.removed
    }

    /// The deepest the pending-event queue has ever been — a measure of
    /// how much simultaneous future the simulation keeps in flight.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Entries elided at pop time by the [`Cancelable`] hook: heap/bucket
    /// slots the simulation paid for but never dispatched.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// Wheel-backend gauges (bucket rotations, overflow refills, bucket
    /// high water); all zero on the heap backend.
    pub fn wheel_stats(&self) -> WheelStats {
        match &self.backend {
            Backend::Heap(_) => WheelStats::default(),
            Backend::Wheel(w) => w.stats(),
        }
    }
}

/// The pop side requires `E: Clone`: the wheel's buckets hand entries out
/// by clone so the backing `Vec` can keep a cheap dead-prefix cursor
/// instead of shifting on every pop. Every event type in the workspace is
/// a small `Clone` enum, so this costs a plain copy.
impl<E: Clone> Scheduler<E> {
    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_before(Time::MAX, |_: Time, _: &E| false)
    }

    /// Removes and returns the earliest *live* event scheduled at or
    /// before `until`, eliding stale entries on the way.
    ///
    /// Entries are visited earliest-first. Each one at or before `until`
    /// is either returned (live) or dropped and counted in
    /// [`Scheduler::stale_drops`] (the hook said stale) — stale entries
    /// beyond `until` are left untouched, so both backends always make
    /// the same elision decisions regardless of how a run is sliced into
    /// `pop_before` horizons. Returns `None` when no event at or before
    /// `until` remains.
    pub fn pop_before<C: Cancelable<E>>(
        &mut self,
        until: Time,
        mut cancel: C,
    ) -> Option<(Time, E)> {
        // The elision loop runs *inside* the backend (the wheel drains a
        // stale run in place, one bucket positioning per bucket rather
        // than per entry); the backends only report how many entries they
        // consumed as stale, and the `len` / `stale_drops` bookkeeping
        // every caller observes still happens here, identically for both.
        let mut skipped = 0u64;
        let popped = match &mut self.backend {
            Backend::Heap(h) => h.pop_live_before(until, &mut cancel, &mut skipped),
            Backend::Wheel(w) => w.pop_live_before(until, &mut cancel, &mut skipped),
        };
        self.stale_drops += skipped;
        self.len -= skipped as usize + popped.is_some() as usize;
        popped.map(|entry| (entry.at, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// Every unit test runs against both backends: the scheduler's
    /// contract is backend-independent by design.
    fn for_both(test: impl Fn(Scheduler<u64>)) {
        test(Scheduler::with_kind(SchedKind::Heap));
        test(Scheduler::with_kind(SchedKind::Wheel));
    }

    #[test]
    fn default_kind_is_wheel() {
        let s: Scheduler<()> = Scheduler::new();
        assert_eq!(s.kind(), SchedKind::Wheel);
        assert_eq!(s.wheel_stats(), WheelStats::default());
    }

    #[test]
    fn kind_parses_and_names_round_trip() {
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            assert_eq!(kind.name().parse::<SchedKind>().unwrap(), kind);
        }
        assert!("calendar".parse::<SchedKind>().is_err());
    }

    #[test]
    fn pops_in_time_order() {
        for_both(|mut s| {
            for us in [50u64, 10, 30, 20, 40] {
                s.schedule(Time::from_micros(us), us);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = s.pop() {
                assert_eq!(t.as_micros(), e);
                out.push(e);
            }
            assert_eq!(out, vec![10, 20, 30, 40, 50]);
        });
    }

    #[test]
    fn equal_times_pop_fifo() {
        for_both(|mut s| {
            let t = Time::from_micros(5);
            for i in 0..100 {
                s.schedule(t, i);
            }
            for i in 0..100 {
                assert_eq!(s.pop(), Some((t, i)));
            }
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for_both(|mut s| {
            s.schedule(Time::from_micros(10), 1);
            assert_eq!(s.pop(), Some((Time::from_micros(10), 1)));
            s.schedule(Time::from_micros(30), 3);
            s.schedule(Time::from_micros(20), 2);
            assert_eq!(s.peek_time(), Some(Time::from_micros(20)));
            assert_eq!(s.pop().unwrap().1, 2);
            assert_eq!(s.pop().unwrap().1, 3);
            assert!(s.is_empty());
        });
    }

    #[test]
    fn far_future_events_survive_the_overflow_path() {
        // Beyond the wheel horizon (65.536 ms) by orders of magnitude:
        // these take the overflow-heap path and come back on rotation.
        for_both(|mut s| {
            s.schedule(Time::from_secs(2), 2);
            s.schedule(Time::from_micros(7), 0);
            s.schedule(Time::from_secs(1), 1);
            s.schedule(Time::from_secs(3), 3);
            for want in 0..4 {
                assert_eq!(s.pop().unwrap().1, want);
            }
            assert_eq!(s.pop(), None);
        });
    }

    #[test]
    fn len_and_counters() {
        for_both(|mut s| {
            assert!(s.is_empty());
            let base = Time::ZERO;
            for i in 0..10u64 {
                s.schedule(base + Duration::from_micros(i), i);
            }
            assert_eq!(s.len(), 10);
            assert_eq!(s.scheduled_total(), 10);
            s.pop();
            assert_eq!(s.len(), 9);
            assert_eq!(s.scheduled_total(), 10);
        });
    }

    #[test]
    fn depth_high_water_tracks_peak_not_current() {
        for_both(|mut s| {
            assert_eq!(s.depth_high_water(), 0);
            for i in 0..4 {
                s.schedule(Time::from_micros(i), i);
            }
            s.pop();
            s.pop();
            assert_eq!(s.len(), 2);
            assert_eq!(s.depth_high_water(), 4);
            // Refilling below the old peak leaves the high-water untouched.
            s.schedule(Time::from_micros(9), 9);
            assert_eq!(s.depth_high_water(), 4);
            // Exceeding it moves it.
            s.schedule(Time::from_micros(10), 10);
            s.schedule(Time::from_micros(11), 11);
            assert_eq!(s.depth_high_water(), 5);
        });
    }

    #[test]
    fn depth_high_water_counts_elided_entries_identically() {
        // The high water is sampled on push in the wrapper, so entries
        // later elided as stale still contribute to the peak — on both
        // backends, identically.
        let run = |kind| {
            let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
            for i in 0..8u64 {
                s.schedule(Time::from_micros(10 + i), i);
            }
            // Everything odd is stale.
            while s
                .pop_before(Time::MAX, |_: Time, e: &u64| e % 2 == 1)
                .is_some()
            {}
            (s.depth_high_water(), s.stale_drops(), s.len())
        };
        let heap = run(SchedKind::Heap);
        let wheel = run(SchedKind::Wheel);
        assert_eq!(heap, wheel);
        assert_eq!(heap, (8, 4, 0));
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        for_both(|mut s| {
            s.schedule(Time::from_micros(10), 1);
            s.schedule(Time::from_micros(30), 3);
            let none_stale = |_: Time, _: &u64| false;
            assert_eq!(
                s.pop_before(Time::from_micros(20), none_stale),
                Some((Time::from_micros(10), 1))
            );
            assert_eq!(s.pop_before(Time::from_micros(20), none_stale), None);
            assert_eq!(s.len(), 1, "the later event must stay queued");
            assert_eq!(
                s.pop_before(Time::from_micros(30), none_stale),
                Some((Time::from_micros(30), 3))
            );
        });
    }

    #[test]
    fn stale_entries_beyond_the_horizon_are_left_alone() {
        for_both(|mut s| {
            s.schedule(Time::from_micros(50), 5);
            let all_stale = |_: Time, _: &u64| true;
            assert_eq!(s.pop_before(Time::from_micros(10), all_stale), None);
            assert_eq!(s.stale_drops(), 0, "not visited, not elided");
            assert_eq!(s.len(), 1);
            assert_eq!(s.pop_before(Time::from_micros(50), all_stale), None);
            assert_eq!(s.stale_drops(), 1);
            assert!(s.is_empty());
        });
    }

    #[test]
    fn elision_skips_stale_runs_in_one_pop() {
        for_both(|mut s| {
            for i in 0..6u64 {
                s.schedule(Time::from_micros(i), i);
            }
            // Only the last event is live: one pop call elides the rest.
            let got = s.pop_before(Time::MAX, |_: Time, e: &u64| *e != 5);
            assert_eq!(got, Some((Time::from_micros(5), 5)));
            assert_eq!(s.stale_drops(), 5);
            assert!(s.is_empty());
        });
    }

    #[test]
    fn event_ids_are_unique_and_monotone() {
        for_both(|mut s| {
            let a = s.schedule(Time::from_micros(1), 0);
            let b = s.schedule(Time::from_micros(1), 0);
            assert!(b > a);
        });
    }

    #[test]
    fn reschedule_moves_an_entry_in_place() {
        for_both(|mut s| {
            let h = s.schedule_keyed(Time::from_micros(10), 1);
            s.schedule(Time::from_micros(20), 2);
            assert_eq!(s.len(), 2);
            // Move the first entry past the second: it must pop second,
            // and under the seq a fresh schedule would have received.
            let h2 = s.reschedule(Some(h), Time::from_micros(30), 3);
            assert_eq!(h2.id(), EventId(2));
            assert_eq!(h2.at(), Time::from_micros(30));
            assert_eq!(s.len(), 2);
            assert_eq!(s.scheduled_total(), 2, "re-arm is not a fresh schedule");
            assert_eq!(s.rescheduled_total(), 1);
            assert_eq!(s.pop(), Some((Time::from_micros(20), 2)));
            assert_eq!(s.pop(), Some((Time::from_micros(30), 3)));
            assert_eq!(s.pop(), None);
            assert_eq!(s.stale_drops(), 0, "nothing was abandoned");
        });
    }

    #[test]
    fn remove_then_reschedule_none_revives_a_parked_timer() {
        for_both(|mut s| {
            let h = s.schedule_keyed(Time::from_micros(10), 1);
            s.schedule(Time::from_micros(15), 2);
            assert!(s.remove(h));
            assert_eq!(s.len(), 1);
            assert_eq!(s.removed_total(), 1);
            assert_eq!(s.pop(), Some((Time::from_micros(15), 2)));
            let h2 = s.reschedule(None, Time::from_micros(40), 4);
            assert_eq!(h2.id(), EventId(2));
            assert_eq!(s.pop(), Some((Time::from_micros(40), 4)));
            assert!(s.is_empty());
            assert_eq!(s.scheduled_total(), 2);
            assert_eq!(s.rescheduled_total(), 1);
        });
    }

    #[test]
    fn remove_finds_entries_in_every_region() {
        // Near-future bucket, far-future overflow, and the behind-base
        // clamp case all resolve through the same keyed removal.
        for_both(|mut s| {
            // Far future (wheel overflow).
            let far = s.schedule_keyed(Time::from_secs(2), 9);
            assert!(s.remove(far));
            // Advance the wheel deep into a later lap, then schedule
            // behind its base (the clamp path).
            s.schedule(Time::from_secs(1), 1);
            assert_eq!(s.pop(), Some((Time::from_secs(1), 1)));
            let behind = s.schedule_keyed(Time::from_micros(7), 2);
            let near = s.schedule_keyed(Time::from_secs(1) + Duration::from_micros(50), 3);
            assert!(s.remove(behind));
            assert!(s.remove(near));
            assert!(s.is_empty());
            assert_eq!(s.peek_time(), None);
            assert_eq!(s.pop(), None);
            assert_eq!(s.removed_total(), 3);
        });
    }

    #[test]
    fn removed_entries_never_surface_in_peek_or_pop() {
        for_both(|mut s| {
            let doomed = s.schedule_keyed(Time::from_micros(5), 0);
            s.schedule(Time::from_micros(9), 1);
            assert_eq!(s.peek_time(), Some(Time::from_micros(5)));
            assert!(s.remove(doomed));
            assert_eq!(s.peek_time(), Some(Time::from_micros(9)));
            assert_eq!(s.pop(), Some((Time::from_micros(9), 1)));
        });
    }

    #[test]
    fn reschedule_storm_matches_fresh_schedule_order() {
        // A timer moved many times must dispatch exactly where a chain of
        // fresh schedule + elide-the-old would have put it.
        let run_keyed = |kind| {
            let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
            let mut h = s.schedule_keyed(Time::from_micros(100), 0);
            for i in 1..50u64 {
                s.schedule(Time::from_micros(i * 3), 1000 + i);
                h = s.reschedule(Some(h), Time::from_micros(100 + i), i);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = s.pop() {
                out.push((t, e));
            }
            out
        };
        let run_epoch = |kind| {
            let mut s: Scheduler<u64> = Scheduler::with_kind(kind);
            let mut live = 0u64;
            s.schedule(Time::from_micros(100), 0);
            for i in 1..50u64 {
                s.schedule(Time::from_micros(i * 3), 1000 + i);
                live = i;
                s.schedule(Time::from_micros(100 + i), i);
            }
            let mut out = Vec::new();
            while let Some((t, e)) =
                s.pop_before(Time::MAX, |_: Time, e: &u64| *e < 1000 && *e != live)
            {
                out.push((t, e));
            }
            out
        };
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            assert_eq!(run_keyed(kind), run_epoch(kind));
        }
    }

    #[test]
    fn wheel_reports_rotation_stats() {
        let mut s: Scheduler<u64> = Scheduler::with_kind(SchedKind::Wheel);
        // One near event, one far (overflow) event.
        s.schedule(Time::from_micros(100), 0);
        s.schedule(Time::from_secs(1), 1);
        assert_eq!(s.pop().unwrap().1, 0);
        assert_eq!(s.pop().unwrap().1, 1);
        let stats = s.wheel_stats();
        assert!(stats.rotations > 0, "cursor must have advanced");
        assert_eq!(stats.overflow_refills, 1, "the far event came back");
        assert!(stats.bucket_high_water >= 1);
    }
}
