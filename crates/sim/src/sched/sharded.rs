//! Multi-queue scheduler façade for conservative parallel DES.
//!
//! One run, K partitions ("shards"), one backend queue per shard. Callers
//! route every entry to a shard (the engine partitions nodes along the
//! static interference graph); the façade merges the shard heads back
//! into the exact global `(at, seq)` total order a single
//! [`Scheduler`](super::Scheduler) would produce. The merge point is the determinism linchpin:
//!
//! * **Seq allocation is global.** One `next_seq` counter spans all
//!   shards, incremented in call order — the same order a serial run
//!   issues its `schedule` calls — so every entry carries the identical
//!   key it would have had in one queue.
//! * **Pop is an argmin over shard heads.** Each shard exposes its
//!   earliest pending `(at, seq)` key (cached here, refreshed on the
//!   push/pop/remove edges that can change it); the façade pops the
//!   global minimum. Keys are unique (seq is), so the argmin is
//!   deterministic without any tie-break rule.
//! * **Stale elision happens at the merge, in global order.** The
//!   [`Cancelable`] hook has ordered side effects (the engine clears hot
//!   timer slots and writes trace records from it), so the façade pops
//!   single entries from the backends with a never-stale hook and applies
//!   the real hook itself, entry by entry, in the merged order. With a
//!   single shard the façade instead delegates the whole elision loop to
//!   the backend — byte-identical to [`Scheduler`](super::Scheduler)
//!   right down to the wheel's rotation gauges.
//!
//! The conservative-PDES accounting rides on top without disturbing any
//! of that:
//!
//! * **Lookahead** is the minimum cross-shard latency: an event handled
//!   at `t` in one shard cannot schedule anything in another shard
//!   earlier than `t + lookahead` (for the 802.11 engine: DIFS + one
//!   slot, the shortest path from a cross-cut carrier-sense edge to a
//!   MAC response; propagation is zero in this model).
//! * [`ShardedScheduler::safe_horizon`] is the classic conservative
//!   bound: shard `s` may run up to `min` over other shards' next-event
//!   times plus the lookahead without risk of a cross-cut arrival from
//!   the past.
//! * [`ShardedScheduler::barrier_waits`] counts lookahead-epoch
//!   advances: pops whose instant crosses past the current epoch window
//!   `[T, T + lookahead)`. A threaded conservative runtime synchronizes
//!   all shards at each such boundary, so `events / barrier_waits` is
//!   the average work available between global syncs.
//! * [`ShardedScheduler::cut_deliveries`] counts posts whose target
//!   shard differs from the shard of the event being handled — the
//!   traffic that would cross thread boundaries.
//!
//! This merge executes serially (the reference container is single-core;
//! a threaded run could not be byte-identical anyway because same-instant
//! carrier-sense fan-out couples shards within one microsecond), but the
//! partitioning, lookahead and barrier machinery are the real thing: the
//! counters quantify exactly how much parallelism a threaded runtime
//! would harvest, and per-shard queues shrink each wheel's working set
//! even at one thread.

use super::heap::HeapQueue;
use super::wheel::WheelQueue;
use super::{Backend, Cancelable, Entry, EventId, SchedKind, TimerHandle, WheelStats};
use crate::time::{Duration, Time};

/// A deterministic multi-queue event scheduler (see the module docs).
///
/// The API mirrors [`Scheduler`](super::Scheduler) with one addition: the
/// mutating calls take the target shard index. All bookkeeping callers
/// observe (`len`, totals, `depth_high_water`, `stale_drops`) is global
/// and maintained here in the façade, with the same formulas as the
/// serial wrapper — a sharded run reports identical statistics.
pub struct ShardedScheduler<E> {
    shards: Vec<Backend<E>>,
    /// Cached earliest pending `(at, seq)` per shard (None = empty).
    /// Maintained only when `shards.len() > 1`; the single-shard fast
    /// path delegates straight to its backend.
    heads: Vec<Option<(Time, u64)>>,
    lookahead: Duration,
    /// Shard of the event currently being handled (set at pop), the
    /// source side of the cut-delivery count. `None` until the first pop,
    /// so construction-time scheduling counts no cuts.
    cur_shard: Option<u32>,
    /// End of the current lookahead epoch window.
    epoch_end: Time,
    next_seq: u64,
    len: usize,
    depth_high_water: usize,
    stale_drops: u64,
    rescheduled: u64,
    removed: u64,
    cut_deliveries: u64,
    barrier_waits: u64,
}

impl<E> ShardedScheduler<E> {
    /// Creates an empty scheduler with `shards` backend queues of `kind`
    /// and the given cross-shard `lookahead`. `shards` is clamped to at
    /// least 1.
    pub fn with_kind(kind: SchedKind, shards: usize, lookahead: Duration) -> Self {
        let shards = shards.max(1);
        let make = || match kind {
            SchedKind::Heap => Backend::Heap(HeapQueue::new()),
            SchedKind::Wheel => Backend::Wheel(Box::new(WheelQueue::new())),
        };
        ShardedScheduler {
            shards: (0..shards).map(|_| make()).collect(),
            heads: vec![None; shards],
            lookahead,
            cur_shard: None,
            epoch_end: Time::ZERO,
            next_seq: 0,
            len: 0,
            depth_high_water: 0,
            stale_drops: 0,
            rescheduled: 0,
            removed: 0,
            cut_deliveries: 0,
            barrier_waits: 0,
        }
    }

    /// Which backend kind every shard runs on.
    pub fn kind(&self) -> SchedKind {
        match self.shards[0] {
            Backend::Heap(_) => SchedKind::Heap,
            Backend::Wheel(_) => SchedKind::Wheel,
        }
    }

    /// Number of shards (partitions).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The cross-shard lookahead this scheduler was built with.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// Schedules `event` for instant `at` in `shard`. Returns an id
    /// usable for tracing. Seq allocation is global: the id is the one a
    /// serial scheduler would assign to this same call.
    #[inline]
    pub fn schedule(&mut self, shard: usize, at: Time, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_entry(shard, Entry { at, seq, event });
        EventId(seq)
    }

    /// [`ShardedScheduler::schedule`], returning a [`TimerHandle`] for
    /// later keyed rescheduling or removal (which must name the same
    /// shard).
    #[inline]
    pub fn schedule_keyed(&mut self, shard: usize, at: Time, event: E) -> TimerHandle {
        let EventId(seq) = self.schedule(shard, at, event);
        TimerHandle { at, seq }
    }

    /// Moves a pending entry of `shard` to a new instant in place; same
    /// contract as [`Scheduler::reschedule`](super::Scheduler::reschedule)
    /// (fresh global seq, churn counted in `rescheduled`, `None` revives
    /// a parked timer). The entry stays in `shard`: a logical timer is
    /// owned by one node, and nodes never migrate between partitions.
    #[inline]
    pub fn reschedule(
        &mut self,
        shard: usize,
        prev: Option<TimerHandle>,
        at: Time,
        event: E,
    ) -> TimerHandle {
        if let Some(h) = prev {
            let found = self.remove_entry(shard, h);
            debug_assert!(found, "reschedule of a dead handle {h:?}");
            if found {
                self.len -= 1;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rescheduled += 1;
        self.push_entry(shard, Entry { at, seq, event });
        TimerHandle { at, seq }
    }

    /// Physically removes a pending entry from `shard`; same contract as
    /// [`Scheduler::remove`](super::Scheduler::remove).
    pub fn remove(&mut self, shard: usize, h: TimerHandle) -> bool {
        if self.remove_entry(shard, h) {
            self.len -= 1;
            self.removed += 1;
            true
        } else {
            false
        }
    }

    /// The instant of the earliest pending event across all shards.
    pub fn peek_time(&self) -> Option<Time> {
        if self.shards.len() == 1 {
            return match &self.shards[0] {
                Backend::Heap(h) => h.peek_time(),
                Backend::Wheel(w) => w.peek_time(),
            };
        }
        self.heads.iter().flatten().min().map(|&(at, _)| at)
    }

    /// The conservative safe horizon for `shard`: the earliest instant a
    /// cross-cut delivery from another shard could still arrive at, i.e.
    /// `min` over the *other* shards' next-event times plus the
    /// lookahead. A threaded runtime may process `shard`'s events
    /// strictly before this bound without synchronizing. [`Time::MAX`]
    /// when every other shard is empty (or there is only one shard).
    pub fn safe_horizon(&self, shard: usize) -> Time {
        let mut safe = Time::MAX;
        if self.shards.len() > 1 {
            for (p, head) in self.heads.iter().enumerate() {
                if p == shard {
                    continue;
                }
                if let Some((at, _)) = *head {
                    safe = safe.min(at + self.lookahead);
                }
            }
        }
        safe
    }

    /// Number of pending events across all shards (stale entries
    /// included until elided).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no events are pending in any shard.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total fresh events ever scheduled (same formula as the serial
    /// wrapper: re-arms excluded).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq - self.rescheduled
    }

    /// Entries created by [`ShardedScheduler::reschedule`].
    pub fn rescheduled_total(&self) -> u64 {
        self.rescheduled
    }

    /// Entries physically removed by [`ShardedScheduler::remove`].
    pub fn removed_total(&self) -> u64 {
        self.removed
    }

    /// Peak global pending count (all shards summed, sampled on push).
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Entries elided at pop time by the [`Cancelable`] hook.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops
    }

    /// Posts (schedule/reschedule) whose target shard differed from the
    /// shard of the event being handled — the traffic that crosses
    /// partition boundaries. Zero until the first pop by construction,
    /// and always zero with one shard.
    pub fn cut_deliveries(&self) -> u64 {
        self.cut_deliveries
    }

    /// Lookahead-epoch advances (see the module docs): global barrier
    /// synchronizations a conservative threaded runtime would perform.
    /// Zero with one shard — a single partition never synchronizes.
    pub fn barrier_waits(&self) -> u64 {
        self.barrier_waits
    }

    /// Wheel gauges summed across shards (`bucket_high_water` is the max
    /// — it is a depth, not a flow); all zero on the heap backend.
    pub fn wheel_stats(&self) -> WheelStats {
        let mut total = WheelStats::default();
        for shard in &self.shards {
            if let Backend::Wheel(w) = shard {
                let s = w.stats();
                total.rotations += s.rotations;
                total.overflow_refills += s.overflow_refills;
                total.bucket_high_water = total.bucket_high_water.max(s.bucket_high_water);
            }
        }
        total
    }

    #[inline]
    fn push_entry(&mut self, shard: usize, entry: Entry<E>) {
        if self.shards.len() > 1 {
            if let Some(cur) = self.cur_shard {
                if cur as usize != shard {
                    self.cut_deliveries += 1;
                }
            }
            let key = (entry.at, entry.seq);
            let head = &mut self.heads[shard];
            if head.is_none_or(|h| key < h) {
                *head = Some(key);
            }
        }
        match &mut self.shards[shard] {
            Backend::Heap(h) => h.push(entry),
            Backend::Wheel(w) => w.push(entry),
        }
        self.len += 1;
        self.depth_high_water = self.depth_high_water.max(self.len);
    }

    fn remove_entry(&mut self, shard: usize, h: TimerHandle) -> bool {
        let found = match &mut self.shards[shard] {
            Backend::Heap(q) => q.remove(h.at, h.seq),
            Backend::Wheel(q) => q.remove(h.at, h.seq),
        };
        // Removing the cached head invalidates the cache; re-peek.
        if found && self.shards.len() > 1 && self.heads[shard] == Some((h.at, h.seq)) {
            self.heads[shard] = match &self.shards[shard] {
                Backend::Heap(q) => q.peek_key(),
                Backend::Wheel(q) => q.peek_key(),
            };
        }
        found
    }
}

impl<E: Clone> ShardedScheduler<E> {
    /// Removes and returns the earliest event across all shards, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_before(Time::MAX, |_: Time, _: &E| false)
    }

    /// Removes and returns the earliest *live* event at or before
    /// `until` across all shards, eliding stale entries on the way —
    /// same contract as [`Scheduler::pop_before`](super::Scheduler::pop_before),
    /// with the hook consulted in the exact merged `(at, seq)` order.
    pub fn pop_before<C: Cancelable<E>>(
        &mut self,
        until: Time,
        mut cancel: C,
    ) -> Option<(Time, E)> {
        if self.shards.len() == 1 {
            // Single shard: hand the whole elision loop to the backend,
            // exactly as the serial wrapper does — one call, same hook,
            // so even the wheel's rotation gauges stay byte-identical.
            let mut skipped = 0u64;
            let popped = match &mut self.shards[0] {
                Backend::Heap(h) => h.pop_live_before(until, &mut cancel, &mut skipped),
                Backend::Wheel(w) => w.pop_live_before(until, &mut cancel, &mut skipped),
            };
            self.stale_drops += skipped;
            self.len -= skipped as usize + popped.is_some() as usize;
            return popped.map(|e| (e.at, e.event));
        }
        loop {
            // Argmin over the cached shard heads; keys are unique, so
            // the winner is deterministic.
            let mut best: Option<(usize, (Time, u64))> = None;
            for (s, head) in self.heads.iter().enumerate() {
                if let Some(key) = *head {
                    if best.is_none_or(|(_, b)| key < b) {
                        best = Some((s, key));
                    }
                }
            }
            let (s, (at, seq)) = best?;
            if at > until {
                return None;
            }
            // Pop exactly the head entry from its backend; staleness is
            // decided here at the merge, not inside the backend, because
            // the hook's side effects are ordered observable state.
            let mut skipped = 0u64;
            let mut never = |_: Time, _: &E| false;
            let entry = match &mut self.shards[s] {
                Backend::Heap(h) => h.pop_live_before(until, &mut never, &mut skipped),
                Backend::Wheel(w) => w.pop_live_before(until, &mut never, &mut skipped),
            }
            .expect("cached head is pending at or before until");
            debug_assert_eq!((entry.at, entry.seq), (at, seq), "head cache out of date");
            debug_assert_eq!(skipped, 0);
            self.heads[s] = match &self.shards[s] {
                Backend::Heap(q) => q.peek_key(),
                Backend::Wheel(q) => q.peek_key(),
            };
            self.len -= 1;
            self.cur_shard = Some(s as u32);
            // Epoch accounting: every visited entry (live or stale — a
            // thread visits both) that crosses the window ends an epoch.
            if entry.at >= self.epoch_end {
                self.barrier_waits += 1;
                self.epoch_end = entry.at + self.lookahead;
            }
            if cancel.is_stale(entry.at, &entry.event) {
                self.stale_drops += 1;
                continue;
            }
            return Some((entry.at, entry.event));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Scheduler;

    const LOOKAHEAD: Duration = Duration::from_micros(70);

    fn for_kinds_and_shards(test: impl Fn(SchedKind, usize)) {
        for kind in [SchedKind::Heap, SchedKind::Wheel] {
            for shards in [1, 2, 4] {
                test(kind, shards);
            }
        }
    }

    #[test]
    fn merged_pops_match_a_serial_scheduler() {
        for_kinds_and_shards(|kind, k| {
            let mut serial: Scheduler<u64> = Scheduler::with_kind(kind);
            let mut sharded: ShardedScheduler<u64> =
                ShardedScheduler::with_kind(kind, k, LOOKAHEAD);
            // Same-instant ties, out-of-order times, round-robin shards.
            let times = [50u64, 10, 10, 90_000, 10, 30, 50, 2_000_000, 0, 30];
            for (i, &us) in times.iter().enumerate() {
                let at = Time::from_micros(us);
                assert_eq!(
                    serial.schedule(at, i as u64),
                    sharded.schedule(i % k, at, i as u64)
                );
            }
            loop {
                let a = serial.pop();
                let b = sharded.pop();
                assert_eq!(a, b, "kind={kind:?} shards={k}");
                if a.is_none() {
                    break;
                }
            }
        });
    }

    #[test]
    fn global_accounting_matches_the_serial_wrapper() {
        for_kinds_and_shards(|kind, k| {
            let mut serial: Scheduler<u64> = Scheduler::with_kind(kind);
            let mut sharded: ShardedScheduler<u64> =
                ShardedScheduler::with_kind(kind, k, LOOKAHEAD);
            for i in 0..20u64 {
                let at = Time::from_micros(i * 37 % 100);
                serial.schedule(at, i);
                sharded.schedule((i as usize) % k, at, i);
            }
            // Elide the odd ones.
            let stale = |_: Time, e: &u64| e % 2 == 1;
            while serial.pop_before(Time::MAX, stale).is_some() {
                sharded.pop_before(Time::MAX, stale).expect("lock-step");
            }
            assert!(sharded.pop_before(Time::MAX, stale).is_none());
            assert_eq!(serial.len(), sharded.len());
            assert_eq!(serial.scheduled_total(), sharded.scheduled_total());
            assert_eq!(serial.depth_high_water(), sharded.depth_high_water());
            assert_eq!(serial.stale_drops(), sharded.stale_drops());
        });
    }

    #[test]
    fn keyed_reschedule_and_remove_keep_merge_order() {
        for_kinds_and_shards(|kind, k| {
            let mut s: ShardedScheduler<u64> = ShardedScheduler::with_kind(kind, k, LOOKAHEAD);
            // The shard-0 head gets moved behind everything else; the
            // cache must follow it or pops will misorder.
            let h = s.schedule_keyed(0, Time::from_micros(5), 0);
            s.schedule(1 % k, Time::from_micros(10), 1);
            s.schedule(2 % k, Time::from_micros(20), 2);
            let h = s.reschedule(0, Some(h), Time::from_micros(30), 3);
            assert_eq!(s.pop(), Some((Time::from_micros(10), 1)));
            // Remove a head outright (parks the logical timer)...
            assert!(s.remove(0, h));
            assert_eq!(s.pop(), Some((Time::from_micros(20), 2)));
            // ...and revive it.
            s.reschedule(0, None, Time::from_micros(40), 4);
            assert_eq!(s.pop(), Some((Time::from_micros(40), 4)));
            assert_eq!(s.pop(), None);
            assert_eq!(s.scheduled_total(), 3);
            assert_eq!(s.rescheduled_total(), 2);
            assert_eq!(s.removed_total(), 1);
        });
    }

    #[test]
    fn cut_deliveries_count_cross_shard_posts_only() {
        let mut s: ShardedScheduler<u64> =
            ShardedScheduler::with_kind(SchedKind::Wheel, 2, LOOKAHEAD);
        // Build-time posts never count: no event is being handled yet.
        s.schedule(0, Time::from_micros(10), 0);
        s.schedule(1, Time::from_micros(20), 1);
        assert_eq!(s.cut_deliveries(), 0);
        // Handling the shard-0 event, post into shard 1 (cut) and shard 0
        // (local).
        assert_eq!(s.pop(), Some((Time::from_micros(10), 0)));
        s.schedule(1, Time::from_micros(100), 2);
        s.schedule(0, Time::from_micros(100), 3);
        assert_eq!(s.cut_deliveries(), 1);
    }

    #[test]
    fn barrier_waits_count_epoch_window_advances() {
        let mut s: ShardedScheduler<u64> =
            ShardedScheduler::with_kind(SchedKind::Wheel, 2, LOOKAHEAD);
        // Three events inside one 70 µs window, then one past it.
        for (i, us) in [0u64, 10, 60, 200].into_iter().enumerate() {
            s.schedule(i % 2, Time::from_micros(us), i as u64);
        }
        while s.pop().is_some() {}
        // t=0 opens the first epoch [0, 70); 10 and 60 ride inside it;
        // 200 opens the second.
        assert_eq!(s.barrier_waits(), 2);
    }

    #[test]
    fn safe_horizon_is_other_heads_plus_lookahead() {
        let mut s: ShardedScheduler<u64> =
            ShardedScheduler::with_kind(SchedKind::Wheel, 3, LOOKAHEAD);
        assert_eq!(s.safe_horizon(0), Time::MAX, "all peers empty");
        s.schedule(1, Time::from_micros(500), 1);
        s.schedule(2, Time::from_micros(100), 2);
        assert_eq!(s.safe_horizon(0), Time::from_micros(170));
        assert_eq!(s.safe_horizon(2), Time::from_micros(570));
        // A shard's own head does not bound it.
        s.schedule(0, Time::ZERO, 0);
        assert_eq!(s.safe_horizon(0), Time::from_micros(170));
    }

    #[test]
    fn single_shard_reports_no_pdes_traffic() {
        let mut s: ShardedScheduler<u64> =
            ShardedScheduler::with_kind(SchedKind::Wheel, 1, LOOKAHEAD);
        s.schedule(0, Time::from_micros(10), 0);
        assert_eq!(s.pop(), Some((Time::from_micros(10), 0)));
        s.schedule(0, Time::from_micros(500), 1);
        assert_eq!(s.pop(), Some((Time::from_micros(500), 1)));
        assert_eq!(s.cut_deliveries(), 0);
        assert_eq!(s.barrier_waits(), 0);
        assert_eq!(s.safe_horizon(0), Time::MAX);
    }

    #[test]
    fn horizon_slicing_leaves_later_entries_alone() {
        for_kinds_and_shards(|kind, k| {
            let mut s: ShardedScheduler<u64> = ShardedScheduler::with_kind(kind, k, LOOKAHEAD);
            s.schedule(0, Time::from_micros(10), 1);
            s.schedule(1 % k, Time::from_micros(30), 3);
            let none = |_: Time, _: &u64| false;
            assert_eq!(
                s.pop_before(Time::from_micros(20), none),
                Some((Time::from_micros(10), 1))
            );
            assert_eq!(s.pop_before(Time::from_micros(20), none), None);
            assert_eq!(s.len(), 1);
            assert_eq!(s.peek_time(), Some(Time::from_micros(30)));
        });
    }
}
