//! The calendar-queue backend: a bucket wheel plus an overflow heap.
//!
//! The 802.11 DCF schedules almost everything within a few hundred slot
//! times of *now* — DIFS/backoff expiries, SIFS responses, ACK timeouts,
//! frame airtimes — and cancels timers constantly via epoch tokens. That
//! short-horizon churn is the textbook case for Brown's calendar queue:
//!
//! * **Near future** — an array of [`NUM_BUCKETS`] fixed-width buckets,
//!   each [`BUCKET_WIDTH_US`] µs wide (64 µs ≈ 3 slot times of 20 µs:
//!   wide enough that adjacent backoff slots share a bucket, narrow
//!   enough that a bucket rarely holds more than a handful of
//!   entries). Bucket `i` holds entries whose `at` falls in
//!   the window `[i·W, (i+1)·W) mod horizon`; within a bucket entries are
//!   kept in ascending `(at, seq)` order by sorted insertion (buckets are
//!   tiny, so the insertion is effectively O(1) and the common
//!   append-at-end case is one comparison).
//! * **Rotation** — the cursor only ever moves forward, to the bucket of
//!   the entry being popped; a bitmap of occupied buckets makes "find the
//!   next non-empty bucket" a couple of word scans instead of a walk.
//!   Every cursor advance slides the wheel's window forward and migrates
//!   newly in-horizon entries out of the overflow heap into their
//!   buckets ([`WheelStats::overflow_refills`]).
//! * **Far future** — entries at or beyond `base + horizon` (65.536 ms
//!   out) wait in an overflow min-heap. Only coarse periodic machinery
//!   lands there (metric sampling, CAA epochs, flow start/stop), so the
//!   heap stays small and its O(log n) is off the hot path.
//!
//! **Determinism argument.** Total order is preserved exactly: (1) the
//! overflow invariant — everything in a bucket is earlier than everything
//! in the overflow heap — means buckets always drain first; (2) buckets
//! are visited in cursor order and bucket `b`'s window lies entirely
//! before bucket `b+1`'s, so cross-bucket order is time order; (3) within
//! a bucket, sorted insertion keeps exact `(at, seq)` order, which also
//! handles the degenerate case of an entry scheduled at or before the
//! wheel's `base` (it clamps into the *current* bucket, where the sort
//! ranks it first). Pop sequences are therefore identical to the heap
//! backend's — property-tested in `tests/sched_equiv.rs`.

use std::collections::BinaryHeap;

use super::{Entry, WheelStats};
use crate::time::Time;

/// Width of one bucket, µs. Tuned to the 802.11b slot time (20 µs): most
/// MAC timers land within a few slots, so 64 µs keeps same-instant and
/// adjacent-slot entries in the same or neighbouring buckets while
/// staying a power of two (bucket indexing is a shift and a mask).
/// Measured against 32 µs and 128 µs on the hotpath scenarios, 64 µs
/// sits at the flat bottom of the cost curve (fewer rotations than 32,
/// no deeper buckets in practice).
pub const BUCKET_WIDTH_US: u64 = 64;

/// Number of buckets (power of two). With 64 µs buckets the wheel covers
/// a 65.536 ms horizon — several maximum frame airtimes plus worst-case
/// backoff — beyond which events overflow to the far-future heap.
pub const NUM_BUCKETS: usize = 1024;

/// The wheel's time horizon, µs: `NUM_BUCKETS * BUCKET_WIDTH_US`.
pub const HORIZON_US: u64 = NUM_BUCKETS as u64 * BUCKET_WIDTH_US;

const MASK: usize = NUM_BUCKETS - 1;
const WORDS: usize = NUM_BUCKETS / 64;

/// One near-future bucket. `items[head..]` are the live entries in
/// ascending `(at, seq)` order; `items[..head]` is the dead prefix of
/// already-popped entries, reclaimed in one `clear` when the bucket
/// drains. The cursor-plus-`Vec` layout keeps both ends O(1) *with*
/// `Vec`'s plain append on the push side — a `VecDeque` ring buffer's
/// wrap arithmetic on every push showed up in profiles, and `remove(0)`
/// on a bare `Vec` is a whole-bucket memmove per pop.
struct Bucket<E> {
    items: Vec<Entry<E>>,
    head: usize,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket {
            items: Vec::new(),
            head: 0,
        }
    }

    /// Live entries (the dead prefix excluded).
    fn live(&self) -> usize {
        self.items.len() - self.head
    }
}

/// Calendar-queue event queue (see the module docs).
pub(crate) struct WheelQueue<E> {
    /// The near-future buckets (see [`Bucket`]).
    buckets: Vec<Bucket<E>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Index of the bucket whose window starts at `base`.
    cursor: usize,
    /// Start of the cursor bucket's window, µs; always a multiple of
    /// [`BUCKET_WIDTH_US`], and `cursor == (base / W) & MASK` always.
    base: u64,
    /// Entries currently in buckets (the rest are in `overflow`).
    in_buckets: usize,
    /// Far-future entries (`at >= base + HORIZON_US`), earliest first.
    overflow: BinaryHeap<Entry<E>>,
    stats: WheelStats,
}

impl<E> WheelQueue<E> {
    pub(crate) fn new() -> Self {
        WheelQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Bucket::new()).collect(),
            occupied: [0; WORDS],
            cursor: 0,
            base: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            stats: WheelStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> WheelStats {
        self.stats
    }

    pub(crate) fn push(&mut self, entry: Entry<E>) {
        if entry.at.as_micros() >= self.base + HORIZON_US {
            self.overflow.push(entry);
        } else {
            self.bucket_insert(entry);
        }
    }

    /// Inserts an in-horizon entry into its bucket, keeping the bucket's
    /// ascending `(at, seq)` order. Entries at or before `base` clamp
    /// into the cursor bucket: nothing earlier can still be pending, and
    /// the sort ranks them ahead of the bucket's in-window entries.
    fn bucket_insert(&mut self, entry: Entry<E>) {
        let at = entry.at.as_micros();
        let idx = if at < self.base {
            self.cursor
        } else {
            (at / BUCKET_WIDTH_US) as usize & MASK
        };
        let bucket = &mut self.buckets[idx];
        let key = (entry.at, entry.seq);
        // Fast path: seq grows monotonically, so pushes for the same or a
        // later instant append at the end.
        match bucket.items.last() {
            Some(last) if (last.at, last.seq) > key => {
                // Search the live slice only: a clamped late push can key
                // below the dead prefix (already-popped entries), which
                // would break the predicate's monotonicity.
                let live = &bucket.items[bucket.head..];
                let pos = bucket.head + live.partition_point(|e| (e.at, e.seq) < key);
                bucket.items.insert(pos, entry);
            }
            _ => bucket.items.push(entry),
        }
        self.stats.bucket_high_water = self.stats.bucket_high_water.max(bucket.live() as u64);
        self.occupied[idx >> 6] |= 1 << (idx & 63);
        self.in_buckets += 1;
    }

    /// Removes the pending entry with key `(at, seq)`; returns whether it
    /// was found. The bucket an in-horizon entry lives in is normally the
    /// one its `at` maps to, but an entry pushed while its instant was
    /// already at or behind the then-`base` was clamped into the
    /// then-cursor bucket — for those (and only those) the natural-bucket
    /// probe misses and a bitmap walk over the occupied buckets finishes
    /// the job. Buckets hold a handful of entries (see
    /// [`WheelStats::bucket_high_water`]), so the common case is one
    /// binary search plus a tiny `Vec::remove` memmove.
    pub(crate) fn remove(&mut self, at: Time, seq: u64) -> bool {
        let at_us = at.as_micros();
        if at_us >= self.base + HORIZON_US {
            // Overflow invariant: everything at or past the horizon is in
            // the far-future heap (refill migrates the rest on rotation).
            let before = self.overflow.len();
            self.overflow.retain(|e| e.seq != seq || e.at != at);
            return self.overflow.len() != before;
        }
        let natural = if at_us < self.base {
            self.cursor
        } else {
            (at_us / BUCKET_WIDTH_US) as usize & MASK
        };
        if self.remove_in_bucket(natural, at, seq) {
            return true;
        }
        for idx in 0..NUM_BUCKETS {
            if idx == natural || self.occupied[idx >> 6] & (1u64 << (idx & 63)) == 0 {
                continue;
            }
            if self.remove_in_bucket(idx, at, seq) {
                return true;
            }
        }
        false
    }

    /// Binary-searches bucket `idx`'s live slice for `(at, seq)` and
    /// removes the entry if present, keeping the bitmap and entry count
    /// consistent.
    fn remove_in_bucket(&mut self, idx: usize, at: Time, seq: u64) -> bool {
        let bucket = &mut self.buckets[idx];
        let key = (at, seq);
        let live = &bucket.items[bucket.head..];
        let pos = bucket.head + live.partition_point(|e| (e.at, e.seq) < key);
        if pos == bucket.items.len() || (bucket.items[pos].at, bucket.items[pos].seq) != key {
            return false;
        }
        bucket.items.remove(pos);
        if bucket.head == bucket.items.len() {
            bucket.items.clear();
            bucket.head = 0;
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.in_buckets -= 1;
        true
    }

    /// Offset (in buckets, from the cursor) of the first occupied bucket.
    /// `None` iff all buckets are empty.
    fn next_occupied_offset(&self) -> Option<usize> {
        let word0 = self.cursor >> 6;
        let bit0 = self.cursor & 63;
        let masked = self.occupied[word0] >> bit0;
        if masked != 0 {
            return Some(masked.trailing_zeros() as usize);
        }
        for step in 1..=WORDS {
            let mut word = self.occupied[(word0 + step) & (WORDS - 1)];
            if step == WORDS {
                // Wrapped back to the cursor's word: only bits below the
                // cursor remain unchecked.
                word &= (1u64 << bit0) - 1;
            }
            if word != 0 {
                return Some(step * 64 - bit0 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Advances the cursor by `steps` buckets, sliding the window forward
    /// and refilling newly in-horizon entries from the overflow heap.
    fn advance(&mut self, steps: usize) {
        self.cursor = (self.cursor + steps) & MASK;
        self.base += steps as u64 * BUCKET_WIDTH_US;
        self.stats.rotations += steps as u64;
        self.refill();
    }

    /// Teleports the wheel to the bucket containing instant `to_us`
    /// (which must be at or beyond the current window: it comes from the
    /// overflow head while every bucket is empty).
    fn jump_to(&mut self, to_us: u64) {
        debug_assert_eq!(self.in_buckets, 0);
        self.base = to_us / BUCKET_WIDTH_US * BUCKET_WIDTH_US;
        self.cursor = (to_us / BUCKET_WIDTH_US) as usize & MASK;
        // One rotation, not `distance / width`: an idle jump's length
        // carries no information about wheel work.
        self.stats.rotations += 1;
        self.refill();
    }

    /// Migrates every overflow entry that now falls inside the window
    /// into its bucket.
    fn refill(&mut self) {
        let horizon_end = self.base + HORIZON_US;
        while let Some(head) = self.overflow.peek() {
            if head.at.as_micros() >= horizon_end {
                break;
            }
            let entry = self.overflow.pop().expect("peeked");
            self.stats.overflow_refills += 1;
            self.bucket_insert(entry);
        }
    }

    /// Removes and returns the earliest entry if it is at or before
    /// `until`; leaves the queue untouched otherwise (the cursor may
    /// still advance — pure bookkeeping, invisible to the total order).
    #[cfg(test)]
    pub(crate) fn pop_head_before(&mut self, until: Time) -> Option<Entry<E>>
    where
        E: Clone,
    {
        let mut skipped = 0;
        self.pop_live_before(until, &mut |_: Time, _: &E| false, &mut skipped)
    }

    /// Removes and returns the earliest *live* entry at or before `until`,
    /// consulting `cancel` on each entry in `(at, seq)` order and counting
    /// the stale ones it consumes into `skipped` (their `len` and
    /// `stale_drops` accounting stays with the wrapper).
    ///
    /// Doing the elision loop here — rather than popping one entry per
    /// wrapper call — lets a run of stale entries drain in place: the
    /// cursor positioning and bitmap scan happen once per *bucket*, not
    /// once per entry, and stale entries are never cloned out at all,
    /// only stepped over by growing the dead prefix.
    pub(crate) fn pop_live_before<C: super::Cancelable<E>>(
        &mut self,
        until: Time,
        cancel: &mut C,
        skipped: &mut u64,
    ) -> Option<Entry<E>>
    where
        E: Clone,
    {
        loop {
            if self.in_buckets == 0 {
                let head_at = self.overflow.peek()?.at;
                if head_at > until {
                    return None;
                }
                self.jump_to(head_at.as_micros());
                debug_assert!(self.in_buckets > 0, "jump_to must refill the head");
            }
            let offset = self
                .next_occupied_offset()
                .expect("in_buckets > 0 implies an occupied bucket");
            if offset > 0 {
                self.advance(offset);
            }
            let cur = self.cursor;
            // Drain this bucket's stale prefix in place; leave the inner
            // loop when the bucket empties (reposition) or a live entry
            // (or the horizon) surfaces.
            loop {
                let bucket = &mut self.buckets[cur];
                if bucket.head == bucket.items.len() {
                    break;
                }
                let head = &bucket.items[bucket.head];
                if head.at > until {
                    return None;
                }
                // Clone live entries out and grow the dead prefix; the
                // backing Vec is reclaimed in one `clear` once the bucket
                // drains. Events are small enum payloads, so the clone is
                // a plain copy in practice.
                let entry = if cancel.is_stale(head.at, &head.event) {
                    None
                } else {
                    Some(head.clone())
                };
                bucket.head += 1;
                if bucket.head == bucket.items.len() {
                    bucket.items.clear();
                    bucket.head = 0;
                    self.occupied[cur >> 6] &= !(1u64 << (cur & 63));
                }
                self.in_buckets -= 1;
                match entry {
                    Some(e) => return Some(e),
                    None => *skipped += 1,
                }
            }
        }
    }

    pub(crate) fn peek_time(&self) -> Option<Time> {
        if self.in_buckets == 0 {
            return self.overflow.peek().map(|e| e.at);
        }
        let offset = self.next_occupied_offset()?;
        let idx = (self.cursor + offset) & MASK;
        let bucket = &self.buckets[idx];
        Some(bucket.items[bucket.head].at)
    }

    /// The full `(at, seq)` key of the earliest pending entry — what the
    /// sharded façade's merge point compares across per-partition queues
    /// (time alone cannot break same-instant ties deterministically).
    /// Same head-location argument as [`WheelQueue::peek_time`]: buckets
    /// drain before overflow, cross-bucket order is time order, and the
    /// head of the first occupied bucket is its minimum.
    pub(crate) fn peek_key(&self) -> Option<(Time, u64)> {
        if self.in_buckets == 0 {
            return self.overflow.peek().map(|e| (e.at, e.seq));
        }
        let offset = self.next_occupied_offset()?;
        let idx = (self.cursor + offset) & MASK;
        let bucket = &self.buckets[idx];
        let head = &bucket.items[bucket.head];
        Some((head.at, head.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_us: u64, seq: u64) -> Entry<u64> {
        Entry {
            at: Time::from_micros(at_us),
            seq,
            event: seq,
        }
    }

    #[test]
    fn constants_are_powers_of_two() {
        assert!(BUCKET_WIDTH_US.is_power_of_two());
        assert!(NUM_BUCKETS.is_power_of_two());
        assert_eq!(HORIZON_US, 65_536);
    }

    #[test]
    fn same_bucket_entries_pop_in_seq_order() {
        let mut w: WheelQueue<u64> = WheelQueue::new();
        // All inside one bucket window, pushed out of order.
        w.push(entry(10, 1));
        w.push(entry(5, 2));
        w.push(entry(10, 0));
        let order: Vec<u64> =
            std::iter::from_fn(|| w.pop_head_before(Time::MAX).map(|e| e.seq)).collect();
        assert_eq!(order, vec![2, 0, 1], "(at, seq) order within the bucket");
    }

    #[test]
    fn overflow_entries_return_in_order_after_rotation() {
        let mut w: WheelQueue<u64> = WheelQueue::new();
        w.push(entry(HORIZON_US + 5, 0)); // overflow
        w.push(entry(3, 1)); // bucket
        assert_eq!(w.pop_head_before(Time::MAX).unwrap().seq, 1);
        assert_eq!(w.pop_head_before(Time::MAX).unwrap().seq, 0);
        assert_eq!(w.stats().overflow_refills, 1);
        assert!(w.pop_head_before(Time::MAX).is_none());
    }

    #[test]
    fn entries_at_or_before_base_clamp_into_the_cursor_bucket() {
        let mut w: WheelQueue<u64> = WheelQueue::new();
        // Advance the wheel deep into its second lap.
        w.push(entry(2 * HORIZON_US + 100, 0));
        assert_eq!(w.pop_head_before(Time::MAX).unwrap().seq, 0);
        // A "late" push behind the wheel's base must still pop, and first.
        w.push(entry(7, 2));
        w.push(entry(2 * HORIZON_US + 120, 1));
        assert_eq!(w.pop_head_before(Time::MAX).unwrap().seq, 2);
        assert_eq!(w.pop_head_before(Time::MAX).unwrap().seq, 1);
    }

    #[test]
    fn bitmap_tracks_occupancy_across_wrap() {
        let mut w: WheelQueue<u64> = WheelQueue::new();
        // Spread entries over more than one bitmap word, including the
        // last bucket (wrap case).
        let w_us = BUCKET_WIDTH_US;
        for (i, &us) in [0, 63 * w_us, 64 * w_us, 1023 * w_us].iter().enumerate() {
            w.push(entry(us, i as u64));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| w.pop_head_before(Time::MAX).map(|e| e.seq)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(w.peek_time(), None);
    }
}
