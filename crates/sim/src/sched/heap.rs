//! The reference backend: a plain binary heap.
//!
//! O(log n) push/pop with the inverted `Entry` ordering (earliest
//! `(at, seq)` first). This is the original scheduler implementation,
//! kept selectable forever: it has no tuning parameters and no geometry,
//! so it serves as the oracle the calendar-queue backend is
//! property-tested against (`tests/sched_equiv.rs`) and as the fallback
//! if a workload ever degenerates the wheel.

use std::collections::BinaryHeap;

use super::{Cancelable, Entry};
use crate::time::Time;

/// Binary-heap event queue (see the module docs).
pub(crate) struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> HeapQueue<E> {
    pub(crate) fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    pub(crate) fn push(&mut self, entry: Entry<E>) {
        self.heap.push(entry);
    }

    /// Removes the pending entry with key `(at, seq)`; returns whether it
    /// was found. O(n) rebuild via `retain` — this backend is the oracle,
    /// not the fast path, and a physical removal keeps `peek_time` exact
    /// (a tombstone scheme would let a dead entry masquerade as the head).
    pub(crate) fn remove(&mut self, at: Time, seq: u64) -> bool {
        let before = self.heap.len();
        self.heap.retain(|e| e.seq != seq || e.at != at);
        self.heap.len() != before
    }

    /// Removes and returns the earliest *live* entry at or before `until`,
    /// consulting `cancel` on each entry in `(at, seq)` order and counting
    /// the stale ones it consumes into `skipped` (their `len` and
    /// `stale_drops` accounting stays with the wrapper). Mirrors the wheel
    /// backend's method of the same name so the wrapper's pop loop is a
    /// single backend call either way.
    pub(crate) fn pop_live_before<C: Cancelable<E>>(
        &mut self,
        until: Time,
        cancel: &mut C,
        skipped: &mut u64,
    ) -> Option<Entry<E>> {
        loop {
            if self.heap.peek()?.at > until {
                return None;
            }
            let entry = self.heap.pop().expect("peeked");
            if cancel.is_stale(entry.at, &entry.event) {
                *skipped += 1;
                continue;
            }
            return Some(entry);
        }
    }

    pub(crate) fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// The full `(at, seq)` key of the earliest pending entry — what the
    /// sharded façade's merge point compares across per-partition queues
    /// (time alone cannot break same-instant ties deterministically).
    pub(crate) fn peek_key(&self) -> Option<(Time, u64)> {
        self.heap.peek().map(|e| (e.at, e.seq))
    }
}
