//! The event scheduler.
//!
//! A thin wrapper around a binary heap of `(Time, sequence, event)` triples.
//! The monotonically increasing sequence number breaks ties between events
//! scheduled for the same instant, so that event delivery order — and hence
//! the entire simulation — is a pure function of the inputs and the RNG
//! seed. This determinism is what makes the EXPERIMENTS.md numbers
//! regenerable to the last digit.

use crate::time::Time;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, unique within one [`Scheduler`].
///
/// The scheduler does not support O(log n) cancellation; components that
/// need to abandon a pending timer (the MAC does, constantly) instead use
/// *epoch tokens*: the event carries an epoch, the owner bumps its epoch to
/// invalidate all outstanding timers, and stale events are ignored on
/// delivery. `EventId` exists so that callers can correlate trace output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within one
        // instant, the first-scheduled) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use ezflow_sim::{Scheduler, Time};
///
/// let mut s: Scheduler<&str> = Scheduler::new();
/// s.schedule(Time::from_micros(20), "second");
/// s.schedule(Time::from_micros(10), "first");
/// s.schedule(Time::from_micros(20), "third"); // same time: FIFO among ties
/// assert_eq!(s.pop(), Some((Time::from_micros(10), "first")));
/// assert_eq!(s.pop(), Some((Time::from_micros(20), "second")));
/// assert_eq!(s.pop(), Some((Time::from_micros(20), "third")));
/// assert_eq!(s.pop(), None);
/// ```
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    depth_high_water: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            depth_high_water: 0,
        }
    }

    /// Schedules `event` for instant `at`. Returns an id usable for tracing.
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.depth_high_water = self.depth_high_water.max(self.heap.len());
        EventId(seq)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event, if any.
    ///
    /// Together with [`Scheduler::len`] / [`Scheduler::is_empty`] this is
    /// the only queue state `ezflow-net`'s engine loop reads: it peeks to
    /// decide whether the next event falls before its horizon, without
    /// popping-and-repushing.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// The deepest the pending-event heap has ever been — a measure of
    /// how much simultaneous future the simulation keeps in flight.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        for us in [50u64, 10, 30, 20, 40] {
            s.schedule(Time::from_micros(us), us);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = s.pop() {
            assert_eq!(t.as_micros(), e);
            out.push(e);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut s = Scheduler::new();
        let t = Time::from_micros(5);
        for i in 0..100 {
            s.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(s.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut s = Scheduler::new();
        s.schedule(Time::from_micros(10), "a");
        assert_eq!(s.pop(), Some((Time::from_micros(10), "a")));
        s.schedule(Time::from_micros(30), "c");
        s.schedule(Time::from_micros(20), "b");
        assert_eq!(s.peek_time(), Some(Time::from_micros(20)));
        assert_eq!(s.pop().unwrap().1, "b");
        assert_eq!(s.pop().unwrap().1, "c");
        assert!(s.is_empty());
    }

    #[test]
    fn len_and_counters() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(s.is_empty());
        let base = Time::ZERO;
        for i in 0..10u64 {
            s.schedule(base + Duration::from_micros(i), ());
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.scheduled_total(), 10);
        s.pop();
        assert_eq!(s.len(), 9);
        assert_eq!(s.scheduled_total(), 10);
    }

    #[test]
    fn depth_high_water_tracks_peak_not_current() {
        let mut s: Scheduler<u64> = Scheduler::new();
        assert_eq!(s.depth_high_water(), 0);
        for i in 0..4 {
            s.schedule(Time::from_micros(i), i);
        }
        s.pop();
        s.pop();
        assert_eq!(s.len(), 2);
        assert_eq!(s.depth_high_water(), 4);
        // Refilling below the old peak leaves the high-water untouched.
        s.schedule(Time::from_micros(9), 9);
        assert_eq!(s.depth_high_water(), 4);
        // Exceeding it moves it.
        s.schedule(Time::from_micros(10), 10);
        s.schedule(Time::from_micros(11), 11);
        assert_eq!(s.depth_high_water(), 5);
    }

    #[test]
    fn event_ids_are_unique_and_monotone() {
        let mut s: Scheduler<()> = Scheduler::new();
        let a = s.schedule(Time::from_micros(1), ());
        let b = s.schedule(Time::from_micros(1), ());
        assert!(b > a);
    }
}
