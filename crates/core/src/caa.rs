//! The Channel Access Adaptation (§3.3, Algorithm 1).
//!
//! Every `samples` BOE estimates, the CAA compares their average `b̄`
//! against the thresholds:
//!
//! * `b̄ > b_max` — the successor is over-utilized. `countup` increments;
//!   when it reaches `log2(cw)`, `cw` doubles (bounded by `max_cw`).
//! * `b̄ < b_min` — the successor is under-utilized. `countdown`
//!   increments; when it reaches `15 − log2(cw)`, `cw` halves (bounded by
//!   `min_cw`).
//! * otherwise — the sweet spot; both counters reset.
//!
//! The counter thresholds are the paper's inter-flow fairness device: a
//! node already at a *high* window reacts quickly to under-utilization and
//! sluggishly to over-utilization, and vice versa, so competing nodes
//! converge instead of oscillating in lockstep.

use crate::config::EzFlowConfig;

/// Outcome of feeding one sample to [`Caa::on_sample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaaDecision {
    /// Not enough samples yet, or thresholds not crossed persistently.
    Hold,
    /// The contention window was doubled to the contained value.
    Increase(u32),
    /// The contention window was halved to the contained value.
    Decrease(u32),
}

/// A completed averaging round with every input Algorithm 1 saw — the
/// provenance record behind a CAA verdict. Captured unconditionally
/// (it is a handful of Copy words) and surfaced through
/// [`Caa::last_round`] so an audit layer can explain *why* the window
/// moved (or held): which threshold was armed, how charged the counters
/// were, and what the average actually was.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CaaRound {
    /// The averaged BOE estimate the round decided on.
    pub avg: f64,
    /// `CWmin` when the round began.
    pub cw_before: u32,
    /// `CWmin` after the round (equal to `cw_before` on a hold).
    pub cw_after: u32,
    /// Over-utilization charge *entering* the round. A fired increase
    /// means this round charged it to `up_threshold` (the counters reset
    /// on a decision, so the post-round value would always read zero).
    pub countup: u32,
    /// Under-utilization charge entering the round.
    pub countdown: u32,
    /// Rounds of sustained over-utilization needed to double:
    /// `log2(cw_before)`.
    pub up_threshold: u32,
    /// Rounds of sustained under-utilization needed to halve:
    /// `15 − log2(cw_before)`.
    pub down_threshold: u32,
}

/// Per-successor CAA state.
#[derive(Clone, Debug)]
pub struct Caa {
    cfg: EzFlowConfig,
    cw: u32,
    sum: f64,
    count: usize,
    countup: u32,
    countdown: u32,
    /// Diagnostics: averaging rounds completed.
    pub rounds: u64,
    /// Diagnostics: completed averages that doubled the window.
    pub increases: u64,
    /// Diagnostics: completed averages that halved the window.
    pub decreases: u64,
    /// Diagnostics: completed averages that left the window unchanged
    /// (counter still charging, comfortable zone, or clamped at a bound).
    pub holds: u64,
    /// Provenance of the most recent completed round (see [`CaaRound`]).
    /// `None` until the first round completes.
    pub last_round: Option<CaaRound>,
}

impl Caa {
    /// Creates a CAA starting at window `initial_cw`.
    pub fn new(cfg: EzFlowConfig, initial_cw: u32) -> Self {
        assert!(initial_cw.is_power_of_two(), "cw must be a power of two");
        Caa {
            cfg,
            cw: initial_cw.clamp(cfg.min_cw, cfg.effective_max_cw()),
            sum: 0.0,
            count: 0,
            countup: 0,
            countdown: 0,
            rounds: 0,
            increases: 0,
            decreases: 0,
            holds: 0,
            last_round: None,
        }
    }

    /// Current `CWmin`.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// `log2(cw)` — the quantity the paper's counter thresholds use.
    fn log_cw(&self) -> u32 {
        self.cw.trailing_zeros()
    }

    /// Feeds one buffer-occupancy sample from the BOE.
    pub fn on_sample(&mut self, b: usize) -> CaaDecision {
        self.sum += b as f64;
        self.count += 1;
        if self.count < self.cfg.samples {
            return CaaDecision::Hold;
        }
        let avg = self.sum / self.count as f64;
        self.sum = 0.0;
        self.count = 0;
        self.rounds += 1;
        self.on_average(avg)
    }

    /// Applies Algorithm 1 to a completed average. Public so the
    /// analytical model can drive the same logic sample-less.
    pub fn on_average(&mut self, avg: f64) -> CaaDecision {
        let cw_before = self.cw;
        let up_threshold = self.log_cw();
        let down_threshold = 15u32.saturating_sub(self.log_cw());
        let countup = self.countup;
        let countdown = self.countdown;
        let decision = self.decide(avg);
        match decision {
            CaaDecision::Increase(_) => self.increases += 1,
            CaaDecision::Decrease(_) => self.decreases += 1,
            CaaDecision::Hold => self.holds += 1,
        }
        self.last_round = Some(CaaRound {
            avg,
            cw_before,
            cw_after: self.cw,
            countup,
            countdown,
            up_threshold,
            down_threshold,
        });
        decision
    }

    fn decide(&mut self, avg: f64) -> CaaDecision {
        if avg > self.cfg.b_max {
            self.countdown = 0;
            self.countup += 1;
            if self.countup >= self.log_cw() {
                self.countup = 0;
                let next = (self.cw * 2).min(self.cfg.effective_max_cw());
                if next != self.cw {
                    self.cw = next;
                    return CaaDecision::Increase(self.cw);
                }
            }
            CaaDecision::Hold
        } else if avg < self.cfg.b_min {
            self.countup = 0;
            self.countdown += 1;
            if self.countdown >= 15u32.saturating_sub(self.log_cw()) {
                self.countdown = 0;
                let next = (self.cw / 2).max(self.cfg.min_cw);
                if next != self.cw {
                    self.cw = next;
                    return CaaDecision::Decrease(self.cw);
                }
            }
            CaaDecision::Hold
        } else {
            self.countup = 0;
            self.countdown = 0;
            CaaDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caa(cw: u32) -> Caa {
        Caa::new(EzFlowConfig::default(), cw)
    }

    /// Feeds a full averaging round of identical samples.
    fn round(c: &mut Caa, b: usize) -> CaaDecision {
        let mut last = CaaDecision::Hold;
        for _ in 0..50 {
            last = c.on_sample(b);
        }
        last
    }

    #[test]
    fn needs_a_full_round_before_deciding() {
        let mut c = caa(32);
        for _ in 0..49 {
            assert_eq!(c.on_sample(100), CaaDecision::Hold);
        }
        assert_eq!(c.rounds, 0);
        c.on_sample(100);
        assert_eq!(c.rounds, 1);
    }

    #[test]
    fn overutilization_doubles_after_log_cw_rounds() {
        // cw = 32: log2 = 5, so 5 consecutive over-threshold averages.
        let mut c = caa(32);
        for i in 1..=4 {
            assert_eq!(round(&mut c, 30), CaaDecision::Hold, "round {i}");
        }
        assert_eq!(round(&mut c, 30), CaaDecision::Increase(64));
        // Higher cw -> slower to increase again: now needs 6 rounds.
        for i in 1..=5 {
            assert_eq!(round(&mut c, 30), CaaDecision::Hold, "round {i}");
        }
        assert_eq!(round(&mut c, 30), CaaDecision::Increase(128));
        assert_eq!(c.increases, 2);
        assert_eq!(c.decreases, 0);
        assert_eq!(c.holds, 9);
        assert_eq!(c.rounds, c.increases + c.decreases + c.holds);
    }

    #[test]
    fn underutilization_halves_after_15_minus_log_cw_rounds() {
        // cw = 1024: log2 = 10, so 5 consecutive empty averages halve it.
        let mut c = caa(1024);
        for i in 1..=4 {
            assert_eq!(round(&mut c, 0), CaaDecision::Hold, "round {i}");
        }
        assert_eq!(round(&mut c, 0), CaaDecision::Decrease(512));
        // Lower cw -> slower to decrease again: needs 6 rounds now.
        for i in 1..=5 {
            assert_eq!(round(&mut c, 0), CaaDecision::Hold, "round {i}");
        }
        assert_eq!(round(&mut c, 0), CaaDecision::Decrease(256));
    }

    #[test]
    fn high_cw_reacts_faster_to_underutilization_than_low_cw() {
        // The paper's fairness property, directly.
        let rounds_to_decrease = |start: u32| {
            let mut c = caa(start);
            let mut n = 0;
            loop {
                n += 1;
                if matches!(round(&mut c, 0), CaaDecision::Decrease(_)) {
                    return n;
                }
                assert!(n < 100);
            }
        };
        assert!(rounds_to_decrease(8192) < rounds_to_decrease(64));
    }

    #[test]
    fn comfortable_zone_resets_counters() {
        let mut c = caa(32);
        round(&mut c, 30);
        round(&mut c, 30); // countup = 2
        round(&mut c, 10); // in (b_min, b_max): reset
        for i in 1..=4 {
            assert_eq!(round(&mut c, 30), CaaDecision::Hold, "round {i}");
        }
        assert_eq!(round(&mut c, 30), CaaDecision::Increase(64));
    }

    #[test]
    fn mixed_signals_reset_the_opposite_counter() {
        let mut c = caa(32);
        round(&mut c, 30); // countup = 1
        round(&mut c, 0); // countdown = 1, countup reset
        for i in 1..=4 {
            assert_eq!(round(&mut c, 30), CaaDecision::Hold, "round {i}");
        }
        assert_eq!(round(&mut c, 30), CaaDecision::Increase(64));
    }

    #[test]
    fn clamps_at_bounds() {
        let mut c = caa(32768);
        for _ in 0..100 {
            assert_eq!(round(&mut c, 50), CaaDecision::Hold, "cannot exceed max");
        }
        assert_eq!(c.cw(), 32768);
        let mut c = caa(16);
        for _ in 0..100 {
            assert_eq!(round(&mut c, 0), CaaDecision::Hold, "cannot go below min");
        }
        assert_eq!(c.cw(), 16);
    }

    #[test]
    fn hardware_cap_limits_increase() {
        let mut c = Caa::new(EzFlowConfig::testbed(), 512);
        // 512 -> 1024 takes 9 rounds (log2(512) = 9).
        let mut grew = false;
        for _ in 0..9 {
            if matches!(round(&mut c, 40), CaaDecision::Increase(1024)) {
                grew = true;
            }
        }
        assert!(grew);
        for _ in 0..50 {
            assert_eq!(round(&mut c, 40), CaaDecision::Hold, "capped at 2^10");
        }
        assert_eq!(c.cw(), 1024);
    }

    #[test]
    fn last_round_records_inputs_and_thresholds() {
        let mut c = caa(32);
        assert_eq!(c.last_round, None, "no round completed yet");
        // First over-threshold round: entered uncharged, window holds.
        round(&mut c, 30);
        let r = c.last_round.expect("round completed");
        assert_eq!(r.avg, 30.0);
        assert_eq!((r.cw_before, r.cw_after), (32, 32));
        assert_eq!((r.countup, r.countdown), (0, 0), "charge entering");
        assert_eq!((r.up_threshold, r.down_threshold), (5, 10));
        // Three more holds, then the doubling round.
        for _ in 0..3 {
            round(&mut c, 30);
        }
        assert_eq!(round(&mut c, 30), CaaDecision::Increase(64));
        let r = c.last_round.expect("round completed");
        assert_eq!((r.cw_before, r.cw_after), (32, 64));
        assert_eq!(r.countup, 4, "entered charged 4/5; this round fired");
        assert_eq!(r.up_threshold, 5, "threshold from the window at entry");
    }

    #[test]
    fn fractional_b_min_requires_almost_all_zero_samples() {
        // b_min = 0.05 with 50 samples: even 3 samples of 1 packet push
        // the average to 0.06 > b_min.
        let mut c = caa(64);
        let mut last = CaaDecision::Hold;
        for _ in 0..20 {
            for i in 0..50 {
                last = c.on_sample(if i < 3 { 1 } else { 0 });
            }
            assert_eq!(last, CaaDecision::Hold);
        }
        assert_eq!(c.cw(), 64);
    }
}
