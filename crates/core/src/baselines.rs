//! Baseline flow controllers the paper compares against (or that compare
//! against the paper).
//!
//! * Plain IEEE 802.11 is [`ezflow_net::FixedController::standard`].
//! * [`static_penalty_factory`] — the static penalty strategy of
//!   \[Aziz09\]: relays keep a small fixed window, the *source* of each
//!   flow is pinned to `relay_cw / q` (the paper quotes the stable
//!   scenario-1 operating point `q = 2^4 / 2^11 = 1/128`). Efficient but
//!   topology-dependent — the very drawback EZ-flow removes.
//! * [`DiffQController`] — an idealized rendition of DiffQ \[Warrier09\]:
//!   hop-by-hop backpressure on the backlog *differential*, delivered by
//!   explicit message passing. Our network layer grants it a free,
//!   lossless report channel (the real protocol piggybacks the backlog in
//!   a modified packet header), so this baseline is strictly *easier* on
//!   DiffQ than reality — a conservative comparison for EZ-flow.

use std::collections::HashMap;

use ezflow_net::controller::{Controller, ControllerEvent, DecisionKind, DecisionRecord};
use ezflow_net::topo::FlowSpec;
use ezflow_net::FixedController;
use ezflow_sim::{Duration, Time};

/// Builds the per-node controller factory for the static penalty strategy
/// of \[Aziz09\]: every relay of any flow is pinned to `relay_cw`; every
/// source is pinned to `relay_cw * q_inv` (`q = 1/q_inv`); uninvolved
/// nodes keep the 802.11 default. `q_inv` must be a power of two (the
/// hardware constraint the paper works under).
pub fn static_penalty_factory(
    flows: &[FlowSpec],
    relay_cw: u32,
    q_inv: u32,
) -> impl Fn(usize) -> Box<dyn Controller> + Send + Sync {
    assert!(relay_cw.is_power_of_two());
    assert!(q_inv.is_power_of_two());
    let mut role: HashMap<usize, u32> = HashMap::new();
    for f in flows {
        let source_cw = relay_cw.saturating_mul(q_inv);
        role.insert(f.path[0], source_cw);
        for &relay in &f.path[1..f.path.len() - 1] {
            // A node that is a source of one flow and a relay of another
            // keeps the (larger) source window — the penalty targets
            // sources.
            role.entry(relay).or_insert(relay_cw);
        }
    }
    move |node: usize| -> Box<dyn Controller> {
        match role.get(&node) {
            Some(&cw) => Box::new(FixedController::pinned(cw)),
            None => Box::new(FixedController::standard()),
        }
    }
}

/// Idealized DiffQ: maps the backlog differential toward each successor to
/// one of four contention windows (the real protocol schedules packets
/// into the four 802.11e hardware queues, each with its own `CWmin`).
/// A large positive differential (we are backed up, the successor is not)
/// means "transmit aggressively"; a non-positive differential means the
/// successor is at least as loaded, so back off.
pub struct DiffQController {
    period: Duration,
    /// Latest differential per successor.
    diffs: HashMap<usize, i64>,
    /// The four priority windows, most aggressive first.
    windows: [u32; 4],
    /// Differential thresholds for windows[0..3]; below the last threshold
    /// the controller uses `windows[3]`.
    thresholds: [i64; 3],
    /// The effective window last reported to the MAC, so a class change
    /// can be recorded as an audit decision.
    last_cw: u32,
    /// Pending audit record (see [`Controller::take_decision`]).
    last_decision: Option<DecisionRecord>,
}

impl Default for DiffQController {
    fn default() -> Self {
        DiffQController {
            period: Duration::from_millis(100),
            diffs: HashMap::new(),
            // 802.11e-ish AC windows: VO/VI/BE/BK.
            windows: [16, 32, 64, 256],
            thresholds: [25, 10, 1],
            last_cw: 32,
            last_decision: None,
        }
    }
}

impl DiffQController {
    /// Creates a DiffQ controller with the default class mapping and a
    /// 100 ms report period.
    pub fn new() -> Self {
        Self::default()
    }

    fn window_for(&self, diff: i64) -> u32 {
        if diff >= self.thresholds[0] {
            self.windows[0]
        } else if diff >= self.thresholds[1] {
            self.windows[1]
        } else if diff >= self.thresholds[2] {
            self.windows[2]
        } else {
            self.windows[3]
        }
    }

    /// The window implied by the most congested successor.
    fn effective_cw(&self) -> Option<u32> {
        self.diffs.values().map(|&d| self.window_for(d)).max()
    }
}

impl Controller for DiffQController {
    fn on_event(&mut self, _now: Time, event: ControllerEvent<'_>) -> Option<u32> {
        match event {
            ControllerEvent::NeighborBacklog {
                neighbor,
                backlog,
                own_backlog,
            } => {
                let diff = own_backlog as i64 - backlog as i64;
                self.diffs.insert(neighbor, diff);
                let cw = self.effective_cw();
                if let Some(cw) = cw {
                    if cw != self.last_cw {
                        // A class change is DiffQ's "decision": the
                        // backlog differential is the driving quantity.
                        self.last_decision = Some(DecisionRecord {
                            kind: DecisionKind::Assign,
                            successor: Some(neighbor),
                            avg: diff as f64,
                            countup: 0,
                            countdown: 0,
                            up_threshold: 0,
                            down_threshold: 0,
                            cw_before: self.last_cw,
                            cw_after: cw,
                        });
                        self.last_cw = cw;
                    }
                }
                cw
            }
            // DiffQ does not use passive overhearing.
            _ => None,
        }
    }

    fn backlog_period(&self) -> Option<Duration> {
        Some(self.period)
    }

    fn name(&self) -> &'static str {
        "diffq"
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.last_decision.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(path: Vec<usize>) -> FlowSpec {
        FlowSpec::saturating(0, path, Time::ZERO, Time::from_secs(1))
    }

    #[test]
    fn static_penalty_assigns_roles() {
        let flows = vec![flow(vec![0, 1, 2, 3, 4])];
        let make = static_penalty_factory(&flows, 16, 128);
        assert_eq!(make(0).initial_cw_min(), Some(2048), "source: 16 * 128");
        assert_eq!(make(1).initial_cw_min(), Some(16));
        assert_eq!(make(3).initial_cw_min(), Some(16));
        assert_eq!(make(4).initial_cw_min(), None, "destination untouched");
        assert_eq!(make(9).initial_cw_min(), None, "bystander untouched");
    }

    #[test]
    fn static_penalty_source_role_wins() {
        // Node 2 relays flow a but sources flow b.
        let mut a = flow(vec![0, 1, 2, 3]);
        a.id = 0;
        let mut b = flow(vec![2, 3, 4]);
        b.id = 1;
        let make = static_penalty_factory(&[b, a], 16, 64);
        assert_eq!(make(2).initial_cw_min(), Some(1024));
    }

    #[test]
    fn diffq_maps_differential_to_classes() {
        let mut c = DiffQController::new();
        let ev = |own, succ| ControllerEvent::NeighborBacklog {
            neighbor: 5,
            backlog: succ,
            own_backlog: own,
        };
        assert_eq!(c.on_event(Time::ZERO, ev(50, 0)), Some(16));
        assert_eq!(c.on_event(Time::ZERO, ev(15, 0)), Some(32));
        assert_eq!(c.on_event(Time::ZERO, ev(5, 0)), Some(64));
        assert_eq!(c.on_event(Time::ZERO, ev(5, 20)), Some(256));
        assert!(c.backlog_period().is_some(), "diffq needs message passing");
    }

    #[test]
    fn diffq_records_class_changes_as_assign_decisions() {
        let mut c = DiffQController::new();
        let ev = |own, succ| ControllerEvent::NeighborBacklog {
            neighbor: 5,
            backlog: succ,
            own_backlog: own,
        };
        assert_eq!(c.take_decision(), None);
        assert_eq!(c.on_event(Time::ZERO, ev(50, 0)), Some(16));
        let d = c.take_decision().expect("class change recorded");
        assert_eq!(d.kind, DecisionKind::Assign);
        assert_eq!(d.successor, Some(5));
        assert_eq!((d.cw_before, d.cw_after), (32, 16));
        assert_eq!(d.avg, 50.0, "the backlog differential");
        assert_eq!(c.take_decision(), None, "take clears the slot");
        // Same class again: no new decision.
        assert_eq!(c.on_event(Time::ZERO, ev(60, 0)), Some(16));
        assert_eq!(c.take_decision(), None);
    }

    #[test]
    fn diffq_multi_successor_uses_most_congested() {
        let mut c = DiffQController::new();
        c.on_event(
            Time::ZERO,
            ControllerEvent::NeighborBacklog {
                neighbor: 1,
                backlog: 0,
                own_backlog: 50,
            },
        );
        // Successor 2 is congested: its class (256) dominates.
        assert_eq!(
            c.on_event(
                Time::ZERO,
                ControllerEvent::NeighborBacklog {
                    neighbor: 2,
                    backlog: 50,
                    own_backlog: 50,
                },
            ),
            Some(256)
        );
    }
}
