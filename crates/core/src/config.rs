//! EZ-flow parameters.

/// All tunables of the mechanism, defaulting to the values used in the
/// paper's simulations (§5.1: `b_min = 0.05`, `b_max = 20`,
/// `maxcw = 2^15`) and testbed (`mincw = 2^4`, 50-sample average,
/// 1000-packet BOE history).
#[derive(Clone, Copy, Debug)]
pub struct EzFlowConfig {
    /// Lower buffer threshold. Deliberately below one packet: the mean
    /// must be *essentially always zero* before a node dares to become
    /// more aggressive (§3.3: "the most important parameter to set is
    /// b_min, which has to be very small").
    pub b_min: f64,
    /// Upper buffer threshold.
    pub b_max: f64,
    /// Number of BOE samples averaged per CAA decision.
    pub samples: usize,
    /// Smallest allowed `CWmin` (2^4).
    pub min_cw: u32,
    /// Largest allowed `CWmin` (2^15).
    pub max_cw: u32,
    /// Optional hardware clamp below `max_cw` — the MadWifi driver of the
    /// testbed silently ignores `CWmin` above 2^10 (§4.1); set this to
    /// `Some(1024)` to reproduce the testbed's partially-stabilized Fig. 4.
    pub hw_cap: Option<u32>,
    /// BOE history length, packets.
    pub history: usize,
}

impl Default for EzFlowConfig {
    fn default() -> Self {
        EzFlowConfig {
            b_min: 0.05,
            b_max: 20.0,
            samples: 50,
            min_cw: 16,
            max_cw: 32768,
            hw_cap: None,
            history: 1000,
        }
    }
}

impl EzFlowConfig {
    /// The paper's testbed configuration: MadWifi caps `CWmin` at 2^10.
    pub fn testbed() -> Self {
        EzFlowConfig {
            hw_cap: Some(1024),
            ..EzFlowConfig::default()
        }
    }

    /// Effective upper bound for `CWmin` (hardware cap included).
    pub fn effective_max_cw(&self) -> u32 {
        match self.hw_cap {
            Some(cap) => self.max_cw.min(cap),
            None => self.max_cw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = EzFlowConfig::default();
        assert_eq!(c.b_min, 0.05);
        assert_eq!(c.b_max, 20.0);
        assert_eq!(c.samples, 50);
        assert_eq!(c.min_cw, 16);
        assert_eq!(c.max_cw, 32768);
        assert_eq!(c.history, 1000);
        assert_eq!(c.effective_max_cw(), 32768);
    }

    #[test]
    fn testbed_cap() {
        let c = EzFlowConfig::testbed();
        assert_eq!(c.effective_max_cw(), 1024);
    }
}
