//! # ezflow-core — the EZ-Flow mechanism
//!
//! The paper's contribution, §3: a distributed, message-passing-free
//! hop-by-hop flow controller built from two modules running beside an
//! unmodified 802.11 MAC at every node:
//!
//! * [`Boe`] — the **Buffer Occupancy Estimator**. Remembers the 16-bit
//!   checksums of the last 1000 packets sent to the successor; every time
//!   the node overhears the successor forwarding a packet, the FIFO
//!   discipline makes "number of checksums stored after the overheard one"
//!   exactly the successor's buffer occupancy. No messages, ever.
//! * [`Caa`] — the **Channel Access Adaptation**. Averages 50 BOE samples,
//!   compares against `b_min = 0.05` / `b_max = 20`, and with the
//!   hysteresis counters of Algorithm 1 doubles or halves the MAC's
//!   `CWmin` between `2^4` and `2^15`.
//!
//! [`EzFlowController`] glues them into the [`ezflow_net::Controller`]
//! interface; [`baselines`] provides the comparison algorithms (the
//! topology-dependent static penalty of \[Aziz09\], and an idealized DiffQ
//! that *does* use message passing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod boe;
pub mod caa;
pub mod config;
pub mod controller;

pub use baselines::{static_penalty_factory, DiffQController};
pub use boe::Boe;
pub use caa::{Caa, CaaDecision, CaaRound};
pub use config::EzFlowConfig;
pub use controller::EzFlowController;
