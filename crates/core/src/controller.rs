//! EZ-flow as a [`Controller`]: the glue between BOE, CAA and the MAC.

use std::collections::HashMap;

use ezflow_net::controller::{
    Controller, ControllerCounters, ControllerEvent, DecisionKind, DecisionRecord,
};
use ezflow_sim::Time;

use crate::boe::Boe;
use crate::caa::{Caa, CaaDecision, CaaRound};
use crate::config::EzFlowConfig;

/// The EZ-flow program running at one node.
///
/// One (BOE, CAA) pair is kept per successor, created lazily the first
/// time a frame is acknowledged by that successor — the controller
/// discovers its successors from traffic, it is never configured with
/// topology knowledge.
///
/// When several successors exist, two mechanisms cooperate, mirroring the
/// refinement the paper's §7 sketches on top of the four 802.11e hardware
/// queues: [`Controller::queue_window`] exposes one window per successor,
/// which the network layer programs for each frame right before it enters
/// the MAC (so the head-of-line frame always contends with its own
/// branch's window); and between frames the node-global `CWmin` falls back
/// to the **maximum** over the per-successor windows — the most congested
/// branch governs, erring on the side of stability. On the paper's line
/// topologies (one successor per node) both mechanisms coincide.
///
/// One special case deserves a note: when the successor *is* the flow's
/// final destination, the successor never forwards, so there is nothing to
/// overhear. But the node also knows — from the ACK alone, still without
/// any message passing — that a delivered packet leaves the buffer
/// immediately (the sink consumes it). The controller therefore feeds the
/// CAA a zero sample per acknowledged packet for sink successors, which is
/// exactly what the testbed's last relay observes.
pub struct EzFlowController {
    cfg: EzFlowConfig,
    start_cw: u32,
    per_succ: HashMap<usize, (Boe, Caa)>,
    /// Provenance of the last window-changing CAA round, held until the
    /// engine takes it ([`Controller::take_decision`]). A few Copy words,
    /// stored unconditionally — behaviour never depends on it.
    last_decision: Option<DecisionRecord>,
    /// `(successor, b̂)` of the last overheard-forward estimate, held
    /// until the engine takes it ([`Controller::take_estimate`]).
    last_estimate: Option<(usize, u32)>,
}

impl EzFlowController {
    /// Creates the controller; `start_cw` must equal the MAC's initial
    /// `CWmin` (the 802.11 default, 32) so the CAA's bookkeeping starts
    /// aligned with the hardware.
    pub fn new(cfg: EzFlowConfig, start_cw: u32) -> Self {
        EzFlowController {
            cfg,
            start_cw,
            per_succ: HashMap::new(),
            last_decision: None,
            last_estimate: None,
        }
    }

    /// Defaults: paper parameters, 802.11 default window.
    pub fn with_defaults() -> Self {
        Self::new(EzFlowConfig::default(), 32)
    }

    fn entry(&mut self, successor: usize) -> &mut (Boe, Caa) {
        let cfg = self.cfg;
        let start = self.start_cw;
        self.per_succ
            .entry(successor)
            .or_insert_with(|| (Boe::new(cfg.history), Caa::new(cfg, start)))
    }

    /// The effective window: max over successors (see type docs).
    fn effective_cw(&self) -> Option<u32> {
        self.per_succ.values().map(|(_, caa)| caa.cw()).max()
    }

    /// Current per-successor windows (diagnostics / experiments).
    pub fn windows(&self) -> Vec<(usize, u32)> {
        let mut v: Vec<(usize, u32)> = self
            .per_succ
            .iter()
            .map(|(&s, (_, caa))| (s, caa.cw()))
            .collect();
        v.sort_unstable();
        v
    }

    /// Total BOE samples produced at this node (diagnostics).
    pub fn boe_samples(&self) -> u64 {
        self.per_succ
            .values()
            .map(|(boe, _)| boe.samples_produced)
            .sum()
    }

    fn after_decision(&self, decision: CaaDecision) -> Option<u32> {
        match decision {
            CaaDecision::Hold => None,
            CaaDecision::Increase(_) | CaaDecision::Decrease(_) => self.effective_cw(),
        }
    }

    /// Promotes a window-changing CAA round into the pending audit record.
    fn note_round(&mut self, successor: usize, round: Option<CaaRound>, decision: CaaDecision) {
        let kind = match decision {
            CaaDecision::Hold => return,
            CaaDecision::Increase(_) => DecisionKind::Increase,
            CaaDecision::Decrease(_) => DecisionKind::Decrease,
        };
        if let Some(r) = round {
            self.last_decision = Some(DecisionRecord {
                kind,
                successor: Some(successor),
                avg: r.avg,
                countup: r.countup,
                countdown: r.countdown,
                up_threshold: r.up_threshold,
                down_threshold: r.down_threshold,
                cw_before: r.cw_before,
                cw_after: r.cw_after,
            });
        }
    }
}

impl Controller for EzFlowController {
    fn on_event(&mut self, _now: Time, event: ControllerEvent<'_>) -> Option<u32> {
        match event {
            ControllerEvent::SentToSuccessor { successor, frame } => {
                let sink = successor == frame.final_dst;
                let ck = frame.checksum;
                let (boe, caa) = self.entry(successor);
                if sink {
                    // The ACK certifies delivery; the sink's buffer is
                    // empty by definition.
                    let d = caa.on_sample(0);
                    let round = caa.last_round;
                    self.note_round(successor, round, d);
                    self.after_decision(d)
                } else {
                    boe.on_sent(ck);
                    None
                }
            }
            ControllerEvent::Overheard { frame } => {
                // Only forwards *by one of our successors* carry
                // information; everything else on the air is ignored.
                let ck = frame.checksum;
                let src = frame.src;
                if !self.per_succ.contains_key(&src) {
                    return None;
                }
                let (boe, caa) = self.entry(src);
                match boe.on_overheard(ck) {
                    Some(b) => {
                        let d = caa.on_sample(b);
                        let round = caa.last_round;
                        self.last_estimate = Some((src, b as u32));
                        self.note_round(src, round, d);
                        self.after_decision(d)
                    }
                    None => {
                        boe.on_miss();
                        None
                    }
                }
            }
            // EZ-flow never requests nor uses message passing.
            ControllerEvent::NeighborBacklog { .. } => None,
        }
    }

    fn name(&self) -> &'static str {
        "ez-flow"
    }

    /// §7 extension: expose the per-successor window so nodes with
    /// several successors adapt each queue independently (802.11e-style)
    /// instead of max-combining into a single `CWmin`.
    fn queue_window(&self, successor: usize) -> Option<u32> {
        self.per_succ.get(&successor).map(|(_, caa)| caa.cw())
    }

    /// Sums the BOE/CAA diagnostics across all successors.
    fn counters(&self) -> ControllerCounters {
        let mut c = ControllerCounters::default();
        for (boe, caa) in self.per_succ.values() {
            c.boe_hits += boe.samples_produced;
            c.boe_misses += boe.misses;
            c.boe_ambiguous += boe.ambiguous;
            c.caa_increases += caa.increases;
            c.caa_decreases += caa.decreases;
            c.caa_holds += caa.holds;
        }
        c
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.last_decision.take()
    }

    fn take_estimate(&mut self) -> Option<(usize, u32)> {
        self.last_estimate.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_phy::Frame;

    fn frame(seq: u64, src: usize, dst: usize, final_dst: usize) -> Frame {
        let mut f = Frame::data(seq, 0, 0, final_dst, 1000, Time::ZERO);
        f.src = src;
        f.dst = dst;
        f
    }

    /// Drives one node's controller as if it were node 1 of a chain
    /// 0->1->2->3->4, sending to successor 2 and overhearing 2's forwards.
    #[test]
    fn boe_caa_loop_raises_cw_under_congestion() {
        let mut c = EzFlowController::with_defaults();
        let mut seq = 0u64;
        let mut cw = 32;
        // Successor 2 always holds 30 packets: we send packet s, and by
        // the time we overhear it, 30 more of ours sit behind it.
        let mut outstanding: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        for _ in 0..30 {
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &frame(seq, 1, 2, 4),
                },
            );
            outstanding.push_back(seq);
            seq += 1;
        }
        for _ in 0..2000 {
            // Send one, overhear the oldest outstanding.
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &frame(seq, 1, 2, 4),
                },
            );
            outstanding.push_back(seq);
            seq += 1;
            let fwd = outstanding.pop_front().unwrap();
            if let Some(new_cw) = c.on_event(
                Time::ZERO,
                ControllerEvent::Overheard {
                    frame: &frame(fwd, 2, 3, 4),
                },
            ) {
                assert!(new_cw > cw, "congestion must only raise cw");
                cw = new_cw;
            }
        }
        assert!(cw >= 128, "sustained b=30 > b_max must raise cw, got {cw}");
        assert!(c.boe_samples() > 1000);
        let counters = c.counters();
        assert_eq!(counters.boe_hits, c.boe_samples());
        assert!(counters.caa_increases >= 2, "cw rose at least 32->128");
        assert_eq!(counters.caa_decreases, 0);
        assert!(counters.caa_holds > 0);
    }

    #[test]
    fn empty_successor_drives_cw_to_minimum() {
        let mut c = EzFlowController::with_defaults();
        let mut cw = 32;
        // Successor forwards immediately: every overheard packet is the
        // one we just sent -> b = 0.
        for seq in 0..20_000u64 {
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &frame(seq, 1, 2, 4),
                },
            );
            if let Some(new_cw) = c.on_event(
                Time::ZERO,
                ControllerEvent::Overheard {
                    frame: &frame(seq, 2, 3, 4),
                },
            ) {
                cw = new_cw;
            }
        }
        assert_eq!(cw, 16, "idle successor must drive cw to mincw");
    }

    #[test]
    fn sink_successor_uses_ack_as_zero_sample() {
        let mut c = EzFlowController::with_defaults();
        let mut cw = 32;
        for seq in 0..20_000u64 {
            // Successor 4 IS the final destination.
            if let Some(new_cw) = c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 4,
                    frame: &frame(seq, 3, 4, 4),
                },
            ) {
                cw = new_cw;
            }
        }
        assert_eq!(cw, 16);
    }

    #[test]
    fn audit_hooks_expose_estimates_and_decisions() {
        let mut c = EzFlowController::with_defaults();
        assert_eq!(c.take_estimate(), None);
        assert_eq!(c.take_decision(), None);
        // Immediate forward: estimate b = 0 for successor 2.
        c.on_event(
            Time::ZERO,
            ControllerEvent::SentToSuccessor {
                successor: 2,
                frame: &frame(0, 1, 2, 4),
            },
        );
        c.on_event(
            Time::ZERO,
            ControllerEvent::Overheard {
                frame: &frame(0, 2, 3, 4),
            },
        );
        assert_eq!(c.take_estimate(), Some((2, 0)));
        assert_eq!(c.take_estimate(), None, "take clears the slot");
        // Keep the successor idle until the first halving; the decision
        // record must carry Algorithm 1's state for that round.
        let mut cw_cmd = None;
        for seq in 1..20_000u64 {
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &frame(seq, 1, 2, 4),
                },
            );
            cw_cmd = c.on_event(
                Time::ZERO,
                ControllerEvent::Overheard {
                    frame: &frame(seq, 2, 3, 4),
                },
            );
            if cw_cmd.is_some() {
                break;
            }
            assert_eq!(c.take_decision(), None, "holds record no decision");
            c.take_estimate();
        }
        assert_eq!(cw_cmd, Some(16));
        let d = c.take_decision().expect("halving recorded");
        assert_eq!(d.kind, DecisionKind::Decrease);
        assert_eq!(d.successor, Some(2));
        assert_eq!((d.cw_before, d.cw_after), (32, 16));
        assert_eq!(d.avg, 0.0);
        assert_eq!(d.down_threshold, 10, "15 - log2(32)");
        assert_eq!(c.take_decision(), None, "take clears the slot");
    }

    #[test]
    fn frames_from_strangers_are_ignored() {
        let mut c = EzFlowController::with_defaults();
        c.on_event(
            Time::ZERO,
            ControllerEvent::SentToSuccessor {
                successor: 2,
                frame: &frame(1, 1, 2, 4),
            },
        );
        // Node 7 is not our successor; nothing should happen.
        assert_eq!(
            c.on_event(
                Time::ZERO,
                ControllerEvent::Overheard {
                    frame: &frame(1, 7, 8, 9),
                },
            ),
            None
        );
        assert_eq!(c.boe_samples(), 0);
        assert_eq!(c.windows(), vec![(2, 32)]);
    }

    #[test]
    fn multi_successor_takes_the_max_window() {
        let mut c = EzFlowController::with_defaults();
        // Successor 2 congested (sink-style shortcut: use successor 9 as a
        // sink to drive its window down, successor 2 up).
        let mut outstanding = std::collections::VecDeque::new();
        let mut seq = 0u64;
        for _ in 0..30 {
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &frame(seq, 1, 2, 4),
                },
            );
            outstanding.push_back(seq);
            seq += 1;
        }
        let mut last = None;
        for _ in 0..5000 {
            c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &frame(seq, 1, 2, 4),
                },
            );
            outstanding.push_back(seq);
            seq += 1;
            let fwd = outstanding.pop_front().unwrap();
            if let Some(cw) = c.on_event(
                Time::ZERO,
                ControllerEvent::Overheard {
                    frame: &frame(fwd, 2, 3, 4),
                },
            ) {
                last = Some(cw);
            }
            // Sink successor 9, empty.
            if let Some(cw) = c.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 9,
                    frame: &frame(seq, 1, 9, 9),
                },
            ) {
                last = Some(cw);
            }
            seq += 1;
        }
        let windows = c.windows();
        let w2 = windows.iter().find(|(s, _)| *s == 2).unwrap().1;
        let w9 = windows.iter().find(|(s, _)| *s == 9).unwrap().1;
        assert!(w2 > w9, "congested branch must have the larger window");
        assert_eq!(last, Some(w2.max(w9)), "MAC gets the max");
    }
}
