//! The Buffer Occupancy Estimator (§3.2).
//!
//! The node keeps the identifiers (16-bit transport checksums) of the last
//! `history` packets it successfully handed to its successor, in send
//! order. When it overhears the successor forwarding some packet `p`, FIFO
//! queueing guarantees that exactly the packets recorded *after* `p` are
//! still sitting in the successor's buffer — so the position of `p`'s
//! checksum in the ring yields the successor's instantaneous buffer
//! occupancy, with zero message exchange.
//!
//! Two practical details the paper calls out, both reproduced here:
//!
//! * **Checksum aliasing.** A 16-bit identifier over a 1000-entry window
//!   occasionally collides. We resolve a lookup to the *most recent*
//!   matching entry, which makes an aliased estimate err low rather than
//!   high — a conservative error for a congestion signal (it can delay,
//!   never amplify, a throttle-down).
//! * **Missed overhearings are harmless.** The estimator produces a sample
//!   only when it actually overhears a forward; gaps simply mean fewer
//!   samples (the CAA just waits longer for its 50), never wrong ones.
//!
//! One refinement over the paper's pseudo-code: after a successful match,
//! every entry up to and including the match is pruned. FIFO means the
//! successor has already forwarded all of them, so they can never match a
//! *future* overhearing — keeping them would only create stale aliases.

use std::collections::VecDeque;

/// Per-successor passive buffer estimator.
#[derive(Clone, Debug)]
pub struct Boe {
    history: usize,
    /// Checksums of packets handed to the successor, oldest first.
    sent: VecDeque<u16>,
    /// Occurrence count of every 16-bit checksum currently in `sent`,
    /// indexed by checksum. Boxed (128 KiB) so a `Boe` itself stays a few
    /// words — moving one around is cheap, and a mesh with thousands of
    /// estimators keeps them out of every cache line that touches the
    /// struct. Makes the common *miss* (`counts[ck] == 0`) and the
    /// unambiguous/ambiguous distinction (`counts[ck] >= 2`) O(1); the
    /// ring is scanned only on an actual hit, and only back to the most
    /// recent match.
    counts: Box<[u16]>,
    /// Diagnostics: samples produced.
    pub samples_produced: u64,
    /// Diagnostics: overheard frames whose checksum matched nothing
    /// (either aliasing already pruned it, or we never saw the send).
    pub misses: u64,
    /// Diagnostics: lookups whose checksum matched more than one recorded
    /// send (aliasing); the most recent match was used.
    pub ambiguous: u64,
}

impl Boe {
    /// Creates an estimator remembering the last `history` sends.
    ///
    /// `history` is capped at `u16::MAX` so the per-checksum occurrence
    /// counts cannot overflow even if every recorded send aliases.
    pub fn new(history: usize) -> Self {
        assert!(history > 0);
        assert!(history <= u16::MAX as usize);
        Boe {
            history,
            sent: VecDeque::with_capacity(history.min(4096)),
            counts: vec![0u16; 1 << 16].into_boxed_slice(),
            samples_produced: 0,
            misses: 0,
            ambiguous: 0,
        }
    }

    /// Records that a packet with transport checksum `ck` was delivered to
    /// the successor (it is now at the tail of the successor's FIFO).
    pub fn on_sent(&mut self, ck: u16) {
        if self.sent.len() == self.history {
            let evicted = self.sent.pop_front().expect("non-empty at capacity");
            self.counts[evicted as usize] -= 1;
        }
        self.sent.push_back(ck);
        self.counts[ck as usize] += 1;
    }

    /// Processes an overheard forward by the successor; returns the
    /// estimated successor buffer occupancy, in packets, if the checksum
    /// matches a recorded send.
    ///
    /// The common miss costs one table read; a hit scans the ring only
    /// back to the most recent match (the occurrence count already says
    /// whether an older alias exists).
    pub fn on_overheard(&mut self, ck: u16) -> Option<usize> {
        let occurrences = self.counts[ck as usize];
        if occurrences == 0 {
            return None;
        }
        if occurrences >= 2 {
            self.ambiguous += 1;
        }
        let idx = self
            .sent
            .iter()
            .rposition(|&c| c == ck)
            .expect("count says present");
        // Packets recorded after `p` are still queued at the successor.
        let b = self.sent.len() - 1 - idx;
        // Everything up to and including `p` has left the successor.
        for evicted in self.sent.drain(..=idx) {
            self.counts[evicted as usize] -= 1;
        }
        self.samples_produced += 1;
        Some(b)
    }

    /// Number of sends currently remembered.
    pub fn len(&self) -> usize {
        self.sent.len()
    }

    /// True iff no sends are remembered.
    pub fn is_empty(&self) -> bool {
        self.sent.is_empty()
    }

    /// Records an overhearing that produced no estimate (diagnostics).
    pub fn on_miss(&mut self) {
        self.misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_occupancy_for_fifo_successor() {
        let mut boe = Boe::new(1000);
        // We send packets 1..=5 (checksums used directly for clarity).
        for ck in 1..=5u16 {
            boe.on_sent(ck);
        }
        // Successor forwards packet 1: packets 2..5 still buffered -> 4.
        assert_eq!(boe.on_overheard(1), Some(4));
        // Then packet 2: 3..5 buffered -> 3.
        assert_eq!(boe.on_overheard(2), Some(3));
        // We send 2 more; successor forwards 3: 4,5,6,7 buffered -> 4.
        boe.on_sent(6);
        boe.on_sent(7);
        assert_eq!(boe.on_overheard(3), Some(4));
    }

    #[test]
    fn empty_buffer_reads_zero() {
        let mut boe = Boe::new(100);
        boe.on_sent(9);
        assert_eq!(boe.on_overheard(9), Some(0));
        assert!(boe.is_empty());
    }

    #[test]
    fn unknown_checksum_yields_no_sample() {
        let mut boe = Boe::new(100);
        boe.on_sent(1);
        assert_eq!(boe.on_overheard(42), None);
        assert_eq!(boe.len(), 1, "a miss must not disturb the history");
    }

    #[test]
    fn match_prunes_older_entries() {
        let mut boe = Boe::new(100);
        for ck in 1..=10u16 {
            boe.on_sent(ck);
        }
        assert_eq!(boe.on_overheard(7), Some(3));
        assert_eq!(boe.len(), 3);
        // Packets 1..=7 are gone: overhearing 3 again can't match.
        assert_eq!(boe.on_overheard(3), None);
    }

    #[test]
    fn aliased_checksum_resolves_to_most_recent() {
        let mut boe = Boe::new(100);
        boe.on_sent(5);
        boe.on_sent(8);
        boe.on_sent(5); // alias of the first
        boe.on_sent(9);
        // Most recent '5' is at index 2: one packet (9) after it.
        assert_eq!(boe.on_overheard(5), Some(1));
        assert_eq!(boe.ambiguous, 1, "the older alias was detected");
        // Unambiguous lookups leave the counter alone.
        assert_eq!(boe.on_overheard(9), Some(0));
        assert_eq!(boe.ambiguous, 1);
    }

    #[test]
    fn history_is_bounded() {
        let mut boe = Boe::new(10);
        for ck in 0..50u16 {
            boe.on_sent(ck);
        }
        assert_eq!(boe.len(), 10);
        // Oldest surviving entry is 40.
        assert_eq!(boe.on_overheard(39), None);
        assert_eq!(boe.on_overheard(40), Some(9));
    }

    /// The pre-filter estimator, kept verbatim as a test oracle: one
    /// reverse scan per overheard frame, no occurrence table. The filtered
    /// path must produce identical estimates *and* identical diagnostics.
    struct RefBoe {
        history: usize,
        sent: VecDeque<u16>,
        samples_produced: u64,
        ambiguous: u64,
    }

    impl RefBoe {
        fn new(history: usize) -> Self {
            RefBoe {
                history,
                sent: VecDeque::new(),
                samples_produced: 0,
                ambiguous: 0,
            }
        }

        fn on_sent(&mut self, ck: u16) {
            if self.sent.len() == self.history {
                self.sent.pop_front();
            }
            self.sent.push_back(ck);
        }

        fn on_overheard(&mut self, ck: u16) -> Option<usize> {
            let mut idx = None;
            for (i, &c) in self.sent.iter().enumerate().rev() {
                if c == ck {
                    if idx.is_some() {
                        self.ambiguous += 1;
                        break;
                    }
                    idx = Some(i);
                }
            }
            let idx = idx?;
            let b = self.sent.len() - 1 - idx;
            self.sent.drain(..=idx);
            self.samples_produced += 1;
            Some(b)
        }
    }

    #[test]
    fn count_filter_matches_reference_scan_exactly() {
        // A deliberately alias-heavy workload: checksums folded into a
        // tiny space (0..=7) over a small history, interleaving sends,
        // hits, and misses. Every estimate and every counter must agree
        // with the unfiltered reference at every step.
        let mut fast = Boe::new(12);
        let mut slow = RefBoe::new(12);
        let mut x: u32 = 0x2545_f491;
        // xorshift: deterministic, dependency-free pseudo-randomness.
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x
        };
        for _ in 0..4000 {
            let r = step();
            let ck = (r & 7) as u16;
            if r & 0x18 == 0 {
                // 1-in-4: overhear (often a miss or an alias).
                assert_eq!(fast.on_overheard(ck), slow.on_overheard(ck));
            } else {
                fast.on_sent(ck);
                slow.on_sent(ck);
            }
            assert_eq!(fast.len(), slow.sent.len());
            assert_eq!(fast.samples_produced, slow.samples_produced);
            assert_eq!(fast.ambiguous, slow.ambiguous);
        }
        assert!(fast.ambiguous > 0, "the workload must exercise aliasing");
        assert!(fast.samples_produced > 0, "and produce samples");
    }

    #[test]
    fn count_table_tracks_ring_across_eviction_and_prune() {
        let mut boe = Boe::new(4);
        for ck in [1u16, 2, 1, 3] {
            boe.on_sent(ck);
        }
        // Ring full: sending 4 evicts the oldest '1'; the remaining '1'
        // must still be findable (count went 2 -> 1, not to 0).
        boe.on_sent(4);
        assert_eq!(boe.on_overheard(1), Some(2), "ring is [2,1,3,4]");
        // The prune dropped 2 and 1; both must now be O(1) misses.
        assert_eq!(boe.on_overheard(2), None);
        assert_eq!(boe.on_overheard(1), None);
        assert_eq!(boe.on_overheard(3), Some(1));
    }

    #[test]
    fn cloned_estimator_diverges_independently() {
        // `Boe` is cloned when controllers are duplicated; the boxed count
        // table must deep-copy so the clones do not share state.
        let mut a = Boe::new(8);
        a.on_sent(5);
        let mut b = a.clone();
        assert_eq!(b.on_overheard(5), Some(0));
        assert_eq!(a.on_overheard(5), Some(0), "clone's prune must not leak");
        assert_eq!(b.on_overheard(5), None);
    }

    #[test]
    fn missed_overhearings_do_not_corrupt_estimates() {
        // The paper's robustness property: if the node fails to overhear
        // some forwards, later estimates are still exact.
        let mut boe = Boe::new(1000);
        for ck in 1..=10u16 {
            boe.on_sent(ck);
        }
        // Forwards of 1..=4 all missed; we only hear 5.
        assert_eq!(boe.on_overheard(5), Some(5));
    }
}
