//! The Buffer Occupancy Estimator (§3.2).
//!
//! The node keeps the identifiers (16-bit transport checksums) of the last
//! `history` packets it successfully handed to its successor, in send
//! order. When it overhears the successor forwarding some packet `p`, FIFO
//! queueing guarantees that exactly the packets recorded *after* `p` are
//! still sitting in the successor's buffer — so the position of `p`'s
//! checksum in the ring yields the successor's instantaneous buffer
//! occupancy, with zero message exchange.
//!
//! Two practical details the paper calls out, both reproduced here:
//!
//! * **Checksum aliasing.** A 16-bit identifier over a 1000-entry window
//!   occasionally collides. We resolve a lookup to the *most recent*
//!   matching entry, which makes an aliased estimate err low rather than
//!   high — a conservative error for a congestion signal (it can delay,
//!   never amplify, a throttle-down).
//! * **Missed overhearings are harmless.** The estimator produces a sample
//!   only when it actually overhears a forward; gaps simply mean fewer
//!   samples (the CAA just waits longer for its 50), never wrong ones.
//!
//! One refinement over the paper's pseudo-code: after a successful match,
//! every entry up to and including the match is pruned. FIFO means the
//! successor has already forwarded all of them, so they can never match a
//! *future* overhearing — keeping them would only create stale aliases.

use std::collections::VecDeque;

/// Per-successor passive buffer estimator.
#[derive(Clone, Debug)]
pub struct Boe {
    history: usize,
    /// Checksums of packets handed to the successor, oldest first.
    sent: VecDeque<u16>,
    /// Diagnostics: samples produced.
    pub samples_produced: u64,
    /// Diagnostics: overheard frames whose checksum matched nothing
    /// (either aliasing already pruned it, or we never saw the send).
    pub misses: u64,
    /// Diagnostics: lookups whose checksum matched more than one recorded
    /// send (aliasing); the most recent match was used.
    pub ambiguous: u64,
}

impl Boe {
    /// Creates an estimator remembering the last `history` sends.
    pub fn new(history: usize) -> Self {
        assert!(history > 0);
        Boe {
            history,
            sent: VecDeque::with_capacity(history.min(4096)),
            samples_produced: 0,
            misses: 0,
            ambiguous: 0,
        }
    }

    /// Records that a packet with transport checksum `ck` was delivered to
    /// the successor (it is now at the tail of the successor's FIFO).
    pub fn on_sent(&mut self, ck: u16) {
        if self.sent.len() == self.history {
            self.sent.pop_front();
        }
        self.sent.push_back(ck);
    }

    /// Processes an overheard forward by the successor; returns the
    /// estimated successor buffer occupancy, in packets, if the checksum
    /// matches a recorded send.
    pub fn on_overheard(&mut self, ck: u16) -> Option<usize> {
        // One reverse scan finds the most recent match and, continuing past
        // it, whether an older alias exists.
        let mut idx = None;
        for (i, &c) in self.sent.iter().enumerate().rev() {
            if c == ck {
                if idx.is_some() {
                    self.ambiguous += 1;
                    break;
                }
                idx = Some(i);
            }
        }
        let idx = idx?;
        // Packets recorded after `p` are still queued at the successor.
        let b = self.sent.len() - 1 - idx;
        // Everything up to and including `p` has left the successor.
        self.sent.drain(..=idx);
        self.samples_produced += 1;
        Some(b)
    }

    /// Number of sends currently remembered.
    pub fn len(&self) -> usize {
        self.sent.len()
    }

    /// True iff no sends are remembered.
    pub fn is_empty(&self) -> bool {
        self.sent.is_empty()
    }

    /// Records an overhearing that produced no estimate (diagnostics).
    pub fn on_miss(&mut self) {
        self.misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_occupancy_for_fifo_successor() {
        let mut boe = Boe::new(1000);
        // We send packets 1..=5 (checksums used directly for clarity).
        for ck in 1..=5u16 {
            boe.on_sent(ck);
        }
        // Successor forwards packet 1: packets 2..5 still buffered -> 4.
        assert_eq!(boe.on_overheard(1), Some(4));
        // Then packet 2: 3..5 buffered -> 3.
        assert_eq!(boe.on_overheard(2), Some(3));
        // We send 2 more; successor forwards 3: 4,5,6,7 buffered -> 4.
        boe.on_sent(6);
        boe.on_sent(7);
        assert_eq!(boe.on_overheard(3), Some(4));
    }

    #[test]
    fn empty_buffer_reads_zero() {
        let mut boe = Boe::new(100);
        boe.on_sent(9);
        assert_eq!(boe.on_overheard(9), Some(0));
        assert!(boe.is_empty());
    }

    #[test]
    fn unknown_checksum_yields_no_sample() {
        let mut boe = Boe::new(100);
        boe.on_sent(1);
        assert_eq!(boe.on_overheard(42), None);
        assert_eq!(boe.len(), 1, "a miss must not disturb the history");
    }

    #[test]
    fn match_prunes_older_entries() {
        let mut boe = Boe::new(100);
        for ck in 1..=10u16 {
            boe.on_sent(ck);
        }
        assert_eq!(boe.on_overheard(7), Some(3));
        assert_eq!(boe.len(), 3);
        // Packets 1..=7 are gone: overhearing 3 again can't match.
        assert_eq!(boe.on_overheard(3), None);
    }

    #[test]
    fn aliased_checksum_resolves_to_most_recent() {
        let mut boe = Boe::new(100);
        boe.on_sent(5);
        boe.on_sent(8);
        boe.on_sent(5); // alias of the first
        boe.on_sent(9);
        // Most recent '5' is at index 2: one packet (9) after it.
        assert_eq!(boe.on_overheard(5), Some(1));
        assert_eq!(boe.ambiguous, 1, "the older alias was detected");
        // Unambiguous lookups leave the counter alone.
        assert_eq!(boe.on_overheard(9), Some(0));
        assert_eq!(boe.ambiguous, 1);
    }

    #[test]
    fn history_is_bounded() {
        let mut boe = Boe::new(10);
        for ck in 0..50u16 {
            boe.on_sent(ck);
        }
        assert_eq!(boe.len(), 10);
        // Oldest surviving entry is 40.
        assert_eq!(boe.on_overheard(39), None);
        assert_eq!(boe.on_overheard(40), Some(9));
    }

    #[test]
    fn missed_overhearings_do_not_corrupt_estimates() {
        // The paper's robustness property: if the node fails to overhear
        // some forwards, later estimates are still exact.
        let mut boe = Boe::new(1000);
        for ck in 1..=10u16 {
            boe.on_sent(ck);
        }
        // Forwards of 1..=4 all missed; we only hear 5.
        assert_eq!(boe.on_overheard(5), Some(5));
    }
}
