//! Property-based tests for the EZ-flow mechanism.
//!
//! The central one checks the BOE against a *reference implementation* of
//! the physical truth: a real FIFO queue standing in for the successor.
//! Whatever interleaving of sends, forwards and missed overhearings
//! occurs, an estimate produced by the BOE must equal the reference
//! queue's instantaneous occupancy.

use std::collections::VecDeque;

use ezflow_core::{Boe, Caa, CaaDecision, EzFlowConfig};
use proptest::prelude::*;

/// Script actions against the (node, successor) pair.
#[derive(Clone, Debug)]
enum Action {
    /// The node delivers a packet into the successor's queue.
    Send,
    /// The successor forwards its head packet; we overhear it.
    ForwardHeard,
    /// The successor forwards its head packet; we miss it.
    ForwardMissed,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => Just(Action::Send),
        2 => Just(Action::ForwardHeard),
        1 => Just(Action::ForwardMissed),
    ]
}

proptest! {
    /// BOE estimates equal the reference FIFO's occupancy, under any
    /// schedule, including missed overhearings. (Checksums here are the
    /// real 16-bit hash, so rare aliases are possible; the reference
    /// tracks the paper's "most recent match" resolution by construction
    /// because distinct seqs almost never alias within these tiny runs —
    /// we skip the comparison on the rare alias.)
    #[test]
    fn boe_matches_reference_fifo(actions in prop::collection::vec(action_strategy(), 1..400)) {
        let mut boe = Boe::new(1000);
        let mut fifo: VecDeque<u64> = VecDeque::new(); // successor's queue (seq)
        let mut next_seq = 0u64;
        let mut alias_possible = std::collections::HashSet::new();
        for a in actions {
            match a {
                Action::Send => {
                    let ck = ezflow_phy::frame::checksum16(next_seq);
                    // Track alias risk: same checksum for two live seqs.
                    let clash = !alias_possible.insert(ck);
                    boe.on_sent(ck);
                    fifo.push_back(next_seq);
                    next_seq += 1;
                    if clash {
                        // Aliased histories may legitimately disagree;
                        // abandon this case (rare).
                        return Ok(());
                    }
                }
                Action::ForwardHeard => {
                    if let Some(seq) = fifo.pop_front() {
                        let truth = fifo.len();
                        let est = boe.on_overheard(ezflow_phy::frame::checksum16(seq));
                        prop_assert_eq!(est, Some(truth), "seq {}", seq);
                    }
                }
                Action::ForwardMissed => {
                    // The successor forwards but we hear nothing: the BOE
                    // must silently cope (next heard forward re-syncs).
                    fifo.pop_front();
                }
            }
        }
    }

    /// The CAA's window always stays a power of two inside
    /// [min_cw, effective max], whatever sample sequence it sees.
    #[test]
    fn caa_window_invariants(
        samples in prop::collection::vec(0usize..60, 1..3000),
        hw_cap in prop::option::of(Just(1024u32)),
    ) {
        let cfg = EzFlowConfig { hw_cap, ..EzFlowConfig::default() };
        let mut caa = Caa::new(cfg, 32);
        for s in samples {
            match caa.on_sample(s) {
                CaaDecision::Hold => {}
                CaaDecision::Increase(cw) | CaaDecision::Decrease(cw) => {
                    prop_assert_eq!(cw, caa.cw());
                }
            }
            let cw = caa.cw();
            prop_assert!(cw.is_power_of_two());
            prop_assert!(cw >= cfg.min_cw);
            prop_assert!(cw <= cfg.effective_max_cw());
        }
    }

    /// Monotone response: a window change can only be an Increase when the
    /// completed average is above b_max, and only a Decrease when below
    /// b_min.
    #[test]
    fn caa_changes_have_the_right_sign(samples in prop::collection::vec(0usize..60, 50..2000)) {
        let cfg = EzFlowConfig::default();
        let mut caa = Caa::new(cfg, 128);
        let mut window_sum = 0usize;
        let mut window_n = 0usize;
        for s in samples {
            window_sum += s;
            window_n += 1;
            let complete = window_n == cfg.samples;
            let avg = window_sum as f64 / window_n as f64;
            match caa.on_sample(s) {
                CaaDecision::Increase(_) => {
                    prop_assert!(complete && avg > cfg.b_max);
                }
                CaaDecision::Decrease(_) => {
                    prop_assert!(complete && avg < cfg.b_min);
                }
                CaaDecision::Hold => {}
            }
            if complete {
                window_sum = 0;
                window_n = 0;
            }
        }
    }

    /// BOE history bound holds under any load.
    #[test]
    fn boe_history_is_bounded(n in 1usize..5000, cap in 1usize..64) {
        let mut boe = Boe::new(cap);
        for seq in 0..n as u64 {
            boe.on_sent(ezflow_phy::frame::checksum16(seq));
            prop_assert!(boe.len() <= cap);
        }
    }
}
