//! §7 extension end-to-end: a relay forwarding two flows to *different*
//! successors adapts one `CWmin` per successor (the 802.11e pattern the
//! paper's conclusion sketches).
//!
//! Topology (distances in meters; decode <= 250, sense <= 620):
//!
//! ```text
//!                      2 --- 3 --- 4 --- 5 --- 6   (long, turbulent branch)
//!                    /
//!   0 ----- 1 -----+
//!                    \
//!                      7                            (direct sink branch)
//! ```
//!
//! Flow A: 0→1→2→3→4→5→6 (6 hops, with a lossy bottleneck on 2→3 like
//! the testbed's l2, so relay 2 backlogs), flow B: 0→1→7 (the successor
//! is the sink). EZ-flow at node 1 must raise the window toward 2 while
//! keeping the window toward 7 at the minimum.

use ezflow_core::EzFlowController;
use ezflow_net::controller::Controller;
use ezflow_net::topo::{FlowSpec, Topology};
use ezflow_net::Network;
use ezflow_phy::{LossModel, Position};
use ezflow_sim::Time;

fn fork_topology(until: Time) -> Topology {
    let positions = vec![
        Position::new(0.0, 0.0),      // 0 source
        Position::new(200.0, 0.0),    // 1 forking relay
        Position::new(400.0, 60.0),   // 2 long-branch head
        Position::new(600.0, 60.0),   // 3
        Position::new(800.0, 60.0),   // 4
        Position::new(1000.0, 60.0),  // 5
        Position::new(1200.0, 60.0),  // 6 long-branch sink
        Position::new(380.0, -120.0), // 7 short-branch sink
    ];
    let fa = FlowSpec::saturating(0, vec![0, 1, 2, 3, 4, 5, 6], Time::ZERO, until);
    let mut fb = FlowSpec::saturating(1, vec![0, 1, 7], Time::ZERO, until);
    // Keep B light so the fork itself is not the bottleneck.
    fb.rate_bps = 200_000;
    // A weak link right after the branch head (like the testbed's l2)
    // guarantees relay 2 is the congestion point of the long branch.
    let mut loss = LossModel::ideal();
    loss.set_link(2, 3, 0.35);
    loss.set_link(3, 2, 0.35);
    Topology {
        name: "fork".into(),
        positions,
        loss,
        flows: vec![fa, fb],
    }
}

#[test]
fn per_successor_windows_diverge_at_the_fork() {
    let secs = 600;
    let until = Time::from_secs(secs);
    let topo = fork_topology(until);
    let mut net = Network::from_topology(&topo, 5, &|_| {
        Box::new(EzFlowController::with_defaults()) as Box<dyn Controller>
    });
    net.run_until(until);

    // Both flows deliver.
    let half = Time::from_secs(secs / 2);
    let ka = net.metrics.mean_kbps(0, half, until);
    let kb = net.metrics.mean_kbps(1, half, until);
    assert!(ka > 10.0, "long branch still flows: {ka:.1} kb/s");
    assert!(kb > 20.0, "short branch still flows: {kb:.1} kb/s");

    // The relay's controller holds one window per successor, and they
    // diverged: the turbulent branch is throttled, the sink branch is at
    // the minimum.
    let ctrl = net.node(1).controller.as_ref();
    let w2 = ctrl.queue_window(2).expect("window toward 2");
    let w7 = ctrl.queue_window(7).expect("window toward 7");
    assert_eq!(w7, 16, "sink successor drives its window to mincw");
    assert!(
        w2 >= 4 * w7,
        "congested successor must be throttled: w2 = {w2}, w7 = {w7}"
    );

    // The long branch's head relay does not sit saturated: node 1 adapted.
    let b2 = net.metrics.buffer[2].window(half, until).mean;
    assert!(
        b2 < 30.0,
        "branch head buffer must be controlled, got {b2:.1}"
    );
}

#[test]
fn single_successor_behaviour_is_unchanged_by_the_extension() {
    // On a plain chain, queue_window and the node-global window coincide.
    let secs = 200;
    let until = Time::from_secs(secs);
    let topo = ezflow_net::topo::chain(4, Time::ZERO, until);
    let mut net = Network::from_topology(&topo, 9, &|_| {
        Box::new(EzFlowController::with_defaults()) as Box<dyn Controller>
    });
    net.run_until(until);
    for node in 0..4 {
        let ctrl = net.node(node).controller.as_ref();
        let succ = node + 1;
        if let Some(w) = ctrl.queue_window(succ) {
            assert_eq!(
                w,
                net.cw_min(node),
                "node {node}: per-queue and MAC windows must agree"
            );
        }
    }
}
