//! End-to-end integration: EZ-flow stabilizes the turbulent chains of
//! Fig. 1 — the paper's headline claim — on the full packet-level
//! simulator.

use ezflow_core::EzFlowController;
use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::{topo, Network};
use ezflow_sim::Time;

fn run(hops: usize, ez: bool, secs: u64, seed: u64) -> Network {
    let t = topo::chain(hops, Time::ZERO, Time::from_secs(secs));
    let make: Box<dyn Fn(usize) -> Box<dyn Controller>> = if ez {
        Box::new(|_| Box::new(EzFlowController::with_defaults()))
    } else {
        Box::new(|_| Box::new(FixedController::standard()))
    };
    let mut net = Network::from_topology(&t, seed, &*make);
    net.run_until(Time::from_secs(secs));
    net
}

#[test]
fn ezflow_stabilizes_the_4_hop_chain() {
    let secs = 240;
    let half = Time::from_secs(secs / 2);
    let end = Time::from_secs(secs);

    let plain = run(4, false, secs, 7);
    let ez = run(4, true, secs, 7);

    // Without EZ-flow the first relay saturates; with it, it empties.
    let b1_plain = plain.metrics.buffer[1].window(half, end).mean;
    let b1_ez = ez.metrics.buffer[1].window(half, end).mean;
    assert!(b1_plain > 40.0, "802.11 must be turbulent, b1 = {b1_plain}");
    assert!(b1_ez < 5.0, "EZ-flow must stabilize, b1 = {b1_ez}");

    // Delay drops by at least an order of magnitude...
    let d_plain = plain.metrics.delay_net[&0].window(half, end).mean;
    let d_ez = ez.metrics.delay_net[&0].window(half, end).mean;
    assert!(
        d_ez < d_plain / 10.0,
        "delay {d_plain:.2}s -> {d_ez:.2}s is not a 10x improvement"
    );

    // ...without sacrificing throughput (the paper gains ~20%).
    let k_plain = plain.metrics.mean_kbps(0, half, end);
    let k_ez = ez.metrics.mean_kbps(0, half, end);
    assert!(
        k_ez > k_plain,
        "EZ-flow throughput {k_ez:.0} must beat 802.11's {k_plain:.0}"
    );

    // The adapted windows match the paper's structure: relays at mincw,
    // source well above.
    assert!(ez.cw_min(1) <= 32);
    assert!(ez.cw_min(0) >= 64, "source cw = {}", ez.cw_min(0));

    // And overflow drops essentially vanish.
    assert!(plain.metrics.queue_drops[1] > 1000);
    assert!(ez.metrics.queue_drops[1] < plain.metrics.queue_drops[1] / 10);
}

#[test]
fn ezflow_does_not_hurt_the_stable_3_hop_chain() {
    let secs = 240;
    let half = Time::from_secs(secs / 2);
    let end = Time::from_secs(secs);
    let plain = run(3, false, secs, 11);
    let ez = run(3, true, secs, 11);
    let k_plain = plain.metrics.mean_kbps(0, half, end);
    let k_ez = ez.metrics.mean_kbps(0, half, end);
    assert!(
        k_ez > 0.9 * k_plain,
        "EZ-flow must not lose throughput on a stable chain: {k_ez:.0} vs {k_plain:.0}"
    );
    let d_ez = ez.metrics.delay_net[&0].window(half, end).mean;
    assert!(d_ez < 0.5, "stable chain delay should be small, got {d_ez}");
}

#[test]
fn ezflow_adapts_back_when_load_disappears() {
    // Flow stops at t = 120; by t = 300 the relays' windows must have
    // decayed back toward mincw-ish values and queues must be empty.
    let t = topo::chain(4, Time::ZERO, Time::from_secs(120));
    let mut net = Network::from_topology(&t, 3, &|_| {
        Box::new(EzFlowController::with_defaults()) as Box<dyn Controller>
    });
    net.run_until(Time::from_secs(300));
    for node in 1..4 {
        assert_eq!(net.occupancy(node), 0, "queues must drain after stop");
    }
    // The source raised its window during the run; with no more samples
    // arriving it simply keeps its last value — EZ-flow only reacts to
    // traffic, so we merely check the network became quiescent.
    let delivered = net.metrics.delivered[&0];
    assert!(delivered > 1000);
}
