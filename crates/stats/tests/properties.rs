//! Property-based tests for the statistics substrate.
//!
//! [`LogHistogram`] backs every latency number the experiments report
//! and every snapshot round-trip, so its algebra gets the property
//! treatment: merging must be associative (and commutative, and agree
//! with recording the concatenated stream), and quantiles must be
//! monotone in the requested rank — a p99 can never read below a p50.

use ezflow_stats::LogHistogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merge is associative and commutative, and merging histograms of
    /// two streams equals the histogram of the concatenated stream.
    #[test]
    fn merge_is_associative_and_stream_order_free(
        a in prop::collection::vec(0u64..2_000_000, 0..200),
        b in prop::collection::vec(0u64..2_000_000, 0..200),
        c in prop::collection::vec(0u64..2_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording the concatenated stream.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &hist_of(&all));
        prop_assert_eq!(left.total() as usize, all.len());
    }

    /// Quantiles are monotone non-decreasing in the requested rank, and
    /// the derived percentile quartet is internally ordered.
    #[test]
    fn quantiles_are_monotone_in_rank(
        values in prop::collection::vec(0u64..10_000_000, 1..300),
        qs in prop::collection::vec(0.0f64..1.0, 2..20),
    ) {
        let h = hist_of(&values);
        let mut sorted = qs.clone();
        sorted.push(0.0);
        sorted.push(1.0);
        sorted.sort_by(f64::total_cmp);
        let reads: Vec<u64> = sorted.iter().map(|&q| h.quantile(q)).collect();
        for w in reads.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile regressed: {:?}", reads);
        }
        let [p50, p95, p99, p999] = h.percentiles();
        prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
    }

    /// Bucket export/import is lossless: the snapshot round-trip.
    #[test]
    fn buckets_round_trip(values in prop::collection::vec(0u64..5_000_000, 0..200)) {
        let h = hist_of(&values);
        let back = LogHistogram::from_buckets(h.buckets());
        prop_assert_eq!(&h, &back);
    }
}
