//! Turbulence / stability analysis over telemetry time series.
//!
//! The paper's central claim is qualitative — EZ-Flow "removes
//! turbulence", the large sustained queue-occupancy oscillations of
//! multihop 802.11 — and this module makes it measurable. A telemetry
//! series of per-window queue depths is chopped into consecutive
//! analysis windows of `window` samples; each analysis window gets an
//! **oscillation amplitude** (max − min) and a **coefficient of
//! variation** (std / mean), and maximal runs of high-amplitude windows
//! become **episodes** with start/end timestamps. The same windowing,
//! applied to per-flow throughput series, yields a windowed Jain index
//! via [`crate::fairness::jain_index`].
//!
//! Everything here is a pure function of its inputs — analysis of a
//! deterministic simulation run is itself deterministic.

use ezflow_sim::Time;

use crate::fairness::jain_index;
use crate::series::TimeSeries;
use crate::summary::{mean_std, Summary};

/// Parameters of the episode detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StabilityConfig {
    /// Samples per analysis window (only complete windows are scored).
    pub window: usize,
    /// Minimum amplitude (max − min within an analysis window) for the
    /// window to count as oscillating. The default of 3.0 is tuned to
    /// the paper's 50-packet interface queues: in steady state the
    /// turbulent 802.11 regime swings relay queues by 3–9 packets every
    /// couple of seconds where EZ-flow holds them within a packet or
    /// two, so three packets of within-window swing separates the two.
    pub amp_threshold: f64,
    /// Minimum run of consecutive oscillating windows that counts as a
    /// *sustained* episode.
    pub min_windows: usize,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        StabilityConfig {
            window: 20,
            amp_threshold: 3.0,
            min_windows: 3,
        }
    }
}

/// One scored analysis window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowScore {
    /// Start of the analysis window.
    pub start: Time,
    /// End (exclusive) of the analysis window.
    pub end: Time,
    /// Oscillation amplitude: max − min of the samples inside.
    pub amplitude: f64,
    /// Coefficient of variation: std / mean (0 when the mean is 0).
    pub cv: f64,
}

/// A maximal run of consecutive high-amplitude analysis windows at least
/// [`StabilityConfig::min_windows`] long.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Episode {
    /// Start of the first window of the run.
    pub start: Time,
    /// End (exclusive) of the last window of the run.
    pub end: Time,
    /// Largest window amplitude inside the run.
    pub peak_amplitude: f64,
}

/// Stability verdict for one series.
#[derive(Clone, Debug, PartialEq)]
pub struct Stability {
    /// Mean ± std of the per-window amplitudes.
    pub amplitude: Summary,
    /// Mean ± std of the per-window coefficients of variation.
    pub cv: Summary,
    /// Sustained oscillation episodes, in time order.
    pub episodes: Vec<Episode>,
}

/// Scores `series` in consecutive non-overlapping chunks of
/// `cfg.window` samples (incomplete trailing chunks are not scored).
pub fn window_scores(series: &TimeSeries<f64>, cfg: &StabilityConfig) -> Vec<WindowScore> {
    assert!(cfg.window > 0, "analysis window must be nonzero");
    let samples: Vec<(u64, f64)> = series.iter().map(|(i, &v)| (i, v)).collect();
    samples
        .chunks_exact(cfg.window)
        .map(|chunk| {
            let vals: Vec<f64> = chunk.iter().map(|&(_, v)| v).collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let sm = mean_std(&vals);
            WindowScore {
                start: series.window_start(chunk[0].0),
                end: series.window_end(chunk[chunk.len() - 1].0),
                amplitude: max - min,
                cv: if sm.mean > 0.0 { sm.std / sm.mean } else { 0.0 },
            }
        })
        .collect()
}

/// Finds the sustained oscillation episodes in a sequence of scored
/// windows: maximal runs of consecutive windows with `amplitude >=
/// cfg.amp_threshold` lasting at least `cfg.min_windows` windows.
pub fn detect_episodes(scores: &[WindowScore], cfg: &StabilityConfig) -> Vec<Episode> {
    let mut out = Vec::new();
    let mut run: Option<(usize, usize)> = None; // [first, last] hot windows
    let flush = |run: &mut Option<(usize, usize)>, out: &mut Vec<Episode>| {
        if let Some((first, last)) = run.take() {
            if last - first + 1 >= cfg.min_windows {
                let peak = scores[first..=last]
                    .iter()
                    .map(|w| w.amplitude)
                    .fold(f64::NEG_INFINITY, f64::max);
                out.push(Episode {
                    start: scores[first].start,
                    end: scores[last].end,
                    peak_amplitude: peak,
                });
            }
        }
    };
    for (i, w) in scores.iter().enumerate() {
        if w.amplitude >= cfg.amp_threshold {
            match &mut run {
                Some((_, last)) => *last = i,
                None => run = Some((i, i)),
            }
        } else {
            flush(&mut run, &mut out);
        }
    }
    flush(&mut run, &mut out);
    out
}

/// Full stability verdict for one series: window scores summarised plus
/// the sustained episodes.
pub fn analyze(series: &TimeSeries<f64>, cfg: &StabilityConfig) -> Stability {
    let scores = window_scores(series, cfg);
    let amps: Vec<f64> = scores.iter().map(|w| w.amplitude).collect();
    let cvs: Vec<f64> = scores.iter().map(|w| w.cv).collect();
    Stability {
        amplitude: mean_std(&amps),
        cv: mean_std(&cvs),
        episodes: detect_episodes(&scores, cfg),
    }
}

/// Jain's fairness index computed per telemetry window across flows:
/// for every window index retained by *all* series, the index over the
/// flows' values in that window. Returns `(absolute window index,
/// fairness)` pairs in time order — the min over them is the
/// `fairness_min_window` the reports carry.
pub fn windowed_jain(flows: &[&TimeSeries<f64>]) -> Vec<(u64, f64)> {
    let Some(first) = flows.first() else {
        return Vec::new();
    };
    let lo = flows.iter().map(|s| s.first_index()).max().unwrap();
    let hi = flows.iter().map(|s| s.next_index()).min().unwrap();
    debug_assert!(
        flows.iter().all(|s| s.interval() == first.interval()),
        "windowed fairness needs aligned series"
    );
    (lo..hi)
        .map(|i| {
            let vals: Vec<f64> = flows.iter().map(|s| *s.get(i).expect("in range")).collect();
            (i, jain_index(&vals))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_sim::Duration;

    fn series(vals: &[f64]) -> TimeSeries<f64> {
        let mut ts = TimeSeries::new(Duration::from_millis(100), 1 << 16);
        for &v in vals {
            ts.push(v);
        }
        ts
    }

    #[test]
    fn window_scores_measure_amplitude_and_cv() {
        // Two complete windows of 4 samples plus an ignored partial one.
        let ts = series(&[0.0, 10.0, 0.0, 10.0, 5.0, 5.0, 5.0, 5.0, 99.0]);
        let cfg = StabilityConfig {
            window: 4,
            ..StabilityConfig::default()
        };
        let scores = window_scores(&ts, &cfg);
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].amplitude, 10.0);
        assert!(scores[0].cv > 0.9, "half-amplitude square wave, cv = 1");
        assert_eq!(scores[1].amplitude, 0.0);
        assert_eq!(scores[1].cv, 0.0);
        assert_eq!(scores[0].start, Time::ZERO);
        assert_eq!(scores[0].end, Time::from_millis(400));
        assert_eq!(scores[1].start, Time::from_millis(400));
    }

    #[test]
    fn episodes_require_sustained_oscillation() {
        let w = |amp: f64, i: u64| WindowScore {
            start: Time::from_millis(i * 100),
            end: Time::from_millis((i + 1) * 100),
            amplitude: amp,
            cv: 0.0,
        };
        let cfg = StabilityConfig {
            window: 1,
            amp_threshold: 10.0,
            min_windows: 3,
        };
        // hot, hot — too short; then hot×3 — an episode; trailing hot×4
        // closed by end-of-series — another.
        let scores = vec![
            w(15.0, 0),
            w(12.0, 1),
            w(1.0, 2),
            w(11.0, 3),
            w(30.0, 4),
            w(10.0, 5),
            w(0.0, 6),
            w(20.0, 7),
            w(21.0, 8),
            w(22.0, 9),
            w(23.0, 10),
        ];
        let eps = detect_episodes(&scores, &cfg);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].start, Time::from_millis(300));
        assert_eq!(eps[0].end, Time::from_millis(600));
        assert_eq!(eps[0].peak_amplitude, 30.0);
        assert_eq!(eps[1].start, Time::from_millis(700));
        assert_eq!(eps[1].end, Time::from_millis(1100));
        assert_eq!(eps[1].peak_amplitude, 23.0);
    }

    #[test]
    fn analyze_separates_square_wave_from_flat() {
        let turbulent: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 2.0 } else { 48.0 })
            .collect();
        let flat: Vec<f64> = (0..200).map(|i| 5.0 + (i % 3) as f64).collect();
        let cfg = StabilityConfig::default();
        let t = analyze(&series(&turbulent), &cfg);
        let f = analyze(&series(&flat), &cfg);
        assert!(!t.episodes.is_empty(), "square wave must form an episode");
        assert!(f.episodes.is_empty(), "±1 jitter must not");
        assert!(t.amplitude.mean > f.amplitude.mean);
        assert!(t.cv.mean > f.cv.mean);
        // One maximal run covering the whole scored span.
        assert_eq!(t.episodes.len(), 1);
        assert_eq!(t.episodes[0].start, Time::ZERO);
        assert_eq!(t.episodes[0].end, Time::from_millis(100 * 200));
    }

    #[test]
    fn analyze_is_deterministic() {
        let vals: Vec<f64> = (0..500).map(|i| ((i * 7919) % 50) as f64).collect();
        let cfg = StabilityConfig::default();
        assert_eq!(analyze(&series(&vals), &cfg), analyze(&series(&vals), &cfg));
    }

    #[test]
    fn windowed_jain_runs_over_the_common_range() {
        let a = series(&[10.0, 10.0, 10.0, 10.0]);
        let b = series(&[10.0, 0.0, 10.0]); // one window shorter
        let fi = windowed_jain(&[&a, &b]);
        assert_eq!(fi.len(), 3);
        assert!((fi[0].1 - 1.0).abs() < 1e-12);
        assert!((fi[1].1 - 0.5).abs() < 1e-12, "one starved flow → 1/n");
        let min = fi.iter().map(|&(_, f)| f).fold(f64::INFINITY, f64::min);
        assert!((min - 0.5).abs() < 1e-12);
        assert!(windowed_jain(&[]).is_empty());
    }
}
