//! Estimation-accuracy tracking for the BOE ground-truth audit.
//!
//! The paper argues the Buffer Occupancy Estimator is *exact* on a clean
//! channel: FIFO queues make "checksums stored after the overheard one"
//! precisely the successor's occupancy. This module measures how far a
//! deployment strays from that ideal. An [`EstimationTracker`] consumes
//! `(time, estimate, truth)` triples for one (node → successor) link and
//! maintains streaming error statistics — signed bias, mean absolute
//! error, worst divergence — plus *sustained-divergence episodes*: the
//! sample stream is chopped into chunks of [`StabilityConfig::window`]
//! samples, each chunk scored by its largest absolute error, and the
//! chunk scores are fed through the same
//! [`crate::stability::detect_episodes`] run-length machinery that finds
//! queue-oscillation episodes in telemetry series. Chunk timestamps are
//! the real first/last sample times, so episodes line up with the rest
//! of a run's timeline.
//!
//! Everything is a pure function of the fed samples — deterministic for
//! deterministic runs.

use ezflow_sim::Time;

use crate::stability::{detect_episodes, Episode, StabilityConfig, WindowScore};

/// Streaming per-link estimation-error statistics.
///
/// Constant memory per sample: only the per-chunk scores are retained
/// (one entry per [`StabilityConfig::window`] samples).
#[derive(Clone, Debug)]
pub struct EstimationTracker {
    cfg: StabilityConfig,
    samples: u64,
    sum_err: f64,
    sum_abs: f64,
    max_abs: f64,
    /// Samples accumulated into the current chunk.
    chunk_len: usize,
    /// Timestamp of the current chunk's first sample.
    chunk_start: Time,
    /// Largest absolute error seen inside the current chunk.
    chunk_max_abs: f64,
    /// Completed chunk scores (amplitude = max |error| in the chunk).
    scores: Vec<WindowScore>,
}

/// Summary of one link's estimation accuracy.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimationSummary {
    /// Samples observed.
    pub samples: u64,
    /// Mean signed error (estimate − truth): positive when the estimator
    /// over-counts the successor's queue.
    pub bias: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Largest absolute error ever observed.
    pub max_abs: f64,
    /// Sustained-divergence episodes (runs of high-error chunks), in
    /// time order.
    pub episodes: Vec<Episode>,
}

impl EstimationTracker {
    /// Creates a tracker; `cfg.window` samples form one divergence chunk
    /// and `cfg.amp_threshold` packets of absolute error make a chunk
    /// "divergent" (see [`StabilityConfig`]).
    pub fn new(cfg: StabilityConfig) -> Self {
        assert!(cfg.window > 0, "divergence chunk must be nonzero");
        EstimationTracker {
            cfg,
            samples: 0,
            sum_err: 0.0,
            sum_abs: 0.0,
            max_abs: 0.0,
            chunk_len: 0,
            chunk_start: Time::ZERO,
            chunk_max_abs: 0.0,
            scores: Vec::new(),
        }
    }

    /// Feeds one `(estimate, truth)` observation taken at `at`.
    pub fn on_sample(&mut self, at: Time, estimate: u32, truth: u32) {
        let err = estimate as f64 - truth as f64;
        self.samples += 1;
        self.sum_err += err;
        self.sum_abs += err.abs();
        self.max_abs = self.max_abs.max(err.abs());
        if self.chunk_len == 0 {
            self.chunk_start = at;
            self.chunk_max_abs = 0.0;
        }
        self.chunk_max_abs = self.chunk_max_abs.max(err.abs());
        self.chunk_len += 1;
        if self.chunk_len == self.cfg.window {
            self.scores.push(WindowScore {
                start: self.chunk_start,
                end: at,
                amplitude: self.chunk_max_abs,
                cv: 0.0,
            });
            self.chunk_len = 0;
        }
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Completed divergence chunks scored so far.
    pub fn chunks(&self) -> usize {
        self.scores.len()
    }

    /// The summary over everything fed so far. The trailing incomplete
    /// chunk (fewer than `cfg.window` samples) contributes to the scalar
    /// statistics but not to episode detection, mirroring
    /// [`crate::stability::window_scores`].
    pub fn summary(&self) -> EstimationSummary {
        let n = self.samples as f64;
        EstimationSummary {
            samples: self.samples,
            bias: if self.samples > 0 {
                self.sum_err / n
            } else {
                0.0
            },
            mae: if self.samples > 0 {
                self.sum_abs / n
            } else {
                0.0
            },
            max_abs: self.max_abs,
            episodes: detect_episodes(&self.scores, &self.cfg),
        }
    }
}

impl Default for EstimationTracker {
    fn default() -> Self {
        Self::new(StabilityConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn exact_estimates_report_zero_error_and_no_episodes() {
        let mut tr = EstimationTracker::default();
        for i in 0..500u64 {
            tr.on_sample(t(i * 10), (i % 7) as u32, (i % 7) as u32);
        }
        let s = tr.summary();
        assert_eq!(s.samples, 500);
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.max_abs, 0.0);
        assert!(s.episodes.is_empty());
    }

    #[test]
    fn sustained_divergence_forms_an_episode_with_real_timestamps() {
        let cfg = StabilityConfig {
            window: 10,
            amp_threshold: 3.0,
            min_windows: 3,
        };
        let mut tr = EstimationTracker::new(cfg);
        // 5 clean chunks, then 4 divergent ones, then clean again.
        for i in 0..50u64 {
            tr.on_sample(t(i * 100), 5, 5);
        }
        for i in 50..90u64 {
            tr.on_sample(t(i * 100), 10, 4); // error +6
        }
        for i in 90..120u64 {
            tr.on_sample(t(i * 100), 5, 5);
        }
        let s = tr.summary();
        assert_eq!(s.episodes.len(), 1);
        let ep = s.episodes[0];
        assert_eq!(ep.start, t(5000), "first divergent sample");
        assert_eq!(ep.end, t(8900), "last sample of the last hot chunk");
        assert_eq!(ep.peak_amplitude, 6.0);
        assert!((s.bias - 6.0 * 40.0 / 120.0).abs() < 1e-12);
        assert_eq!(s.max_abs, 6.0);
    }

    #[test]
    fn bias_is_signed_and_mae_is_not() {
        let mut tr = EstimationTracker::default();
        tr.on_sample(t(0), 10, 12); // -2
        tr.on_sample(t(1), 12, 10); // +2
        let s = tr.summary();
        assert_eq!(s.bias, 0.0);
        assert_eq!(s.mae, 2.0);
        assert_eq!(s.max_abs, 2.0);
    }

    #[test]
    fn short_runs_of_divergence_do_not_count() {
        let cfg = StabilityConfig {
            window: 5,
            amp_threshold: 3.0,
            min_windows: 3,
        };
        let mut tr = EstimationTracker::new(cfg);
        // One bad chunk between good ones: not sustained.
        for i in 0..5u64 {
            tr.on_sample(t(i), 0, 0);
        }
        for i in 5..10u64 {
            tr.on_sample(t(i), 9, 0);
        }
        for i in 10..30u64 {
            tr.on_sample(t(i), 0, 0);
        }
        let s = tr.summary();
        assert!(s.episodes.is_empty());
        assert_eq!(s.max_abs, 9.0);
    }
}
