//! Jain's fairness index — Eq. (1) of the paper.

/// Computes Jain's fairness index
/// `FI = (Σ x_i)² / (n · Σ x_i²)`
/// over per-flow throughputs. Ranges from `1/n` (one flow takes all) to
/// `1.0` (perfect fairness). Returns 1.0 for an empty or all-zero input
/// (no contention implies no unfairness; this matches the convention used
/// when a period has no active competing flows).
pub fn jain_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len() as f64;
    if throughputs.is_empty() {
        return 1.0;
    }
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fairness_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_starvation_is_one_over_n() {
        assert!((jain_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!((jain_index(&[10.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_example_band() {
        // Table 2: F1 = 7 kb/s, F2 = 143 kb/s -> FI = 0.55 (rounded).
        let fi = jain_index(&[7.0, 143.0]);
        assert!((fi - 0.55).abs() < 0.01, "fi = {fi}");
        // Table 2 with EZ-flow: 71 and 110 -> 0.96.
        let fi = jain_index(&[71.0, 110.0]);
        assert!((fi - 0.96).abs() < 0.01, "fi = {fi}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
