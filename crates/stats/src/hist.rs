//! Log-bucketed latency histograms.
//!
//! The flight recorder's headline question — *where* does delay
//! accumulate — needs tail quantiles, and tail quantiles need a
//! histogram, not a mean. [`LogHistogram`] buckets `u64` values (the
//! simulator records microseconds) on an HDR-style log-linear grid:
//! values below 16 get exact buckets, and every octave above that is
//! split into 16 sub-buckets, so any recorded value is off by at most
//! ~3% from its bucket's midpoint while the whole `u64` range fits in a
//! few hundred possible buckets. Storage is a sparse `BTreeMap`, which
//! keeps memory proportional to the *distinct* magnitudes seen and —
//! crucially for the snapshot gate — makes serialisation order
//! deterministic.

use std::collections::BTreeMap;

/// Sub-buckets per octave (16 → ≤ ~3% relative quantile error).
const SUB: u64 = 16;
/// log2(SUB).
const SUB_BITS: u32 = 4;

/// A sparse log-linear histogram over `u64` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

/// Bucket index for `v`: exact below [`SUB`], log-linear above.
fn bucket_of(v: u64) -> u32 {
    if v < SUB {
        return v as u32;
    }
    let e = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS
    let m = (v >> (e - SUB_BITS)) & (SUB - 1); // next SUB_BITS mantissa bits
    ((e - SUB_BITS + 1) as u64 * SUB + m) as u32
}

/// Inclusive lower bound of bucket `b`'s value range.
fn bucket_low(b: u32) -> u64 {
    let b = b as u64;
    if b < SUB {
        return b;
    }
    let e = b / SUB + SUB_BITS as u64 - 1;
    let m = b % SUB;
    (SUB + m) << (e - SUB_BITS as u64)
}

/// Width of bucket `b`'s value range.
fn bucket_width(b: u32) -> u64 {
    let b = b as u64;
    if b < SUB {
        return 1;
    }
    1 << (b / SUB + SUB_BITS as u64 - 1 - SUB_BITS as u64)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(bucket_of(v)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of values recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q` (in `[0, 1]`), estimated as the midpoint
    /// of the bucket containing the `ceil(q·total)`-th smallest sample.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&b, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return bucket_low(b) + bucket_width(b) / 2;
            }
        }
        unreachable!("rank is clamped to the recorded total");
    }

    /// The conventional latency quartet: p50, p95, p99, p999.
    pub fn percentiles(&self) -> [u64; 4] {
        [
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.quantile(0.999),
        ]
    }

    /// Sparse `(bucket, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&b, &c)| (b, c))
    }

    /// Rebuilds a histogram from `(bucket, count)` pairs (the inverse of
    /// [`LogHistogram::buckets`], used by snapshot import).
    pub fn from_buckets(pairs: impl IntoIterator<Item = (u32, u64)>) -> Self {
        let mut h = LogHistogram::new();
        for (b, c) in pairs {
            if c > 0 {
                *h.counts.entry(b).or_insert(0) += c;
                h.total += c;
            }
        }
        h
    }

    /// Folds `other` into `self` (used to aggregate per-hop histograms
    /// into a network-wide one).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&b, &c) in &other.counts {
            *self.counts.entry(b).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as u32);
            assert_eq!(bucket_low(v as u32), v);
            assert_eq!(bucket_width(v as u32), 1);
        }
        assert_eq!(h.total(), 16);
    }

    #[test]
    fn buckets_partition_the_line() {
        // Each bucket's range must start exactly where the previous ends.
        let mut expected_low = 0u64;
        for b in 0..200u32 {
            assert_eq!(bucket_low(b), expected_low, "bucket {b}");
            expected_low += bucket_width(b);
        }
        // And bucket_of must be the inverse on both edges of each range.
        for b in 16..200u32 {
            let lo = bucket_low(b);
            let hi = lo + bucket_width(b) - 1;
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LogHistogram::new();
        // 1000 samples: 900 at ~100µs, 90 at ~10ms, 10 at ~1s.
        for _ in 0..900 {
            h.record(100);
        }
        for _ in 0..90 {
            h.record(10_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let [p50, p95, p99, p999] = h.percentiles();
        let close = |got: u64, want: u64| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.05, "got {got}, want ~{want}");
        };
        close(p50, 100);
        close(p95, 10_000);
        close(p99, 10_000);
        close(p999, 1_000_000);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 1000, 123_456, 987_654_321, u64::MAX / 2] {
            let mut h = LogHistogram::new();
            h.record(v);
            let got = h.quantile(0.5) as f64;
            let err = (got - v as f64).abs() / v as f64;
            assert!(err < 0.04, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn round_trips_through_buckets() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 15, 16, 17, 100, 10_000, u64::MAX] {
            h.record(v);
        }
        let back = LogHistogram::from_buckets(h.buckets());
        assert_eq!(back, h);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new();
        a.record(5);
        a.record(100);
        let mut b = LogHistogram::new();
        b.record(5);
        b.record(7_777);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        let back: Vec<(u32, u64)> = a.buckets().collect();
        assert_eq!(back.iter().map(|&(_, c)| c).sum::<u64>(), 4);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.percentiles(), [0, 0, 0, 0]);
    }
}
