//! Minimal CSV export for experiment outputs.

use std::io::{self, Write};
use std::path::Path;

/// Writes `rows` to `path` as CSV with the given `headers`.
///
/// Fields are formatted with `{}`; no quoting is performed, so headers must
/// not contain commas (experiment outputs are purely numeric).
pub fn write_csv<P: AsRef<Path>>(path: P, headers: &[&str], rows: &[Vec<f64>]) -> io::Result<()> {
    debug_assert!(headers.iter().all(|h| !h.contains(',')));
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "row width mismatch");
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reads_back() {
        let dir = std::env::temp_dir().join("ezflow_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(&path, &["t", "kbps"], &[vec![1.0, 10.5], vec![2.0, 20.25]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "t,kbps\n1,10.5\n2,20.25\n");
        std::fs::remove_file(&path).ok();
    }
}
