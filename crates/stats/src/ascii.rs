//! Terminal rendering of series — the harness's way of "drawing" the
//! paper's figures into a log file.

/// Renders `(x, y)` points as a fixed-size ASCII chart.
///
/// The chart is intentionally crude — its job is to make the *shape* of a
/// reproduction (buffer blow-up, delay spike at a flow arrival, contention
/// window staircase) visible in `cargo bench` output and EXPERIMENTS.md
/// without any plotting dependency.
pub fn render_series(title: &str, points: &[(f64, f64)], width: usize, height: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if points.is_empty() || width == 0 || height == 0 {
        out.push_str("  (no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if !xmax.is_finite() || !ymax.is_finite() {
        out.push_str("  (non-finite data)\n");
        return out;
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }

    // Column-wise max (so spikes survive downsampling).
    let mut cols: Vec<Option<f64>> = vec![None; width];
    for &(x, y) in points {
        let c = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
        let c = c.min(width - 1);
        cols[c] = Some(cols[c].map_or(y, |m: f64| m.max(y)));
    }

    let mut grid = vec![vec![' '; width]; height];
    for (c, v) in cols.iter().enumerate() {
        if let Some(y) = v {
            let r = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            let r = (height - 1) - r.min(height - 1);
            grid[r][c] = '*';
        }
    }

    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:9.2} |")
        } else if i == height - 1 {
            format!("{ymin:9.2} |")
        } else {
            "          |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          +{}\n           x: {:.1} .. {:.1}\n",
        "-".repeat(width),
        xmin,
        xmax
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_ramp() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let s = render_series("ramp", &pts, 40, 10);
        assert!(s.starts_with("ramp\n"));
        let lines: Vec<&str> = s.lines().collect();
        // Title + height rows + axis + range line.
        assert_eq!(lines.len(), 1 + 10 + 2);
        // Top row holds the max, bottom row the min.
        assert!(lines[1].contains('*'));
        assert!(lines[10].contains('*'));
        assert!(lines[1].contains("99.00"));
        assert!(lines[10].contains("0.00"));
    }

    #[test]
    fn empty_series_is_graceful() {
        let s = render_series("empty", &[], 40, 10);
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let pts = vec![(0.0, 5.0), (1.0, 5.0)];
        let s = render_series("flat", &pts, 20, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn spike_survives_downsampling() {
        let mut pts: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, 1.0)).collect();
        pts[500].1 = 100.0;
        let s = render_series("spike", &pts, 30, 8);
        assert!(s.contains("100.00"), "column max must keep the spike:\n{s}");
    }
}
