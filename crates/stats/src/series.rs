//! Time-binned series.

use ezflow_sim::{Duration, Time};

use crate::summary::{mean_std, Summary};

/// Accumulates delivered bits into fixed-width time bins; reads back as a
/// throughput (kb/s) series — the paper's Figs. 6 and the throughput
/// columns of Tables 1–3.
#[derive(Clone, Debug)]
pub struct ThroughputSeries {
    bin: Duration,
    bits: Vec<f64>,
}

impl ThroughputSeries {
    /// Creates a series with `bin`-wide bins. The paper's figures use
    /// 10-second bins; the tables are computed from the same series.
    pub fn new(bin: Duration) -> Self {
        assert!(!bin.is_zero());
        ThroughputSeries {
            bin,
            bits: Vec::new(),
        }
    }

    /// Bin width.
    pub fn bin(&self) -> Duration {
        self.bin
    }

    /// Records `bits` delivered at instant `at`.
    pub fn record(&mut self, at: Time, bits: u64) {
        let idx = (at.as_micros() / self.bin.as_micros()) as usize;
        if self.bits.len() <= idx {
            self.bits.resize(idx + 1, 0.0);
        }
        self.bits[idx] += bits as f64;
    }

    /// Total bits recorded.
    pub fn total_bits(&self) -> f64 {
        self.bits.iter().sum()
    }

    /// The series as `(bin center seconds, kb/s)` points.
    pub fn points_kbps(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.bits
            .iter()
            .enumerate()
            .map(|(i, &b)| ((i as f64 + 0.5) * w, b / w / 1000.0))
            .collect()
    }

    /// Mean ± std of the per-bin throughput (kb/s) over `[from, to)`,
    /// counting only bins that lie entirely inside the window.
    pub fn window_kbps(&self, from: Time, to: Time) -> Summary {
        let w = self.bin.as_micros();
        let first = from.as_micros().div_ceil(w);
        let last = to.as_micros() / w; // exclusive
        let secs = self.bin.as_secs_f64();
        let vals: Vec<f64> = (first..last)
            .map(|i| self.bits.get(i as usize).copied().unwrap_or(0.0) / secs / 1000.0)
            .collect();
        mean_std(&vals)
    }

    /// Average throughput (kb/s) over `[from, to)` computed from total
    /// bits, not per-bin means (insensitive to bin alignment).
    pub fn average_kbps(&self, from: Time, to: Time) -> f64 {
        let w = self.bin.as_micros();
        let first = (from.as_micros() / w) as usize;
        let last = (to.as_micros().div_ceil(w)) as usize;
        let total: f64 = self
            .bits
            .iter()
            .skip(first)
            .take(last.saturating_sub(first))
            .sum();
        let span = to.saturating_since(from).as_secs_f64();
        if span == 0.0 || total == 0.0 {
            0.0 // normalize (avoids a cosmetic "-0.0" in reports)
        } else {
            total / span / 1000.0
        }
    }
}

/// A series of timestamped scalar samples (delays, buffer occupancies,
/// contention windows) that can be read back raw or bin-averaged.
#[derive(Clone, Debug, Default)]
pub struct SampleSeries {
    samples: Vec<(Time, f64)>,
}

impl SampleSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples must be pushed in nondecreasing time
    /// order (the simulator guarantees this).
    pub fn push(&mut self, at: Time, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| t <= at),
            "samples must be time-ordered"
        );
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples as `(seconds, value)`.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect()
    }

    /// Per-bin means as `(bin center seconds, mean)`, skipping empty bins.
    pub fn binned_mean(&self, bin: Duration) -> Vec<(f64, f64)> {
        assert!(!bin.is_zero());
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut idx = usize::MAX;
        let mut sum = 0.0;
        let mut n = 0u64;
        let w = bin.as_micros();
        let ws = bin.as_secs_f64();
        for &(t, v) in &self.samples {
            let i = (t.as_micros() / w) as usize;
            if i != idx {
                if n > 0 {
                    out.push(((idx as f64 + 0.5) * ws, sum / n as f64));
                }
                idx = i;
                sum = 0.0;
                n = 0;
            }
            sum += v;
            n += 1;
        }
        if n > 0 && idx != usize::MAX {
            out.push(((idx as f64 + 0.5) * ws, sum / n as f64));
        }
        out
    }

    /// Mean ± std of the raw samples inside `[from, to)`.
    pub fn window(&self, from: Time, to: Time) -> Summary {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        mean_std(&vals)
    }

    /// The `p`-quantile of the raw samples inside `[from, to)`.
    pub fn percentile_in(&self, from: Time, to: Time, p: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        crate::summary::percentile(&vals, p)
    }

    /// Maximum sample value inside `[from, to)`, if any.
    pub fn max_in(&self, from: Time, to: Time) -> Option<f64> {
        self.samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> Time {
        Time::from_secs(secs)
    }

    #[test]
    fn throughput_bins_and_converts_to_kbps() {
        let mut ts = ThroughputSeries::new(Duration::from_secs(10));
        // 100 kbit in the first bin, 200 kbit in the second.
        ts.record(s(1), 50_000);
        ts.record(s(9), 50_000);
        ts.record(s(12), 200_000);
        let pts = ts.points_kbps();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 5.0).abs() < 1e-9);
        assert!((pts[0].1 - 10.0).abs() < 1e-9, "100kbit/10s = 10 kb/s");
        assert!((pts[1].1 - 20.0).abs() < 1e-9);
        assert_eq!(ts.total_bits(), 300_000.0);
    }

    #[test]
    fn window_kbps_uses_interior_bins_only() {
        let mut ts = ThroughputSeries::new(Duration::from_secs(10));
        for sec in [5u64, 15, 25, 35] {
            ts.record(s(sec), 100_000); // 10 kb/s in each of 4 bins
        }
        let sm = ts.window_kbps(s(0), s(40));
        assert!((sm.mean - 10.0).abs() < 1e-9);
        assert!(sm.std.abs() < 1e-9);
        assert_eq!(sm.count, 4);
        // A window not aligned to bins keeps only full bins 1 and 2.
        let sm = ts.window_kbps(s(7), s(38));
        assert_eq!(sm.count, 2);
    }

    #[test]
    fn average_kbps_is_total_over_span() {
        let mut ts = ThroughputSeries::new(Duration::from_secs(10));
        ts.record(s(5), 1_000_000);
        // 1 Mbit over 100 s = 10 kb/s.
        assert!((ts.average_kbps(s(0), s(100)) - 10.0).abs() < 1e-9);
        assert_eq!(ts.average_kbps(s(0), s(0)), 0.0);
    }

    #[test]
    fn sample_series_binned_mean_skips_gaps() {
        let mut ss = SampleSeries::new();
        ss.push(s(1), 10.0);
        ss.push(s(2), 20.0);
        ss.push(s(25), 5.0);
        let pts = ss.binned_mean(Duration::from_secs(10));
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 15.0).abs() < 1e-9);
        assert!((pts[1].1 - 5.0).abs() < 1e-9);
        assert!((pts[1].0 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn sample_series_window_and_max() {
        let mut ss = SampleSeries::new();
        for i in 0..10u64 {
            ss.push(s(i), i as f64);
        }
        let sm = ss.window(s(2), s(5));
        assert_eq!(sm.count, 3);
        assert!((sm.mean - 3.0).abs() < 1e-9);
        assert_eq!(ss.max_in(s(0), s(10)), Some(9.0));
        assert_eq!(ss.max_in(s(10), s(20)), None);
    }

    #[test]
    fn percentile_in_window() {
        let mut ss = SampleSeries::new();
        for i in 0..100u64 {
            ss.push(s(i), i as f64);
        }
        // Samples 10..=19 inside [10, 20).
        let p50 = ss.percentile_in(s(10), s(20), 0.5).unwrap();
        assert!((p50 - 14.5).abs() < 1e-12);
        assert_eq!(ss.percentile_in(s(200), s(300), 0.5), None);
    }

    #[test]
    fn empty_series_behave() {
        let ts = ThroughputSeries::new(Duration::from_secs(1));
        assert!(ts.points_kbps().is_empty());
        assert_eq!(ts.window_kbps(s(0), s(10)).count, 10); // zero bins count
        let ss = SampleSeries::new();
        assert!(ss.is_empty());
        assert_eq!(ss.window(s(0), s(1)).count, 0);
    }
}
