//! Time-binned series.

use std::collections::VecDeque;

use ezflow_sim::{Duration, Time};

use crate::summary::{mean_std, Summary};

/// A ring-buffered, fixed-interval time series — the storage behind the
/// telemetry bus.
///
/// Window `i` covers simulated time `[i·interval, (i+1)·interval)` and
/// windows are pushed in order, one value per window. At most `cap`
/// windows are retained; pushing into a full ring evicts the oldest, so
/// the series always holds the most recent `cap` windows and
/// [`TimeSeries::dropped`] reports how many fell off the front. Indexing
/// is always by *absolute* window number, so a series that has wrapped
/// still addresses its windows by the same indices it was filled with.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries<T> {
    interval: Duration,
    cap: usize,
    dropped: u64,
    values: VecDeque<T>,
}

impl<T> TimeSeries<T> {
    /// Creates an empty series of `interval`-wide windows retaining at
    /// most `cap` of them (`cap` must be nonzero).
    pub fn new(interval: Duration, cap: usize) -> Self {
        assert!(!interval.is_zero(), "window width must be nonzero");
        assert!(cap > 0, "ring capacity must be nonzero");
        TimeSeries {
            interval,
            cap,
            dropped: 0,
            values: VecDeque::new(),
        }
    }

    /// Window width.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Maximum number of retained windows.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Windows evicted off the front of the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff no windows are retained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Absolute index of the oldest retained window.
    pub fn first_index(&self) -> u64 {
        self.dropped
    }

    /// Absolute index of the next window to be pushed.
    pub fn next_index(&self) -> u64 {
        self.dropped + self.values.len() as u64
    }

    /// Start instant of absolute window `index`.
    pub fn window_start(&self, index: u64) -> Time {
        Time::ZERO + Duration::from_micros(index * self.interval.as_micros())
    }

    /// End instant (exclusive) of absolute window `index`.
    pub fn window_end(&self, index: u64) -> Time {
        self.window_start(index + 1)
    }

    /// Appends the next window's value, evicting the oldest when full.
    pub fn push(&mut self, value: T) {
        if self.values.len() == self.cap {
            self.values.pop_front();
            self.dropped += 1;
        }
        self.values.push_back(value);
    }

    /// The value of absolute window `index`, if retained.
    pub fn get(&self, index: u64) -> Option<&T> {
        index
            .checked_sub(self.dropped)
            .and_then(|i| self.values.get(i as usize))
    }

    /// The most recently pushed value.
    pub fn latest(&self) -> Option<&T> {
        self.values.back()
    }

    /// Retained `(absolute index, value)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (self.dropped + i as u64, v))
    }

    /// Merges two aligned series (same `interval`) element-wise over the
    /// overlap of their retained index ranges. The result is anchored at
    /// the first overlapping window and capped at the smaller of the two
    /// capacities — deterministic for any push history.
    pub fn merge_with<U, V>(
        &self,
        other: &TimeSeries<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> TimeSeries<V> {
        assert_eq!(
            self.interval, other.interval,
            "merged series must share a window width"
        );
        let first = self.first_index().max(other.first_index());
        let next = self.next_index().min(other.next_index());
        let mut out = TimeSeries {
            interval: self.interval,
            cap: self.cap.min(other.cap),
            dropped: first.min(next),
            values: VecDeque::new(),
        };
        for i in first..next {
            let (Some(a), Some(b)) = (self.get(i), other.get(i)) else {
                continue;
            };
            out.push(f(a, b));
        }
        out
    }
}

impl TimeSeries<f64> {
    /// The `p`-quantile (`0.0..=1.0`) of the retained values.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let vals: Vec<f64> = self.values.iter().copied().collect();
        crate::summary::percentile(&vals, p)
    }

    /// Mean ± std of the retained values.
    pub fn summary(&self) -> Summary {
        let vals: Vec<f64> = self.values.iter().copied().collect();
        mean_std(&vals)
    }

    /// Retained windows as `(window end seconds, value)` points, for the
    /// ASCII renderer and CSV export.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.iter()
            .map(|(i, &v)| (self.window_end(i).as_secs_f64(), v))
            .collect()
    }
}

/// Accumulates delivered bits into fixed-width time bins; reads back as a
/// throughput (kb/s) series — the paper's Figs. 6 and the throughput
/// columns of Tables 1–3.
#[derive(Clone, Debug)]
pub struct ThroughputSeries {
    bin: Duration,
    bits: Vec<f64>,
}

impl ThroughputSeries {
    /// Creates a series with `bin`-wide bins. The paper's figures use
    /// 10-second bins; the tables are computed from the same series.
    pub fn new(bin: Duration) -> Self {
        assert!(!bin.is_zero());
        ThroughputSeries {
            bin,
            bits: Vec::new(),
        }
    }

    /// Bin width.
    pub fn bin(&self) -> Duration {
        self.bin
    }

    /// Records `bits` delivered at instant `at`.
    pub fn record(&mut self, at: Time, bits: u64) {
        let idx = (at.as_micros() / self.bin.as_micros()) as usize;
        if self.bits.len() <= idx {
            self.bits.resize(idx + 1, 0.0);
        }
        self.bits[idx] += bits as f64;
    }

    /// Total bits recorded.
    pub fn total_bits(&self) -> f64 {
        self.bits.iter().sum()
    }

    /// The series as `(bin center seconds, kb/s)` points.
    pub fn points_kbps(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.bits
            .iter()
            .enumerate()
            .map(|(i, &b)| ((i as f64 + 0.5) * w, b / w / 1000.0))
            .collect()
    }

    /// Mean ± std of the per-bin throughput (kb/s) over `[from, to)`,
    /// counting only bins that lie entirely inside the window.
    pub fn window_kbps(&self, from: Time, to: Time) -> Summary {
        let w = self.bin.as_micros();
        let first = from.as_micros().div_ceil(w);
        let last = to.as_micros() / w; // exclusive
        let secs = self.bin.as_secs_f64();
        let vals: Vec<f64> = (first..last)
            .map(|i| self.bits.get(i as usize).copied().unwrap_or(0.0) / secs / 1000.0)
            .collect();
        mean_std(&vals)
    }

    /// Average throughput (kb/s) over `[from, to)` computed from total
    /// bits, not per-bin means (insensitive to bin alignment).
    pub fn average_kbps(&self, from: Time, to: Time) -> f64 {
        let w = self.bin.as_micros();
        let first = (from.as_micros() / w) as usize;
        let last = (to.as_micros().div_ceil(w)) as usize;
        let total: f64 = self
            .bits
            .iter()
            .skip(first)
            .take(last.saturating_sub(first))
            .sum();
        let span = to.saturating_since(from).as_secs_f64();
        if span == 0.0 || total == 0.0 {
            0.0 // normalize (avoids a cosmetic "-0.0" in reports)
        } else {
            total / span / 1000.0
        }
    }
}

/// A series of timestamped scalar samples (delays, buffer occupancies,
/// contention windows) that can be read back raw or bin-averaged.
#[derive(Clone, Debug, Default)]
pub struct SampleSeries {
    samples: Vec<(Time, f64)>,
}

impl SampleSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples must be pushed in nondecreasing time
    /// order (the simulator guarantees this).
    pub fn push(&mut self, at: Time, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| t <= at),
            "samples must be time-ordered"
        );
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples as `(seconds, value)`.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect()
    }

    /// Per-bin means as `(bin center seconds, mean)`, skipping empty bins.
    pub fn binned_mean(&self, bin: Duration) -> Vec<(f64, f64)> {
        assert!(!bin.is_zero());
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut idx = usize::MAX;
        let mut sum = 0.0;
        let mut n = 0u64;
        let w = bin.as_micros();
        let ws = bin.as_secs_f64();
        for &(t, v) in &self.samples {
            let i = (t.as_micros() / w) as usize;
            if i != idx {
                if n > 0 {
                    out.push(((idx as f64 + 0.5) * ws, sum / n as f64));
                }
                idx = i;
                sum = 0.0;
                n = 0;
            }
            sum += v;
            n += 1;
        }
        if n > 0 && idx != usize::MAX {
            out.push(((idx as f64 + 0.5) * ws, sum / n as f64));
        }
        out
    }

    /// Mean ± std of the raw samples inside `[from, to)`.
    pub fn window(&self, from: Time, to: Time) -> Summary {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        mean_std(&vals)
    }

    /// The `p`-quantile of the raw samples inside `[from, to)`.
    pub fn percentile_in(&self, from: Time, to: Time, p: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        crate::summary::percentile(&vals, p)
    }

    /// Maximum sample value inside `[from, to)`, if any.
    pub fn max_in(&self, from: Time, to: Time) -> Option<f64> {
        self.samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> Time {
        Time::from_secs(secs)
    }

    #[test]
    fn throughput_bins_and_converts_to_kbps() {
        let mut ts = ThroughputSeries::new(Duration::from_secs(10));
        // 100 kbit in the first bin, 200 kbit in the second.
        ts.record(s(1), 50_000);
        ts.record(s(9), 50_000);
        ts.record(s(12), 200_000);
        let pts = ts.points_kbps();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 5.0).abs() < 1e-9);
        assert!((pts[0].1 - 10.0).abs() < 1e-9, "100kbit/10s = 10 kb/s");
        assert!((pts[1].1 - 20.0).abs() < 1e-9);
        assert_eq!(ts.total_bits(), 300_000.0);
    }

    #[test]
    fn window_kbps_uses_interior_bins_only() {
        let mut ts = ThroughputSeries::new(Duration::from_secs(10));
        for sec in [5u64, 15, 25, 35] {
            ts.record(s(sec), 100_000); // 10 kb/s in each of 4 bins
        }
        let sm = ts.window_kbps(s(0), s(40));
        assert!((sm.mean - 10.0).abs() < 1e-9);
        assert!(sm.std.abs() < 1e-9);
        assert_eq!(sm.count, 4);
        // A window not aligned to bins keeps only full bins 1 and 2.
        let sm = ts.window_kbps(s(7), s(38));
        assert_eq!(sm.count, 2);
    }

    #[test]
    fn average_kbps_is_total_over_span() {
        let mut ts = ThroughputSeries::new(Duration::from_secs(10));
        ts.record(s(5), 1_000_000);
        // 1 Mbit over 100 s = 10 kb/s.
        assert!((ts.average_kbps(s(0), s(100)) - 10.0).abs() < 1e-9);
        assert_eq!(ts.average_kbps(s(0), s(0)), 0.0);
    }

    #[test]
    fn sample_series_binned_mean_skips_gaps() {
        let mut ss = SampleSeries::new();
        ss.push(s(1), 10.0);
        ss.push(s(2), 20.0);
        ss.push(s(25), 5.0);
        let pts = ss.binned_mean(Duration::from_secs(10));
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 15.0).abs() < 1e-9);
        assert!((pts[1].1 - 5.0).abs() < 1e-9);
        assert!((pts[1].0 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn sample_series_window_and_max() {
        let mut ss = SampleSeries::new();
        for i in 0..10u64 {
            ss.push(s(i), i as f64);
        }
        let sm = ss.window(s(2), s(5));
        assert_eq!(sm.count, 3);
        assert!((sm.mean - 3.0).abs() < 1e-9);
        assert_eq!(ss.max_in(s(0), s(10)), Some(9.0));
        assert_eq!(ss.max_in(s(10), s(20)), None);
    }

    #[test]
    fn percentile_in_window() {
        let mut ss = SampleSeries::new();
        for i in 0..100u64 {
            ss.push(s(i), i as f64);
        }
        // Samples 10..=19 inside [10, 20).
        let p50 = ss.percentile_in(s(10), s(20), 0.5).unwrap();
        assert!((p50 - 14.5).abs() < 1e-12);
        assert_eq!(ss.percentile_in(s(200), s(300), 0.5), None);
    }

    #[test]
    fn time_series_ring_evicts_and_keeps_absolute_indices() {
        let mut ts = TimeSeries::new(Duration::from_millis(100), 4);
        for v in 0..10 {
            ts.push(v as f64);
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.dropped(), 6);
        assert_eq!(ts.first_index(), 6);
        assert_eq!(ts.next_index(), 10);
        assert_eq!(ts.get(5), None, "evicted window");
        assert_eq!(ts.get(6), Some(&6.0));
        assert_eq!(ts.latest(), Some(&9.0));
        // Absolute window 6 covers [600 ms, 700 ms).
        assert_eq!(ts.window_start(6), Time::from_millis(600));
        assert_eq!(ts.window_end(6), Time::from_millis(700));
        let idx: Vec<u64> = ts.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![6, 7, 8, 9]);
    }

    #[test]
    fn time_series_percentile_and_summary() {
        let mut ts = TimeSeries::new(Duration::from_secs(1), 64);
        for v in 1..=5 {
            ts.push(v as f64);
        }
        assert_eq!(ts.percentile(0.0), Some(1.0));
        assert_eq!(ts.percentile(1.0), Some(5.0));
        assert_eq!(ts.percentile(0.5), Some(3.0));
        let sm = ts.summary();
        assert_eq!(sm.count, 5);
        assert!((sm.mean - 3.0).abs() < 1e-12);
        let pts = ts.points();
        assert_eq!(pts.len(), 5);
        assert!((pts[0].0 - 1.0).abs() < 1e-12, "window end, seconds");
    }

    #[test]
    fn time_series_merge_is_deterministic_over_the_overlap() {
        // a retains windows 6..10, b retains 0..8: overlap is 6..8, and the
        // merged values are a pure function of the two inputs regardless of
        // push history.
        let mut a = TimeSeries::new(Duration::from_millis(100), 4);
        for v in 0..10 {
            a.push(v as f64);
        }
        let mut b = TimeSeries::new(Duration::from_millis(100), 16);
        for v in 0..8 {
            b.push(10.0 * v as f64);
        }
        let m = a.merge_with(&b, |x, y| x + y);
        assert_eq!(m.first_index(), 6);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(6), Some(&66.0));
        assert_eq!(m.get(7), Some(&77.0));
        // Merging in either order pairs the same windows.
        let m2 = b.merge_with(&a, |y, x| x + y);
        assert_eq!(m2.get(6), Some(&66.0));
        assert_eq!(m2.get(7), Some(&77.0));
        // Disjoint ranges produce an empty series, not a panic.
        let mut c = TimeSeries::new(Duration::from_millis(100), 2);
        for v in 0..20 {
            c.push(v as f64);
        }
        let empty = b.merge_with(&c, |x, y| x + y);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_series_behave() {
        let ts = ThroughputSeries::new(Duration::from_secs(1));
        assert!(ts.points_kbps().is_empty());
        assert_eq!(ts.window_kbps(s(0), s(10)).count, 10); // zero bins count
        let ss = SampleSeries::new();
        assert!(ss.is_empty());
        assert_eq!(ss.window(s(0), s(1)).count, 0);
    }
}
