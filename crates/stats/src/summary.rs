//! Scalar summaries.

/// Mean, standard deviation and extrema of a set of samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Arithmetic mean (0 for an empty set).
    pub mean: f64,
    /// Population standard deviation (0 for fewer than 2 samples).
    pub std: f64,
    /// Smallest sample (0 for an empty set).
    pub min: f64,
    /// Largest sample (0 for an empty set).
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

/// Computes a [`Summary`] of `vals`.
///
/// Uses the *population* standard deviation (divide by `n`), matching what
/// network-measurement papers conventionally report for per-bin throughput
/// variation.
pub fn mean_std(vals: &[f64]) -> Summary {
    if vals.is_empty() {
        return Summary::default();
    }
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        mean,
        std: var.sqrt(),
        min,
        max,
        count: vals.len(),
    }
}

/// Computes the `p`-quantile (0.0 ..= 1.0) of `vals` by linear
/// interpolation between order statistics (the "type 7" estimator R and
/// NumPy default). Returns `None` for an empty input.
pub fn percentile(vals: &[f64], p: f64) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&p), "quantile out of range");
    let mut sorted: Vec<f64> = vals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = mean_std(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = mean_std(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let vals = [4.0, 1.0, 3.0, 2.0]; // sorted: 1 2 3 4
        assert_eq!(percentile(&vals, 0.0), Some(1.0));
        assert_eq!(percentile(&vals, 1.0), Some(4.0));
        assert_eq!(percentile(&vals, 0.5), Some(2.5));
        assert!((percentile(&vals, 0.95).unwrap() - 3.85).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn known_values() {
        // Population std of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = mean_std(&vals);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
    }
}
