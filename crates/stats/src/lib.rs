//! # ezflow-stats — the measurement toolkit
//!
//! Everything the paper reports is one of four things: a **time series**
//! binned over the experiment (Figs. 1, 4, 6, 7, 8, 10, 11), a **mean ±
//! standard deviation** over a period (Tables 1, 2, 3), **Jain's fairness
//! index** over per-flow throughputs (Eq. 1), or an **average buffer
//! occupancy** (Fig. 4's caption). This crate provides exactly those
//! primitives, plus CSV export and a terminal ASCII renderer so the
//! experiment harness can "draw" the figures in a log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
pub mod estimation;
pub mod fairness;
pub mod hist;
pub mod series;
pub mod stability;
pub mod summary;

pub use ascii::render_series;
pub use csv::write_csv;
pub use estimation::{EstimationSummary, EstimationTracker};
pub use fairness::jain_index;
pub use hist::LogHistogram;
pub use series::{SampleSeries, ThroughputSeries, TimeSeries};
pub use stability::{analyze, windowed_jain, Episode, Stability, StabilityConfig};
pub use summary::{mean_std, percentile, Summary};
