//! Determinism of the parallel sweep runner: fanning runs across worker
//! threads must not change a single byte of any result.
//!
//! Each run is a pure function of its `NetworkSpec` and controller
//! factory; the runner only changes *where* the run executes. These tests
//! pin that property end to end, at the strongest available granularity:
//! the pretty-printed JSON of the full cross-layer `RunSnapshot` (every
//! queue depth, MAC counter, channel statistic and controller counter),
//! with only the wall-clock perf block zeroed — the one part of a
//! snapshot that is honestly non-deterministic.

use ezflow_bench::runner::{Job, SweepRunner};
use ezflow_core::EzFlowController;
use ezflow_net::{topo, NetworkSpec, PerfSnapshot};
use ezflow_sim::Time;

/// A mixed batch: different topologies, algorithms, and seeds, so the
/// comparison exercises more than one code path.
fn batch(until: Time) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (i, seed) in [42u64, 7, 1234].into_iter().enumerate() {
        let t = topo::chain(4, Time::ZERO, until);
        jobs.push(Job::new(
            format!("chain4/802.11/{seed}"),
            NetworkSpec::from_topology(&t, seed),
            until,
            Box::new(|_| Box::new(ezflow_net::FixedController::standard())),
        ));
        let t = topo::chain(3 + i % 2, Time::ZERO, until);
        jobs.push(Job::new(
            format!("chain/EZ-flow/{seed}"),
            NetworkSpec::from_topology(&t, seed),
            until,
            Box::new(|_| Box::new(EzFlowController::with_defaults())),
        ));
    }
    jobs
}

/// Renders every network in a batch result to comparable snapshot JSON.
fn digests(runner: SweepRunner, until: Time) -> Vec<String> {
    runner.run_map(batch(until), |i, mut net| {
        let mut snap = net.snapshot(&format!("job{i}"));
        snap.perf = PerfSnapshot::zeroed();
        snap.to_json().to_pretty()
    })
}

#[test]
fn jobs4_output_is_byte_identical_to_jobs1() {
    let until = Time::from_secs(40);
    let serial = digests(SweepRunner::new(1), until);
    let parallel = digests(SweepRunner::new(4), until);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s, p, "job {i}: parallel snapshot JSON diverged from serial");
    }
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    // Worker interleaving differs between invocations; results must not.
    let until = Time::from_secs(30);
    let a = digests(SweepRunner::new(4), until);
    let b = digests(SweepRunner::new(2), until);
    assert_eq!(a, b);
}
