//! The `--json` export contract: snapshots collected by the experiment
//! harness round-trip through the file the CLI writes, carrying per-node
//! airtime fractions, per-layer counters and scheduler stats.

use ezflow_bench::experiments::{run_net, Algo};
use ezflow_bench::report::{self, Report, Scale};
use ezflow_net::{topo, PerfSnapshot, RunSnapshot, SchedKind};
use ezflow_sim::{JsonValue, Time};

/// A short scenario-1-style run (merging chains would take minutes at
/// full scale, so we use its building block: a multi-hop chain under
/// both algorithms), snapshotted and pushed through the exact code path
/// `experiments --json=FILE` uses.
#[test]
fn json_export_round_trips_with_cross_layer_stats() {
    let mut rep = Report::new("snapshot_smoke", "JSON export contract");
    let until = Time::from_secs(30);
    for algo in [Algo::Plain, Algo::EzFlow] {
        let topo = topo::chain(3, Time::from_secs(1), until);
        let mut net = run_net(&topo, algo, until, &Scale::quick(), "snapshot_smoke");
        rep.snapshots
            .push(net.snapshot(&format!("smoke/{}", algo.name())));
    }

    let path =
        std::env::temp_dir().join(format!("ezflow_snapshot_json_{}.json", std::process::id()));
    report::write_snapshots_json(std::slice::from_ref(&rep), &path).expect("write JSON file");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);

    let doc = JsonValue::parse(&text).expect("file parses as JSON");
    let snaps = doc
        .get("snapshots")
        .and_then(JsonValue::as_array)
        .expect("top-level snapshots array");
    assert_eq!(snaps.len(), 2, "one snapshot per algorithm");

    for (raw, want) in snaps.iter().zip(&rep.snapshots) {
        let snap = RunSnapshot::from_json(raw).expect("snapshot deserialises");
        assert_eq!(&snap, want, "file round-trips the in-memory snapshot");

        assert!(
            snap.scheduler.dispatched_total > 0,
            "events were dispatched"
        );
        assert!(snap.scheduler.depth_high_water > 0);
        let by_kind: u64 = snap
            .scheduler
            .dispatched_by_kind
            .iter()
            .map(|(_, n)| n)
            .sum();
        assert_eq!(by_kind, snap.scheduler.dispatched_total);

        assert_eq!(snap.nodes.len(), 4, "3-hop chain has 4 nodes");
        for node in &snap.nodes {
            let (tx, rx, busy, idle) = node.airtime.fractions();
            assert!(
                (tx + rx + busy + idle - 1.0).abs() < 1e-9,
                "airtime fractions sum to 1 at node {}",
                node.id
            );
            assert_eq!(node.airtime.total_us(), snap.at_us);
        }
        // The source moved traffic: every layer saw it.
        let src = &snap.nodes[0];
        assert!(src.mac.tx_attempts > 0);
        assert!(src.airtime.tx_us > 0);
        assert!(snap.channel.tx_started > 0);
    }

    // The EZ-flow run exercises the estimator/adaptation counters; the
    // plain-802.11 run must report them as zero.
    let plain = RunSnapshot::from_json(&snaps[0]).unwrap();
    let ez = RunSnapshot::from_json(&snaps[1]).unwrap();
    let sum = |s: &RunSnapshot| s.nodes.iter().map(|n| n.counters.boe_hits).sum::<u64>();
    assert_eq!(sum(&plain), 0, "FixedController has no BOE");
    assert!(sum(&ez) > 0, "EZ-flow relays produced BOE samples");
}

/// The scheduler-backend contract at the network level: a quick
/// scenario-1 slice (both algorithms) must produce byte-identical
/// perf-zeroed snapshot JSON under `--sched=heap` and `--sched=wheel`.
/// `hotpath_bench --check` pins the same property on the full-length
/// runs; this is the in-tree regression test for it (shortened so it
/// stays fast in debug builds).
#[test]
fn heap_and_wheel_snapshots_are_byte_identical_on_scenario1() {
    let until = Time::from_secs(5);
    let digests = |sched: SchedKind| -> Vec<String> {
        let mut t = topo::scenario1();
        for f in &mut t.flows {
            f.start = Time::from_millis(100);
            f.stop = until;
        }
        let mut scale = Scale::quick();
        scale.sched = sched;
        [Algo::Plain, Algo::EzFlow]
            .into_iter()
            .map(|algo| {
                let mut net = run_net(&t, algo, until, &scale, "sched_equiv");
                let mut snap = net.snapshot(&format!("s1/{}", algo.name()));
                snap.perf = PerfSnapshot::zeroed();
                snap.to_json().to_compact()
            })
            .collect()
    };
    let heap = digests(SchedKind::Heap);
    let wheel = digests(SchedKind::Wheel);
    assert!(
        heap.iter().all(|d| d.len() > 100),
        "snapshots are non-trivial"
    );
    assert_eq!(heap, wheel, "backends must be observationally identical");
}
