//! The audit layer's acceptance check: regime separation. On a clean
//! channel the BOE's passive estimate is *exact* — the audit's per-link
//! error summaries must read (near) zero — while bursty fades
//! (Gilbert-Elliott, the BOE's worst case: whole runs of overhearings
//! vanish at once) must produce real estimation error and at least one
//! sustained divergence episode. If the probe compared the estimate
//! against the wrong instant's queue depth, the clean run would show
//! phantom error; if it compared it against the estimate's own inputs,
//! the bursty run would show none.

use ezflow_bench::experiments::Algo;
use ezflow_net::network::{Network, NetworkSpec};
use ezflow_net::snapshot::ControllerSnapshot;
use ezflow_net::topo;
use ezflow_sim::Time;

fn audited(spec: NetworkSpec, secs: u64) -> ControllerSnapshot {
    let mut net = Network::new(spec, &*Algo::EzFlow.factory());
    net.run_until(Time::from_secs(secs));
    net.snapshot("audit").controller.expect("audit armed")
}

/// Clean channel *and* no queue overflow: scenario 1 throttled to an
/// unsaturating 100 kb/s. The paper's saturating 2 Mb/s overflows the
/// head relays during the start-up transient, and a drop at the
/// successor's full queue is the one event the BOE cannot see — so
/// exactness is claimed (and holds, to the sample) exactly where its
/// preconditions hold.
#[test]
fn clean_channel_estimates_are_exact() {
    let mut t = topo::scenario1();
    for f in t.flows.iter_mut() {
        f.rate_bps = 100_000;
    }
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.audit_cap = NetworkSpec::AUDIT_CAP;
    let ctl = audited(spec, 305);

    assert!(!ctl.links.is_empty(), "EZ-flow must have audited links");
    let samples: u64 = ctl.links.iter().map(|l| l.samples).sum();
    assert!(
        samples > 1_000,
        "expected a real sample volume, got {samples}"
    );
    for l in &ctl.links {
        assert_eq!(
            l.mae, 0.0,
            "clean channel, link N{}→N{}: BOE must be exact (mae {}, bias {}, max {})",
            l.node, l.successor, l.mae, l.bias, l.max_abs
        );
        assert_eq!(l.max_abs, 0.0, "not one sample may diverge");
        assert!(
            l.episodes.is_empty(),
            "no divergence episodes on a clean run"
        );
    }
    // The CAA moved windows (idle links charge countdown) and the
    // ledger saw it.
    assert!(
        ctl.decisions_total > 0,
        "CAA must have decided at least once"
    );
    assert!(!ctl.nodes.is_empty(), "some node must have changed CW");
}

#[test]
fn bursty_loss_produces_divergence_episodes() {
    let until = Time::from_secs(300);
    let t = topo::chain(4, Time::ZERO, until);
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.audit_cap = NetworkSpec::AUDIT_CAP;
    spec.loss =
        ezflow_phy::LossModel::ideal().with_burst(ezflow_phy::loss::GilbertElliott::classic());
    let ctl = audited(spec, 300);

    assert!(!ctl.links.is_empty(), "bursty run must still audit links");
    let worst_mae = ctl.links.iter().map(|l| l.mae).fold(0.0f64, f64::max);
    assert!(
        worst_mae > 0.0,
        "bursty fades must produce estimation error (worst mae {worst_mae})"
    );
    let episodes: usize = ctl.links.iter().map(|l| l.episodes.len()).sum();
    assert!(
        episodes >= 1,
        "bursty fades must sustain at least one divergence episode \
         (worst mae {worst_mae}, links {:?})",
        ctl.links
            .iter()
            .map(|l| (l.node, l.successor, l.samples, l.mae, l.max_abs))
            .collect::<Vec<_>>()
    );
    // Episode timestamps are well-formed and inside the run.
    for l in &ctl.links {
        for e in &l.episodes {
            assert!(e.start_us < e.end_us);
            assert!(e.end_us <= 300_000_000);
            assert!(e.peak_amplitude >= 3.0, "below the detector threshold");
        }
    }
}
