//! The PR's acceptance check as a test: on a quick scenario-1 slice the
//! plain-802.11 baseline shows *sustained* queue oscillation (at least
//! one detected episode) and a strictly higher mean oscillation
//! amplitude than EZ-flow — the turbulence the paper sets out to remove,
//! now measured by the telemetry bus instead of eyeballed from figures.

use ezflow_bench::experiments::Algo;
use ezflow_net::network::{Network, NetworkSpec};
use ezflow_net::snapshot::StabilitySnapshot;
use ezflow_net::topo;
use ezflow_sim::Time;

/// Scenario 1 under `algo` with the telemetry bus armed at the default
/// 100 ms interval, run to `secs` (F1 starts at 5 s; F2 at 605 s stays
/// out of this slice). `cap` bounds the rings in sample windows, so a
/// cap smaller than the horizon deliberately evicts the start-up
/// transient and scores only the steady state — with 2048 windows over
/// a 305 s run, the retained slice is roughly the last 205 s.
fn stability_of(algo: Algo, secs: u64, cap: usize) -> StabilitySnapshot {
    let t = topo::scenario1();
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.telemetry_every = Some(NetworkSpec::TELEMETRY_EVERY);
    spec.telemetry_cap = cap;
    let mut net = Network::new(spec, &*algo.factory());
    net.run_until(Time::from_secs(secs));
    net.snapshot(algo.name())
        .stability
        .expect("telemetry armed")
}

#[test]
fn baseline_oscillates_where_ezflow_is_calm() {
    let plain = stability_of(Algo::Plain, 305, 2048);
    let ez = stability_of(Algo::EzFlow, 305, 2048);

    // The baseline's relay queues keep swinging by several packets every
    // couple of seconds — sustained turbulence, not isolated blips.
    assert!(
        plain.episodes_total >= 1,
        "802.11 must show at least one sustained oscillation episode"
    );
    assert!(
        plain.worst_amplitude_mean > ez.worst_amplitude_mean,
        "802.11 amplitude ({}) must exceed EZ-flow's ({})",
        plain.worst_amplitude_mean,
        ez.worst_amplitude_mean
    );
    // EZ-flow's steady state is the calmer regime on both counts.
    assert!(
        ez.episodes_total < plain.episodes_total,
        "EZ-flow episodes ({}) must undercut 802.11's ({})",
        ez.episodes_total,
        plain.episodes_total
    );

    // Episode timestamps are well-formed and inside the retained slice.
    for n in &plain.nodes {
        for e in &n.episodes {
            assert!(e.start_us < e.end_us);
            assert!(e.end_us <= 305_000_000);
            assert!(e.peak_amplitude >= 3.0, "below the detector threshold");
        }
    }
    // Only F1 is active in this slice, so windowed Jain over (F1, F2)
    // pins to 1/2 — the fairness floor shows the idle flow.
    assert!((plain.fairness_min_window - 0.5).abs() < 1e-9);
}
