//! The spec-vs-constructor equivalence pins.
//!
//! The committed `scenarios/*.json` files claim to be the hand-built
//! `topo::` constructors re-expressed as data. These tests make that
//! claim exact, twice over:
//!
//! 1. the committed files are byte-identical to what `--emit-spec`
//!    regenerates (so the files can never drift from the emitter), and
//! 2. a network built from the *parsed file* leaves a perf-zeroed
//!    [`RunSnapshot`] byte-identical to one built from the constructor
//!    (so the whole parse → compile → build pipeline is provably exact,
//!    down to the f64 positions surviving the JSON round trip).

use std::path::PathBuf;

use ezflow_bench::experiments::{spec, Algo};
use ezflow_net::{topo, Network, NetworkSpec, PerfSnapshot, ScenarioSpec, Topology};
use ezflow_sim::Time;

fn scenario_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios")).join(name)
}

/// Perf-zeroed compact snapshot JSON: the deterministic run digest.
fn digest(topo: &Topology, algo: Algo, seed: u64, until: Time) -> String {
    let mut net = Network::new(NetworkSpec::from_topology(topo, seed), &*algo.factory());
    net.run_until(until);
    let mut snap = net.snapshot("pin");
    snap.perf = PerfSnapshot::zeroed();
    snap.to_json().to_compact()
}

fn assert_file_matches_emitter(file: &str, emit_name: &str) {
    let committed = std::fs::read_to_string(scenario_path(file))
        .unwrap_or_else(|e| panic!("{file} must be committed: {e}"));
    let mut emitted = spec::emit(emit_name).unwrap().to_json().to_pretty();
    emitted.push('\n');
    assert_eq!(
        committed, emitted,
        "{file} drifted from `experiments --emit-spec={emit_name}` — regenerate it"
    );
}

fn assert_spec_pins_constructor(file: &str, hand: &Topology, until: Time, algo: Algo) {
    let doc = spec::load(&scenario_path(file)).unwrap();
    let compiled = doc.compile().unwrap();
    assert_eq!(
        digest(&compiled.topology, algo, doc.seed, until),
        digest(hand, algo, doc.seed, until),
        "{file}: spec-built run diverged from the {} constructor",
        hand.name
    );
}

#[test]
fn scenario1_spec_is_byte_identical_to_the_constructor() {
    assert_file_matches_emitter("scenario1.json", "scenario1");
    assert_spec_pins_constructor(
        "scenario1.json",
        &topo::scenario1(),
        Time::from_secs(30),
        Algo::Plain,
    );
}

#[test]
fn scenario2_spec_is_byte_identical_to_the_constructor() {
    assert_file_matches_emitter("scenario2.json", "scenario2");
    assert_spec_pins_constructor(
        "scenario2.json",
        &topo::scenario2(),
        Time::from_secs(30),
        Algo::EzFlow,
    );
}

#[test]
fn grid4x4_spec_is_byte_identical_to_the_constructor() {
    assert_file_matches_emitter("grid4x4.json", "grid4x4");
    assert_spec_pins_constructor(
        "grid4x4.json",
        &topo::grid(4, 4, 140.0, Time::ZERO, Time::from_secs(60)),
        Time::from_secs(10),
        Algo::Plain,
    );
}

#[test]
fn mesh1k_spec_compiles_to_the_advertised_mesh() {
    let doc = spec::load(&scenario_path("mesh1k.json")).unwrap();
    let compiled = doc.compile().unwrap();
    assert!(compiled.topology.positions.len() >= 1000, "1,000+ nodes");
    let gateways: std::collections::BTreeSet<usize> = compiled
        .topology
        .flows
        .iter()
        .map(|f| *f.path.last().unwrap())
        .collect();
    assert!(gateways.len() >= 4, "traffic must drain to >= 4 gateways");
    let kinds: std::collections::BTreeSet<&str> = compiled
        .topology
        .flows
        .iter()
        .map(|f| match f.transport {
            ezflow_net::Transport::Cbr => "cbr",
            ezflow_net::Transport::Windowed { .. } => "windowed",
            ezflow_net::Transport::OnOff { .. } => "onoff",
        })
        .collect();
    assert_eq!(kinds.len(), 3, "mixed CBR / windowed / on-off traffic");
    // Compiling twice yields the identical mesh: placement and source
    // selection are pure functions of the topology seed.
    let again = doc.compile().unwrap();
    assert_eq!(compiled.topology.positions, again.topology.positions);
    assert_eq!(compiled.topology.flows, again.topology.flows);
}

#[test]
fn malformed_specs_fail_with_pointed_messages() {
    // Syntax: the error names the line and column.
    let err = ScenarioSpec::parse("{\n  \"name\": \"x\",\n  \"duration_secs\": oops\n}")
        .unwrap_err()
        .to_string();
    assert!(err.contains("line 3"), "{err}");
    // Schema: the error names the offending field path.
    let err =
        ScenarioSpec::parse(r#"{"name": "x", "duration_secs": 1, "topology": {"kind": "donut"}}"#)
            .unwrap_err()
            .to_string();
    assert!(
        err.contains("topology.kind") && err.contains("donut"),
        "{err}"
    );
}
