//! Criterion benches: raw simulator performance.
//!
//! These measure how fast the substrate runs, not the paper's metrics —
//! useful for keeping the experiment harness cheap and for spotting
//! regressions in the event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ezflow_core::EzFlowController;
use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::{topo, Network};
use ezflow_sim::Time;

fn std_controller(_: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

fn ez_controller(_: usize) -> Box<dyn Controller> {
    Box::new(EzFlowController::with_defaults())
}

/// Simulate 30 s of a saturated K-hop chain.
fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_30s");
    g.sample_size(10);
    for hops in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("plain", hops), &hops, |b, &hops| {
            b.iter(|| {
                let t = topo::chain(hops, Time::ZERO, Time::from_secs(30));
                let mut net = Network::from_topology(&t, 1, &std_controller);
                net.run_until(Time::from_secs(30));
                net.events_processed()
            })
        });
        g.bench_with_input(BenchmarkId::new("ezflow", hops), &hops, |b, &hops| {
            b.iter(|| {
                let t = topo::chain(hops, Time::ZERO, Time::from_secs(30));
                let mut net = Network::from_topology(&t, 1, &ez_controller);
                net.run_until(Time::from_secs(30));
                net.events_processed()
            })
        });
    }
    g.finish();
}

/// Simulate 30 s of the 13-node scenario-1 mesh (both flows active).
fn bench_scenario1(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario1_30s");
    g.sample_size(10);
    g.bench_function("ezflow", |b| {
        b.iter(|| {
            let mut t = topo::scenario1();
            t.flows[0].start = Time::ZERO;
            t.flows[0].stop = Time::from_secs(30);
            t.flows[1].start = Time::ZERO;
            t.flows[1].stop = Time::from_secs(30);
            let mut net = Network::from_topology(&t, 1, &ez_controller);
            net.run_until(Time::from_secs(30));
            net.events_processed()
        })
    });
    g.finish();
}

/// The analytical model: slots per second.
fn bench_slotted_model(c: &mut Criterion) {
    use ezflow_analysis::{ModelConfig, SlottedModel};
    use ezflow_sim::SimRng;
    let mut g = c.benchmark_group("slotted_model");
    for hops in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("100k_slots", hops), &hops, |b, &hops| {
            b.iter(|| {
                let mut m = SlottedModel::new(ModelConfig {
                    hops,
                    ..ModelConfig::default()
                });
                let mut rng = SimRng::new(2);
                for _ in 0..100_000 {
                    m.step(&mut rng);
                }
                m.delivered
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chain, bench_scenario1, bench_slotted_model);
criterion_main!(benches);
