//! Custom-harness bench target: regenerates every table and figure of the
//! paper at reduced scale, printing the same rows the full harness prints.
//! Run with `cargo bench -p ezflow-bench --bench paper_experiments`.

use ezflow_bench::experiments;
use ezflow_bench::report::Scale;

fn main() {
    // `cargo bench` passes --bench; `cargo test --benches` passes other
    // flags. We ignore them all: this target always runs everything.
    let scale = Scale::quick();
    let start = std::time::Instant::now();
    let mut ok = true;
    for rep in experiments::run_all(scale) {
        print!("{}", rep.render());
        ok &= rep.all_ok();
    }
    println!(
        "\npaper_experiments finished in {:.1}s — qualitative checks {}",
        start.elapsed().as_secs_f64(),
        if ok { "PASSED" } else { "FAILED" }
    );
    if !ok {
        std::process::exit(1);
    }
}
