//! Criterion benches: the EZ-flow hot paths (BOE lookup, CAA decision).
//!
//! On the testbed these run per overheard frame on a 200 MHz MIPS router,
//! so per-event cost matters; here we keep them honest.

use criterion::{criterion_group, criterion_main, Criterion};
use ezflow_core::{Boe, Caa, EzFlowConfig};
use ezflow_sim::SimRng;

/// BOE: record a send + resolve an overheard forward, at a steady-state
/// backlog of ~30 packets (the worst realistic scan depth).
fn bench_boe(c: &mut Criterion) {
    c.bench_function("boe_send_plus_overhear_b30", |b| {
        let mut boe = Boe::new(1000);
        let mut rng = SimRng::new(1);
        let mut next: u64 = 0;
        let mut oldest: u64 = 0;
        for _ in 0..30 {
            boe.on_sent(ezflow_phy::frame::checksum16(next));
            next += 1;
        }
        b.iter(|| {
            boe.on_sent(ezflow_phy::frame::checksum16(next));
            next += 1;
            let got = boe.on_overheard(ezflow_phy::frame::checksum16(oldest));
            oldest += 1;
            let _ = rng.next_u32();
            got
        })
    });
}

/// CAA: one sample (amortizing the 50-sample averaging round).
fn bench_caa(c: &mut Criterion) {
    c.bench_function("caa_on_sample", |b| {
        let mut caa = Caa::new(EzFlowConfig::default(), 32);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 60;
            caa.on_sample(if i < 30 { 25 } else { 0 })
        })
    });
}

/// Full controller event path through the trait object.
fn bench_controller(c: &mut Criterion) {
    use ezflow_core::EzFlowController;
    use ezflow_net::controller::{Controller, ControllerEvent};
    use ezflow_phy::Frame;
    use ezflow_sim::Time;

    c.bench_function("ezflow_controller_event_pair", |b| {
        let mut ctrl = EzFlowController::with_defaults();
        let mut seq: u64 = 0;
        b.iter(|| {
            let mut f = Frame::data(seq, 0, 1, 4, 1000, Time::ZERO);
            f.src = 1;
            f.dst = 2;
            ctrl.on_event(
                Time::ZERO,
                ControllerEvent::SentToSuccessor {
                    successor: 2,
                    frame: &f,
                },
            );
            let mut fwd = Frame::data(seq, 0, 1, 4, 1000, Time::ZERO);
            fwd.src = 2;
            fwd.dst = 3;
            let out = ctrl.on_event(Time::ZERO, ControllerEvent::Overheard { frame: &fwd });
            seq += 1;
            out
        })
    });
}

criterion_group!(benches, bench_boe, bench_caa, bench_controller);
criterion_main!(benches);
