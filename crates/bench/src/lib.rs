//! # ezflow-bench — the paper's evaluation, regenerated
//!
//! One module per artifact of the paper's evaluation (see DESIGN.md §5 for
//! the experiment index). Every experiment is a plain function taking a
//! [`Scale`] and returning a [`report::Report`], so that the same code
//! backs three frontends:
//!
//! * `cargo run --release -p ezflow-bench --bin experiments -- all`
//!   — full-length reproductions, printed as paper-vs-measured tables and
//!   ASCII figures (the source of EXPERIMENTS.md);
//! * `cargo bench -p ezflow-bench --bench paper_experiments`
//!   — scaled-down versions of every experiment, for CI-sized validation;
//! * the Criterion benches (`sim_speed`, `mechanism`) — raw performance
//!   of the simulator and of the BOE/CAA hot paths.

#![forbid(unsafe_code)]

pub mod audit_out;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod telemetry_out;

pub use report::{Report, Row, Scale};
pub use runner::{Job, SweepRunner};
