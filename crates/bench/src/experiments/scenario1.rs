//! **Scenario 1** (Figs. 6, 7, 8) — two 8-hop flows merging toward a
//! gateway (Fig. 5). F1 runs for the whole experiment; F2 joins for the
//! middle period. Regenerates the throughput series (Fig. 6), the delay
//! series (Fig. 7) and the contention-window evolution (Fig. 8).
//!
//! Paper numbers: period 1 (F1 alone) 153.2 kb/s and 4.1 s delay under
//! 802.11 vs 183.9 kb/s (+20%) and 0.2 s under EZ-flow; period 2 (both
//! flows) 76.5 kb/s average at 5.8 s vs 82.1 kb/s at negligible delay;
//! stable windows: relays at 2^4, the source at 2^7 when alone, sources
//! at 2^11 when competing — "the static solution proven stable in
//! \[Aziz09\], q = 2^4/2^11 = 1/128, discovered distributively".

use ezflow_net::topo;
use ezflow_sim::{Duration, Time};
use ezflow_stats::render_series;

use super::{run_net, Algo};
use crate::report::{secs as fsecs, Report, Scale};

/// Scales the paper's absolute timeline, keeping period order.
pub fn scale_timeline(scale: Scale, boundaries: &[u64]) -> Vec<Time> {
    let mut out = Vec::with_capacity(boundaries.len());
    let mut prev = 0u64;
    for (i, &b) in boundaries.iter().enumerate() {
        let mut v = (b as f64 * scale.time) as u64;
        if i > 0 {
            v = v.max(prev + 30);
        }
        out.push(Time::from_secs(v));
        prev = v;
    }
    out
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let tl = scale_timeline(scale, &[5, 605, 1805, 2504]);
    let (t0, t1, t2, t3) = (tl[0], tl[1], tl[2], tl[3]);

    let mut topo = topo::scenario1();
    topo.flows[0].start = t0;
    topo.flows[0].stop = t3;
    topo.flows[1].start = t1;
    topo.flows[1].stop = t2;

    let mut rep = Report::new(
        "scenario1",
        "Figs. 6-8: two merging 8-hop flows, throughput / delay / CWmin",
    );
    rep.note(format!(
        "F1 active {}..{}; F2 active {}..{} (paper: 5..2504 / 605..1804 s)",
        t0, t3, t1, t2
    ));

    let mut per_algo = std::collections::HashMap::new();
    for algo in [Algo::Plain, Algo::EzFlow] {
        let mut net = run_net(
            &topo,
            algo,
            t3,
            &scale,
            &format!("scenario1_{}", algo.slug()),
        );
        rep.snapshots
            .push(net.snapshot(&format!("scenario1/{}", algo.name())));
        if scale.flight_cap > 0 {
            rep.lifecycle(algo.slug(), net.flight.to_jsonl(), net.flight.stats());
        }
        let net = net;
        // Fig. 6: throughput series.
        for f in [0u32, 1] {
            let pts = net.metrics.throughput[&f].points_kbps();
            rep.figures.push(render_series(
                &format!("Fig6 {}: throughput of F{} [kb/s]", algo.name(), f + 1),
                &pts,
                64,
                8,
            ));
            rep.series(
                format!("fig6_{}_f{}_kbps", algo.name().replace('.', ""), f + 1),
                "t_s",
                "kbps",
                pts,
            );
        }
        // Fig. 7: delay series.
        for f in [0u32, 1] {
            let pts = net.metrics.delay_net[&f].binned_mean(Duration::from_secs(10));
            rep.figures.push(render_series(
                &format!("Fig7 {}: delay of F{} [s]", algo.name(), f + 1),
                &pts,
                64,
                8,
            ));
            rep.series(
                format!("fig7_{}_f{}_delay", algo.name().replace('.', ""), f + 1),
                "t_s",
                "delay_s",
                pts,
            );
        }
        // Fig. 8: CWmin evolution (EZ-flow only is interesting).
        if algo == Algo::EzFlow {
            for node in [12usize, 10, 8, 6, 11, 9] {
                let pts: Vec<(f64, f64)> = net.metrics.cw[node]
                    .points()
                    .into_iter()
                    .map(|(t, v)| (t, v.log2()))
                    .collect();
                rep.figures.push(render_series(
                    &format!("Fig8 EZ-flow: log2(cw) at node {node}"),
                    &pts,
                    64,
                    6,
                ));
                rep.series(format!("fig8_cw{node}"), "t_s", "log2_cw", pts.clone());
            }
        }
        per_algo.insert(algo.name(), net);
    }

    // Period statistics.
    let periods = [
        ("P1 (F1 alone)", t0, t1),
        ("P2 (F1+F2)", t1, t2),
        ("P3 (F1 alone)", t2, t3),
    ];
    let paper: &[(&str, &str, &str, &str)] = &[
        ("P1 (F1 alone)", "802.11", "153.2 kb/s", "4.1 s"),
        ("P1 (F1 alone)", "EZ-flow", "183.9 kb/s (+20%)", "0.2 s"),
        ("P2 (F1+F2)", "802.11", "76.5 kb/s per flow", "5.8 s"),
        ("P2 (F1+F2)", "EZ-flow", "82.1 kb/s per flow", "negligible"),
        ("P3 (F1 alone)", "802.11", "~ P1", "~ P1"),
        ("P3 (F1 alone)", "EZ-flow", "~ P1", "~ P1"),
    ];
    // The paper quotes steady-state values; each period's first half is
    // the adaptation transient (visible in Figs. 6-7 as the spikes at
    // flow arrivals), so the comparable numbers come from the late half.
    let mut stats = std::collections::HashMap::new();
    for algo in [Algo::Plain, Algo::EzFlow] {
        let net = &per_algo[algo.name()];
        for (label, from, to) in periods {
            let late = from + (to - from) / 2;
            let flows: Vec<u32> = if label.contains("F1+F2") {
                vec![0, 1]
            } else {
                vec![0]
            };
            let tput: f64 = flows
                .iter()
                .map(|f| net.metrics.mean_kbps(*f, late, to))
                .sum::<f64>()
                / flows.len() as f64;
            let delay: f64 = flows
                .iter()
                .map(|f| net.metrics.delay_net[f].window(late, to).mean)
                .sum::<f64>()
                / flows.len() as f64;
            let whole_delay: f64 = flows
                .iter()
                .map(|f| net.metrics.delay_net[f].window(from, to).mean)
                .sum::<f64>()
                / flows.len() as f64;
            let p = paper
                .iter()
                .find(|(l, a, _, _)| *l == label && *a == algo.name())
                .expect("paper row");
            rep.row(
                format!("{label} [{}]: per-flow throughput (steady)", algo.name()),
                p.2.to_string(),
                format!("{tput:.1} kb/s"),
            );
            rep.row(
                format!("{label} [{}]: delay steady / whole period", algo.name()),
                p.3.to_string(),
                format!("{} / {}", fsecs(delay), fsecs(whole_delay)),
            );
            stats.insert((label, algo.name()), (tput, delay));
        }
        // Windowed fairness over the two-flow period: the per-bin floor
        // exposes starvation stretches that the period mean smooths over.
        let (f_min, f_mean) = super::fairness_windows(net, &[0, 1], t1, t2);
        rep.row(
            format!("P2 [{}]: fairness_min_window (Jain)", algo.name()),
            "-",
            format!("{f_min:.2} (mean {f_mean:.2})"),
        );
    }

    // Adapted windows at the end of P1 and P2 (EZ-flow).
    let ez = &per_algo[Algo::EzFlow.name()];
    let cw_at = |node: usize, t: Time| -> f64 {
        ez.metrics.cw[node]
            .points()
            .iter()
            .take_while(|&&(ts, _)| ts <= t.as_secs_f64())
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(32.0)
    };
    rep.row(
        "end of P1: relay windows (cw10..cw2)",
        "2^4",
        format!("{} / {} / {}", cw_at(10, t1), cw_at(8, t1), cw_at(6, t1)),
    );
    rep.row(
        "end of P1: source window cw12",
        "2^7",
        format!("{}", cw_at(12, t1)),
    );
    rep.row(
        "end of P2: source windows cw12 / cw11",
        "2^11",
        format!("{} / {}", cw_at(12, t2), cw_at(11, t2)),
    );

    let g = |l: &str, a: Algo| stats[&(l, a.name())];
    let (k1p, d1p) = g("P1 (F1 alone)", Algo::Plain);
    let (k1e, d1e) = g("P1 (F1 alone)", Algo::EzFlow);
    let (k2p, d2p) = g("P2 (F1+F2)", Algo::Plain);
    let (k2e, d2e) = g("P2 (F1+F2)", Algo::EzFlow);
    let (k3e, d3e) = g("P3 (F1 alone)", Algo::EzFlow);
    rep.check("P1: EZ-flow gains throughput", k1e > k1p);
    rep.check(
        "P1: EZ-flow cuts steady-state delay by >= 3x",
        d1e < d1p / 3.0,
    );
    rep.check("P2: EZ-flow >= 802.11 throughput", k2e > 0.95 * k2p);
    // Our stabilized queues settle mid-band ([b_min, b_max]) rather than
    // near-empty as in the paper's ns-2 runs, leaving a ~3 s residual
    // two-flow delay; the improvement factor is ~2.5-3x instead of the
    // paper's order of magnitude. See EXPERIMENTS.md for the discussion.
    rep.check(
        "P2: EZ-flow cuts steady-state delay by >= 2.5x",
        d2e < d2p / 2.5,
    );
    // Recovery: after F2 leaves, EZ-flow's delay must fall well below the
    // congested two-flow level and throughput must return toward P1's.
    // (Comparing against P1's own delay would be tighter but is too
    // seed/scale-sensitive: both values sit near the noise floor.)
    rep.check(
        "P3: EZ-flow re-adapts after F2 leaves (recovers from P2 congestion)",
        d3e < 0.6 * d2p && k3e > 0.85 * k1e,
    );
    rep.check(
        "EZ-flow source window >> relay windows at end of P1",
        cw_at(12, t1) >= 4.0 * cw_at(10, t1),
    );
    rep
}
