//! **Fig. 1** — buffer evolution of the relay nodes in 3- and 4-hop
//! chains under plain IEEE 802.11: the 3-hop network is stable, the 4-hop
//! network is turbulent with the first relay's buffer building up to
//! saturation.

use ezflow_sim::{Duration, Time};
use ezflow_stats::render_series;

use super::{run_net, Algo};
use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let secs = scale.secs(1800);
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let mut rep = Report::new("fig1", "buffer evolution: 3-hop stable vs 4-hop turbulent");
    rep.note(format!(
        "saturated single flow, standard 802.11, {secs} s per run (paper: 1800 s)"
    ));

    let mut means = Vec::new();
    for hops in [3usize, 4] {
        let topo = ezflow_net::topo::chain(hops, Time::ZERO, until);
        let net = run_net(
            &topo,
            Algo::Plain,
            until,
            &scale,
            &format!("fig1_{hops}hop"),
        );
        for node in 1..hops.min(3) {
            let series = net.metrics.buffer[node].binned_mean(Duration::from_secs(30));
            rep.figures.push(render_series(
                &format!("{hops}-hop chain: buffer of node {node} [packets]"),
                &series,
                64,
                10,
            ));
            rep.series(
                format!("{hops}hop_node{node}_buffer"),
                "t_s",
                "packets",
                series,
            );
        }
        let b1 = net.metrics.buffer[1].window(half, until).mean;
        means.push((hops, b1));
        rep.row(
            format!("{hops}-hop: node-1 mean buffer (2nd half)"),
            if hops == 3 {
                "bounded, no build-up"
            } else {
                "builds up to saturation (~50)"
            },
            format!("{b1:.1} packets"),
        );
        rep.row(
            format!("{hops}-hop: end-to-end throughput"),
            if hops == 3 {
                "(4-hop is ~2x smaller than 3-hop)"
            } else {
                ""
            },
            format!("{:.0} kb/s", net.metrics.mean_kbps(0, half, until)),
        );
        rep.row(
            format!("{hops}-hop: relay overflow drops"),
            if hops == 3 { "none" } else { "sustained" },
            format!("{}", net.metrics.queue_drops[1]),
        );
    }

    let b3 = means[0].1;
    let b4 = means[1].1;
    rep.check("3-hop first relay stays off the ceiling (< 35)", b3 < 35.0);
    rep.check("4-hop first relay saturates (> 40)", b4 > 40.0);
    rep
}
