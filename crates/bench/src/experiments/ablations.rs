//! **Ablations** (beyond the paper's tables): sensitivity of EZ-flow to
//! its parameters, robustness to link loss, the hop-count stability
//! boundary, and a controller tournament against the static penalty and
//! an idealized DiffQ.
//!
//! Every sub-experiment is a sweep of independent runs, so each one
//! batches its runs through the [`crate::runner::SweepRunner`] and
//! consumes the outcomes in job order.

use ezflow_core::baselines::{static_penalty_factory, DiffQController};
use ezflow_core::{EzFlowConfig, EzFlowController};
use ezflow_net::controller::{Controller, ControllerFactory, FixedController};
use ezflow_net::{topo, Network};
use ezflow_sim::Time;

use super::Algo;
use crate::report::{Report, Scale};
use crate::runner::Job;

/// Runs all ablations.
pub fn run(scale: Scale) -> Report {
    let mut rep = Report::new("ablations", "design-choice ablations (beyond the paper)");
    thresholds(&mut rep, scale);
    loss_robustness(&mut rep, scale);
    hop_boundary(&mut rep, scale);
    tournament(&mut rep, scale);
    hw_cap(&mut rep, scale);
    rts_cts(&mut rep, scale);
    eifs(&mut rep, scale);
    bidirectional(&mut rep, scale);
    windowed_transport(&mut rep, scale);
    rep
}

#[derive(Clone, Copy)]
struct Outcome {
    kbps: f64,
    delay: f64,
    b1: f64,
}

/// The three numbers every chain ablation reads off a finished run.
fn outcome(net: &Network, secs: u64) -> Outcome {
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    Outcome {
        kbps: net.metrics.mean_kbps(0, half, until),
        delay: net.metrics.delay_net[&0].window(half, until).mean,
        b1: net.metrics.buffer[1].window(half, until).mean,
    }
}

/// One K-hop chain run as a sweep job.
fn chain_job(
    label: impl Into<String>,
    hops: usize,
    secs: u64,
    scale: Scale,
    loss: f64,
    rts_cts: bool,
    make: ControllerFactory,
) -> Job {
    let until = Time::from_secs(secs);
    let t = topo::chain(hops, Time::ZERO, until);
    let mut spec = scale.spec(&t, scale.seed);
    if loss > 0.0 {
        spec.loss = ezflow_phy::LossModel::uniform(loss);
    }
    spec.mac.rts_cts = rts_cts;
    Job::new(label, spec, until, make)
}

/// Runs a batch of chain jobs and reduces each to its [`Outcome`].
fn run_outcomes(scale: Scale, secs: u64, jobs: Vec<Job>) -> Vec<Outcome> {
    scale
        .runner()
        .run_map(jobs, move |_, net| outcome(&net, secs))
}

/// `b_max` / `b_min` sweep on the 4-hop chain.
fn thresholds(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(600);
    rep.note(format!("threshold sweeps: 4-hop chain, {secs} s per run"));
    let b_maxes = [5.0, 10.0, 20.0, 40.0];
    let b_mins = [0.05, 1.0, 5.0];
    let mut jobs = Vec::new();
    for b_max in b_maxes {
        let cfg = EzFlowConfig {
            b_max,
            ..EzFlowConfig::default()
        };
        jobs.push(chain_job(
            format!("ablations/b_max={b_max}"),
            4,
            secs,
            scale,
            0.0,
            false,
            Box::new(move |_| Box::new(EzFlowController::new(cfg, 32))),
        ));
    }
    for b_min in b_mins {
        let cfg = EzFlowConfig {
            b_min,
            ..EzFlowConfig::default()
        };
        jobs.push(chain_job(
            format!("ablations/b_min={b_min}"),
            4,
            secs,
            scale,
            0.0,
            false,
            Box::new(move |_| Box::new(EzFlowController::new(cfg, 32))),
        ));
    }
    let outs = run_outcomes(scale, secs, jobs);

    let mut all_stable = true;
    for (b_max, o) in b_maxes.iter().zip(&outs[..b_maxes.len()]) {
        all_stable &= o.b1 < 15.0;
        rep.row(
            format!("b_max = {b_max}"),
            "stable for any reasonable b_max (§3.3)",
            format!("{:.0} kb/s, {:.2} s, b1 = {:.1}", o.kbps, o.delay, o.b1),
        );
    }
    for (b_min, o) in b_mins.iter().zip(&outs[b_maxes.len()..]) {
        rep.row(
            format!("b_min = {b_min}"),
            "b_min must be ~0.1 or nodes become too aggressive (§3.3)",
            format!("{:.0} kb/s, {:.2} s, b1 = {:.1}", o.kbps, o.delay, o.b1),
        );
    }
    rep.check(
        "EZ-flow stabilizes the 4-hop chain for every b_max tried",
        all_stable,
    );
}

/// Fault injection: uniform Bernoulli link loss (missed overhearings and
/// retransmissions everywhere) — the BOE's robustness claim.
fn loss_robustness(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(600);
    let until = Time::from_secs(secs);
    let losses = [0.0, 0.1, 0.2];

    let mut jobs: Vec<Job> = losses
        .iter()
        .map(|&loss| {
            chain_job(
                format!("ablations/loss={loss}"),
                4,
                secs,
                scale,
                loss,
                false,
                Box::new(|_| Box::new(EzFlowController::with_defaults())),
            )
        })
        .collect();
    // Bursty fades (Gilbert-Elliott) are the BOE's worst case: whole runs
    // of overhearings vanish at once. Same mean loss rate (~13%) as the
    // Bernoulli rows, but clustered.
    let bursty = ["802.11", "EZ-flow"];
    for (name, make) in bursty
        .iter()
        .zip([Algo::Plain.factory(), Algo::EzFlow.factory()])
    {
        let t = topo::chain(4, Time::ZERO, until);
        let mut spec = scale.spec(&t, scale.seed);
        spec.loss =
            ezflow_phy::LossModel::ideal().with_burst(ezflow_phy::loss::GilbertElliott::classic());
        jobs.push(Job::new(
            format!("ablations/bursty/{name}"),
            spec,
            until,
            make,
        ));
    }
    let outs = run_outcomes(scale, secs, jobs);

    let mut stable = true;
    for (&loss, o) in losses.iter().zip(&outs[..losses.len()]) {
        if loss > 0.0 {
            stable &= o.b1 < 15.0;
        }
        rep.row(
            format!("link loss {:.0}%", loss * 100.0),
            "BOE tolerates missed overhearings (§3.2)",
            format!("{:.0} kb/s, {:.2} s, b1 = {:.1}", o.kbps, o.delay, o.b1),
        );
    }
    let mut b1s = Vec::new();
    for (name, o) in bursty.iter().zip(&outs[losses.len()..]) {
        rep.row(
            format!("bursty loss (Gilbert-Elliott, ~13% mean) [{name}]"),
            "BOE tolerates clustered missed overhearings (§3.2)",
            format!("{:.0} kb/s, {:.2} s, b1 = {:.1}", o.kbps, o.delay, o.b1),
        );
        b1s.push(o.b1);
    }
    // The fades themselves throttle the source via retries, so even
    // 802.11's queue rides below the ceiling here; the meaningful claim
    // is that EZ-flow still extracts a clear improvement from clustered,
    // BOE-hostile losses.
    rep.check(
        "EZ-flow still improves the queue under bursty loss",
        b1s[1] < 0.8 * b1s[0],
    );
    rep.check("EZ-flow still stabilizes with 10-20% link loss", stable);
}

/// Stability boundary in hop count, 802.11 vs EZ-flow.
fn hop_boundary(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(600);
    let hops_range: Vec<usize> = (2..=8).collect();
    let mut jobs = Vec::new();
    for &hops in &hops_range {
        jobs.push(chain_job(
            format!("ablations/hops={hops}/802.11"),
            hops,
            secs,
            scale,
            0.0,
            false,
            Box::new(|_| Box::new(FixedController::standard())),
        ));
        jobs.push(chain_job(
            format!("ablations/hops={hops}/EZ-flow"),
            hops,
            secs,
            scale,
            0.0,
            false,
            Box::new(|_| Box::new(EzFlowController::with_defaults())),
        ));
    }
    let outs = run_outcomes(scale, secs, jobs);

    let mut plain_unstable = true;
    let mut ez_stable = true;
    for (i, &hops) in hops_range.iter().enumerate() {
        let plain = outs[2 * i];
        let ez = outs[2 * i + 1];
        if hops >= 4 {
            plain_unstable &= plain.b1 > 35.0;
        }
        ez_stable &= ez.b1 < 15.0;
        rep.row(
            format!("{hops}-hop chain b1 (802.11 vs EZ-flow)"),
            if hops <= 3 {
                "stable / stable"
            } else {
                "turbulent / stable"
            },
            format!("{:.1} / {:.1} packets", plain.b1, ez.b1),
        );
    }
    rep.check(">= 4-hop chains are turbulent under 802.11", plain_unstable);
    rep.check("EZ-flow stabilizes every chain length", ez_stable);
}

/// Controller tournament on the 8-hop chain.
fn tournament(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(900);
    let until = Time::from_secs(secs);
    let t = topo::chain(8, Time::ZERO, until);
    let flows = t.flows.clone();

    let entries: Vec<(&str, ControllerFactory)> = vec![
        ("802.11", Algo::Plain.factory()),
        ("EZ-flow", Algo::EzFlow.factory()),
        (
            "static penalty q=1/128 [Aziz09]",
            Box::new(static_penalty_factory(&flows, 16, 128)),
        ),
        (
            "DiffQ (idealized, message passing)",
            Box::new(|_| Box::new(DiffQController::new()) as Box<dyn Controller>),
        ),
    ];

    let names: Vec<&str> = entries.iter().map(|(n, _)| *n).collect();
    let jobs: Vec<Job> = entries
        .into_iter()
        .map(|(name, make)| {
            chain_job(
                format!("ablations/tournament/{name}"),
                8,
                secs,
                scale,
                0.0,
                false,
                make,
            )
        })
        .collect();
    let outs = run_outcomes(scale, secs, jobs);

    let mut results = Vec::new();
    for (name, o) in names.iter().zip(outs) {
        rep.row(
            format!("8-hop chain [{name}]"),
            match *name {
                "802.11" => "turbulent baseline",
                "EZ-flow" => "stable, no message passing",
                "static penalty q=1/128 [Aziz09]" => "stable but topology-dependent",
                _ => "stable but needs message passing",
            },
            format!("{:.0} kb/s, {:.2} s, b1 = {:.1}", o.kbps, o.delay, o.b1),
        );
        results.push((*name, o));
    }
    let get = |n: &str| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, o)| o)
            .expect("ran")
    };
    let plain = get("802.11");
    let ez = get("EZ-flow");
    let sq = get("static penalty q=1/128 [Aziz09]");
    rep.check(
        "EZ-flow beats 802.11 on throughput and delay",
        ez.kbps > plain.kbps && ez.delay < plain.delay / 5.0,
    );
    rep.check(
        "EZ-flow matches the hand-tuned static penalty (within 15%)",
        ez.kbps > 0.85 * sq.kbps,
    );
}

/// §5.1 says enabling RTS/CTS is useless here because the sensing range
/// already covers the protection area — and it cannot help against nodes
/// beyond decode range. We implemented the handshake, so we can test that
/// claim instead of assuming it.
fn rts_cts(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(600);
    let jobs = vec![
        chain_job(
            "ablations/rts/802.11",
            4,
            secs,
            scale,
            0.0,
            false,
            Box::new(|_| Box::new(FixedController::standard())),
        ),
        chain_job(
            "ablations/rts/802.11+rts",
            4,
            secs,
            scale,
            0.0,
            true,
            Box::new(|_| Box::new(FixedController::standard())),
        ),
        chain_job(
            "ablations/rts/EZ-flow+rts",
            4,
            secs,
            scale,
            0.0,
            true,
            Box::new(|_| Box::new(EzFlowController::with_defaults())),
        ),
    ];
    let outs = run_outcomes(scale, secs, jobs);
    let (plain, with_rts, ez_rts) = (outs[0], outs[1], outs[2]);
    rep.row(
        "4-hop chain: 802.11 / 802.11+RTS-CTS / EZ-flow+RTS-CTS (b1)",
        "RTS/CTS does not cure turbulence (§5.1); EZ-flow works regardless",
        format!(
            "{:.1} / {:.1} / {:.1} packets",
            plain.b1, with_rts.b1, ez_rts.b1
        ),
    );
    rep.check(
        "RTS/CTS alone does not stabilize the 4-hop chain",
        with_rts.b1 > 35.0,
    );
    rep.check("EZ-flow stabilizes even with RTS/CTS on", ez_rts.b1 < 15.0);
}

/// EIFS (implemented but, like in ns-2-era studies, off by default): the
/// source senses-but-cannot-decode the traffic of relays 2-3 hops away, so
/// EIFS penalizes it on every such frame — a *built-in* brake on the very
/// asymmetry that causes turbulence. Does the stability boundary move?
fn eifs(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(600);
    let until = Time::from_secs(secs);
    let hops_tried = [3usize, 4];
    let jobs: Vec<Job> = hops_tried
        .iter()
        .map(|&hops| {
            let t = topo::chain(hops, Time::ZERO, until);
            let mut spec = scale.spec(&t, scale.seed);
            spec.mac.eifs = true;
            Job::new(
                format!("ablations/eifs/{hops}-hop"),
                spec,
                until,
                Box::new(|_| Box::new(FixedController::standard()) as Box<dyn Controller>),
            )
        })
        .collect();
    let outs = run_outcomes(scale, secs, jobs);

    let mut outcomes = Vec::new();
    for (&hops, o) in hops_tried.iter().zip(outs) {
        rep.row(
            format!("{hops}-hop chain, 802.11 + EIFS (b1, kb/s)"),
            "EIFS throttles the deaf source; skipped in the baseline model",
            format!("b1 = {:.1}, {:.0} kb/s", o.b1, o.kbps),
        );
        outcomes.push((hops, o.b1));
    }
    // Measured outcome: EIFS calms the 3-hop chain further (it brakes the
    // source on every sensed-not-decoded frame) but does NOT cure the
    // 4-hop turbulence — the paper's stability boundary is robust to this
    // modeling choice.
    rep.check(
        "the Fig. 1 stability boundary survives EIFS (3-hop calm, 4-hop turbulent)",
        outcomes[0].1 < 15.0 && outcomes[1].1 > 40.0,
    );
}

/// The paper argues EZ-flow also helps traffic that cannot rely on
/// end-to-end feedback; here two opposite-direction flows share a chain.
fn bidirectional(rep: &mut Report, scale: Scale) {
    use ezflow_net::topo::{FlowSpec, Topology};
    let secs = scale.secs(900);
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let base = topo::chain(5, Time::ZERO, until);
    let mut flows = base.flows.clone();
    flows.push(FlowSpec::saturating(
        1,
        vec![5, 4, 3, 2, 1, 0],
        Time::ZERO,
        until,
    ));
    let t = Topology {
        name: "bidir-chain".into(),
        positions: base.positions.clone(),
        loss: base.loss.clone(),
        flows,
    };
    let names = ["802.11", "EZ-flow"];
    let jobs: Vec<Job> = names
        .iter()
        .zip([Algo::Plain.factory(), Algo::EzFlow.factory()])
        .map(|(name, make)| {
            Job::new(
                format!("ablations/bidir/{name}"),
                scale.spec(&t, scale.seed),
                until,
                make,
            )
        })
        .collect();
    let per_run = scale.runner().run_map(jobs, move |_, net| {
        let k0 = net.metrics.mean_kbps(0, half, until);
        let k1 = net.metrics.mean_kbps(1, half, until);
        let d: f64 = (net.metrics.delay_net[&0].window(half, until).mean
            + net.metrics.delay_net[&1].window(half, until).mean)
            / 2.0;
        let fw = super::fairness_windows(&net, &[0, 1], half, until);
        (k0, k1, d, fw)
    });

    let mut results = Vec::new();
    for (name, (k0, k1, d, (f_min, f_mean))) in names.iter().zip(per_run) {
        rep.row(
            format!("5-hop bidirectional [{name}]"),
            "EZ-flow handles flows without end-to-end feedback (§2.3)",
            format!(
                "{k0:.0} + {k1:.0} kb/s, mean delay {d:.2} s, \
                 fairness_min_window {f_min:.2} (mean {f_mean:.2})"
            ),
        );
        results.push((k0 + k1, d));
    }
    rep.check(
        "bidirectional: EZ-flow keeps aggregate within 10% and cuts delay >= 3x",
        results[1].0 > 0.9 * results[0].0 && results[1].1 < results[0].1 / 3.0,
    );
}

/// Closed-loop (TCP-like) traffic: a fixed-window transport self-clocks,
/// so queues stay bounded even under 802.11. Two regimes are probed:
///
/// * a **moderate window** (12, a few times the path's packet BDP) keeps
///   every queue below `b_min..b_max`'s upper edge, so EZ-flow's CAA
///   stays inert and must not disturb the flow — §2.3's compatibility
///   claim;
/// * an **oversized window** (40) pins the relay queues near `b_max`,
///   violating EZ-flow's open-loop design assumption: the two control
///   loops interact and EZ-flow can throttle the network to a lower
///   operating point. We report it as a documented limitation instead of
///   hiding it.
fn windowed_transport(rep: &mut Report, scale: Scale) {
    use ezflow_net::topo::{FlowSpec, Topology};
    let secs = scale.secs(600);
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let base = topo::chain(4, Time::ZERO, until);

    let windows = [12usize, 40];
    let names = ["802.11", "EZ-flow"];
    let mut jobs = Vec::new();
    let mut keys = Vec::new();
    for &window in &windows {
        let t = Topology {
            name: "windowed-chain".into(),
            positions: base.positions.clone(),
            loss: base.loss.clone(),
            flows: vec![FlowSpec::windowed(
                0,
                vec![0, 1, 2, 3, 4],
                window,
                Time::ZERO,
                until,
            )],
        };
        for (name, make) in names
            .iter()
            .zip([Algo::Plain.factory(), Algo::EzFlow.factory()])
        {
            jobs.push(Job::new(
                format!("ablations/window-{window}/{name}"),
                scale.spec(&t, scale.seed),
                until,
                make,
            ));
            keys.push((window, *name));
        }
    }
    let per_run = scale.runner().run_map(jobs, move |_, net| {
        let k = net.metrics.mean_kbps(0, half, until);
        let d = net.metrics.delay_net[&0].window(half, until);
        let p95 = net.metrics.delay_net[&0]
            .percentile_in(half, until, 0.95)
            .unwrap_or(0.0);
        (k, d.mean, p95)
    });

    let mut moderate = Vec::new();
    for ((window, name), (k, d_mean, p95)) in keys.iter().zip(per_run) {
        rep.row(
            format!("4-hop chain, window-{window} transport [{name}]"),
            if *window == 12 {
                "moderate window: EZ-flow must not interfere (§2.3)"
            } else {
                "oversized window: control loops interact (limitation)"
            },
            format!("{k:.0} kb/s, delay {d_mean:.2} s (p95 {p95:.2})"),
        );
        if *window == 12 {
            moderate.push((k, d_mean));
        }
    }
    rep.check(
        "moderate window: EZ-flow preserves throughput (within 15%)",
        moderate[1].0 > 0.85 * moderate[0].0,
    );
    rep.check(
        "moderate window: EZ-flow does not substantially worsen delay",
        moderate[1].1 <= moderate[0].1 * 1.3,
    );
}

/// The MadWifi 2^10 cap: how much stabilization it costs on a long chain.
fn hw_cap(rep: &mut Report, scale: Scale) {
    let secs = scale.secs(900);
    let jobs = vec![
        chain_job(
            "ablations/cap/2^10",
            8,
            secs,
            scale,
            0.0,
            false,
            Box::new(|_| Box::new(EzFlowController::new(EzFlowConfig::testbed(), 32))),
        ),
        chain_job(
            "ablations/cap/2^15",
            8,
            secs,
            scale,
            0.0,
            false,
            Box::new(|_| Box::new(EzFlowController::with_defaults())),
        ),
    ];
    let outs = run_outcomes(scale, secs, jobs);
    let (capped, free) = (outs[0], outs[1]);
    rep.row(
        "8-hop chain, EZ-flow capped at 2^10 vs 2^15",
        "cap limits stabilization (§4.3); simulation without it fully stabilizes (§5)",
        format!(
            "capped: {:.0} kb/s, {:.2} s, b1 = {:.1} | uncapped: {:.0} kb/s, {:.2} s, b1 = {:.1}",
            capped.kbps, capped.delay, capped.b1, free.kbps, free.delay, free.b1
        ),
    );
    rep.check(
        "both variants keep the 8-hop chain stable (b1 well below 50)",
        free.b1 < 25.0 && capped.b1 < 25.0,
    );
}
