//! Scenario-spec runs: the bridge from a declarative JSON document
//! (`scenarios/*.json`, see [`ezflow_net::scenario`]) to the same
//! [`Report`] machinery the named experiments use.
//!
//! One spec expands into a sweep of runs (controller × queue-cap × seed),
//! executed through the [`crate::runner::SweepRunner`] like every other
//! experiment. Each run reports aggregate throughput, end-to-end p99
//! latency (from the per-flow log histograms) and windowed Jain fairness
//! (floor and mean), and attaches the usual cross-layer
//! [`RunSnapshot`](ezflow_net::RunSnapshot)
//! plus, when the flight recorder is armed, the per-packet lifecycle
//! export — so `--trace-dir` / `--telemetry-dir` / `--json` work on spec
//! runs exactly as they do on the named experiments.

use std::path::{Path, PathBuf};

use ezflow_net::{topo, ScenarioSpec, Topology};
use ezflow_sim::Time;

use super::{fairness_windows, Algo};
use crate::report::{Report, Scale};
use crate::runner::Job;

/// Reads and parses a spec file; errors carry the path and, for syntax
/// errors, the line/column the in-tree JSON kernel reports.
pub fn load(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    ScenarioSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Scales a nominal spec duration the way `--quick` / `--time=F` demand.
/// Spec durations are the author's own, not the paper's multi-kilosecond
/// timelines, so the floor is 1 s — not the 30 s the named experiments
/// use to protect the CAA's convergence.
fn scaled_until(until: Time, scale: &Scale) -> Time {
    Time::from_micros(((until.as_micros() as f64 * scale.time) as u64).max(1_000_000))
}

/// Compiles and runs every sweep point of `spec`, returning one report.
/// Fails (as a message, not a panic) when the document is invalid or
/// names a controller this harness doesn't have.
pub fn run_spec(spec: &ScenarioSpec, scale: &Scale) -> Result<Report, String> {
    let compiled = spec.compile().map_err(|e| e.to_string())?;
    let until = scaled_until(compiled.until, scale);

    let mut jobs = Vec::with_capacity(compiled.points.len());
    for point in &compiled.points {
        let algo = Algo::from_name(&point.controller).ok_or_else(|| {
            format!(
                "spec `{}`: unknown controller '{}' (known: 802.11, EZ-flow, EZ-flow (2^10 cap))",
                compiled.name, point.controller
            )
        })?;
        let mut ns = scale.spec(&compiled.topology, point.seed);
        ns.queue_cap = point.queue_cap;
        ns.flight_cap = scale.flight_cap;
        let label = point.label.replace('/', "_");
        jobs.push(
            Job::new(point.label.clone(), ns, until, algo.factory()).with_setup(move |net| {
                crate::telemetry_out::attach(net, &label);
                crate::audit_out::attach(net, &label);
            }),
        );
    }

    let mut rep = Report::new(compiled.name.clone(), spec_title(spec));
    rep.note(format!(
        "{} nodes, {} flows, {} run(s), {} simulated each",
        compiled.topology.positions.len(),
        compiled.topology.flows.len(),
        compiled.points.len(),
        until
    ));
    let flows: Vec<u32> = compiled.topology.flows.iter().map(|f| f.id).collect();
    let from = compiled
        .topology
        .flows
        .iter()
        .map(|f| f.start)
        .min()
        .unwrap_or(Time::ZERO)
        .min(until);

    let nets = scale.runner().run(jobs);
    for (point, mut net) in compiled.points.iter().zip(nets) {
        rep.snapshots.push(net.snapshot(&point.label));
        if scale.flight_cap > 0 {
            rep.lifecycle(
                point.label.replace('/', "_"),
                net.flight.to_jsonl(),
                net.flight.stats(),
            );
        }
        let (tput, p99, jain) = summarize(&net, &flows, from, until);
        rep.row(
            format!("{}: aggregate throughput", point.label),
            "-",
            format!("{tput:.1} kb/s"),
        );
        rep.row(
            format!("{}: e2e latency p99", point.label),
            "-",
            format!("{:.3} s", p99),
        );
        rep.row(
            format!("{}: windowed Jain fairness", point.label),
            "-",
            format!("{:.2} (mean {:.2})", jain.0, jain.1),
        );
        rep.check(
            format!("{}: traffic flowed", point.label),
            net.metrics.delivered.values().sum::<u64>() > 0,
        );
    }
    Ok(rep)
}

/// Aggregate throughput (kb/s, summed over flows), p99 network latency
/// across all flows' merged histograms (seconds) and windowed Jain
/// fairness `(min, mean)` over `[from, until)`. Public so `mesh_bench`
/// reports the exact numbers the spec harness would.
pub fn summarize(
    net: &ezflow_net::Network,
    flows: &[u32],
    from: Time,
    until: Time,
) -> (f64, f64, (f64, f64)) {
    let tput: f64 = flows
        .iter()
        .map(|f| net.metrics.mean_kbps(*f, from, until))
        .sum();
    let mut merged = ezflow_stats::LogHistogram::new();
    for f in flows {
        if let Some(h) = net.metrics.flow_latency.get(f) {
            merged.merge(h);
        }
    }
    let p99 = merged.quantile(0.99) as f64 / 1e6;
    let jain = fairness_windows(net, flows, from, until);
    (tput, p99, jain)
}

fn spec_title(spec: &ScenarioSpec) -> String {
    if spec.description.is_empty() {
        format!("scenario spec `{}`", spec.name)
    } else {
        spec.description.clone()
    }
}

/// The named specs `--emit-spec` can regenerate: each is the hand-built
/// constructor re-expressed as data. The committed `scenarios/*.json`
/// files are exactly these, pretty-printed — pinned by the byte-identity
/// tests in `tests/scenario_spec.rs`.
pub fn emit(name: &str) -> Option<ScenarioSpec> {
    let (topo, desc, until): (Topology, &str, Time) = match name {
        "scenario1" => (
            topo::scenario1(),
            "Fig. 5: two 8-hop flows merging toward a gateway (Figs. 6-8)",
            topo::scenario1_end(),
        ),
        "scenario2" => (
            topo::scenario2(),
            "Fig. 9: 25-node mesh, 2 gateways, staggered flow arrivals (Figs. 10-11)",
            topo::scenario2_end(),
        ),
        "grid4x4" => (
            topo::grid(4, 4, 140.0, Time::ZERO, Time::from_secs(60)),
            "4x4 lattice, one west-to-east flow per row",
            Time::from_secs(60),
        ),
        _ => return None,
    };
    Some(ScenarioSpec::from_topology(
        &topo,
        desc,
        until,
        42,
        &["802.11", "EZ-flow"],
    ))
}

/// Names [`emit`] accepts, for `--list` and usage messages.
pub const EMITTABLE: &[&str] = &["scenario1", "scenario2", "grid4x4"];

/// Discovers `*.json` files under `dir` (sorted by file name) and reads
/// each one's name and description, tolerating unparsable files by
/// listing the error instead — `--list` must never die on one bad spec.
pub fn discover(dir: &Path) -> Vec<(PathBuf, String)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let line = match load(&path) {
                Ok(spec) => {
                    let points = spec
                        .compile()
                        .map(|c| c.points.len().to_string())
                        .unwrap_or_else(|_| "?".into());
                    format!("{} — {} ({} run(s))", spec.name, spec_title(&spec), points)
                }
                Err(e) => format!("UNREADABLE: {e}"),
            };
            (path, line)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_resolves_every_display_name_and_slug() {
        for algo in [Algo::Plain, Algo::EzFlow, Algo::EzFlowTestbed] {
            assert_eq!(Algo::from_name(algo.name()), Some(algo));
            assert_eq!(Algo::from_name(&algo.slug()), Some(algo));
        }
        assert_eq!(Algo::from_name("diffserv"), None);
    }

    #[test]
    fn emit_covers_exactly_the_advertised_names() {
        for name in EMITTABLE {
            assert!(emit(name).is_some(), "{name} must be emittable");
        }
        assert!(emit("fig1").is_none());
    }

    #[test]
    fn spec_run_reports_throughput_latency_and_fairness() {
        let spec = emit("grid4x4").unwrap();
        let mut scale = Scale::quick();
        scale.time = 0.1; // 6 s simulated — enough for packets to land
        let rep = run_spec(&spec, &scale).unwrap();
        assert_eq!(rep.snapshots.len(), 2, "one run per controller");
        assert!(rep.all_ok(), "traffic must flow in a saturated grid");
        assert!(rep
            .rows
            .iter()
            .any(|r| r.label.contains("aggregate throughput")));
        assert!(rep.rows.iter().any(|r| r.label.contains("p99")));
        assert!(rep.rows.iter().any(|r| r.label.contains("Jain")));
    }

    #[test]
    fn unknown_controller_is_a_message_not_a_panic() {
        let mut spec = emit("grid4x4").unwrap();
        spec.sweep.controllers = vec!["tcp-reno".into()];
        let err = run_spec(&spec, &Scale::quick()).unwrap_err();
        assert!(err.contains("unknown controller 'tcp-reno'"), "{err}");
    }
}
