//! **Table 4 / Fig. 12** and **Theorem 1** — the analytical model's
//! experiments.

use ezflow_analysis::{
    drift_by_region, exact_drift, pattern_distribution, table4_distribution, walk_stats,
    ModelConfig, Region,
};
use ezflow_sim::SimRng;

use crate::report::{Report, Scale};

const REGION_NAMES: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];

/// Table 4: closed forms vs the elimination kernel vs Monte Carlo.
pub fn table4(scale: Scale) -> Report {
    let mut rep = Report::new(
        "table4",
        "transmission-pattern probabilities per region (K = 4)",
    );
    let cw = [32u32, 64, 128, 16];
    rep.note(format!(
        "windows cw = {cw:?}; 'paper' column = Table 4 closed forms; measured = \
         exact elimination kernel (Monte-Carlo agreement checked separately)"
    ));

    let samples = (200_000.0 * scale.time.max(0.05)) as usize;
    let mut rng = SimRng::new(scale.seed);
    let mut worst_exact: f64 = 0.0;
    let mut worst_mc: f64 = 0.0;
    for region in ezflow_analysis::regions::ALL_REGIONS {
        let table = table4_distribution(region, &cw);
        let kernel = pattern_distribution(&region.contenders(), &cw);
        // Monte Carlo frequencies.
        let mut counts: std::collections::HashMap<Vec<bool>, u64> =
            std::collections::HashMap::new();
        for _ in 0..samples {
            let z = ezflow_analysis::kernel::sample_pattern(&region.contenders(), &cw, &mut rng);
            *counts.entry(z).or_insert(0) += 1;
        }
        for (pat, p_table) in &table {
            let p_kernel = kernel
                .iter()
                .find(|(q, _)| q == pat)
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            let p_mc = *counts.get(pat).unwrap_or(&0) as f64 / samples as f64;
            worst_exact = worst_exact.max((p_kernel - p_table).abs());
            worst_mc = worst_mc.max((p_mc - p_table).abs());
            let z_text: String = pat.iter().map(|&b| if b { '1' } else { '0' }).collect();
            rep.row(
                format!("region {} z=[{}]", REGION_NAMES[region.index()], z_text),
                format!("{p_table:.4}"),
                format!("kernel {p_kernel:.4}, MC {p_mc:.4}"),
            );
        }
    }
    rep.check(
        "elimination kernel == Table 4 closed forms (1e-9)",
        worst_exact < 1e-9,
    );
    rep.check("Monte Carlo within 1% of Table 4", worst_mc < 0.01);
    rep
}

/// Theorem 1: empirical stability of the slotted model.
pub fn theorem1(scale: Scale) -> Report {
    let mut rep = Report::new(
        "theorem1",
        "Lyapunov stability of the 4-hop slotted model under EZ-flow",
    );
    let slots = (2_000_000.0 * scale.time.max(0.05)) as u64;
    rep.note(format!("{slots} slots per walk; S = {{max b_i < 30}}"));

    let mut outcomes = Vec::new();
    for (name, adaptive) in [("802.11 (fixed cw)", false), ("EZ-flow (Eq. 2)", true)] {
        for hops in [4usize, 6, 8] {
            let cfg = ModelConfig {
                hops,
                adaptive,
                ..ModelConfig::default()
            };
            let s = walk_stats(cfg, slots, 30, scale.seed);
            rep.row(
                format!("{hops}-hop walk [{name}]"),
                if adaptive {
                    "h bounded a.s. (Theorem 1)"
                } else {
                    "unstable for K >= 4 [Aziz09]"
                },
                format!(
                    "final h = {}, max b = {}, time in S = {:.0}%, thr = {:.3}/slot",
                    s.final_h,
                    s.max_b,
                    s.frac_in_s * 100.0,
                    s.throughput
                ),
            );
            outcomes.push((adaptive, hops, s));
        }
    }

    // Per-region drift (the Foster condition, empirically).
    let drift_slots = (30_000.0 * scale.time.max(0.1)) as u64;
    for (name, adaptive) in [("fixed", false), ("EZ-flow", true)] {
        let cfg = ModelConfig {
            adaptive,
            ..ModelConfig::default()
        };
        let reports = drift_by_region(cfg, drift_slots, 25, scale.seed);
        for r in &reports {
            if r.visits == 0 {
                continue;
            }
            let region = ezflow_analysis::regions::ALL_REGIONS[r.region];
            // Exact drift under matching windows: equal 32s for the fixed
            // baseline; for EZ-flow, the windows Eq. 2 converges to in
            // that region (cw_i maxed iff b_{i+1} is over threshold, the
            // last hop at mincw — its successor is the sink).
            let cw = if adaptive {
                let mask = region.contenders();
                let mut cw = [16u32; 4];
                for i in 0..3 {
                    if mask[i + 1] {
                        cw[i] = 32_768;
                    }
                }
                cw
            } else {
                [32u32; 4]
            };
            let (edh, edb1) = exact_drift(region, &cw);
            rep.row(
                format!("drift in region {} [{name}]", REGION_NAMES[r.region]),
                paper_drift(adaptive, r.region),
                format!(
                    "MC dh = {:+.3}, db1 = {:+.3} | exact dh = {edh:+.3}, db1 = {edb1:+.3}",
                    r.mean_drift, r.mean_drift_b1
                ),
            );
        }
        if adaptive {
            let max_dh = reports
                .iter()
                .filter(|r| r.visits > 0)
                .map(|r| r.mean_drift)
                .fold(f64::NEG_INFINITY, f64::max);
            rep.check(
                "EZ-flow one-step drift of h is <= 0 in every region outside S",
                max_dh < 0.05,
            );
        } else {
            let d = |reg: Region| reports[reg.index()].mean_drift_b1;
            rep.check(
                "fixed windows pump b1 in regions D, F, H (+1, +1/2, +1/4)",
                (d(Region::D) - 1.0).abs() < 0.05
                    && (d(Region::F) - 0.5).abs() < 0.1
                    && (d(Region::H) - 0.25).abs() < 0.1,
            );
        }
    }

    let ez_bounded = outcomes
        .iter()
        .filter(|(a, _, _)| *a)
        .all(|(_, _, s)| s.max_b < 200 && s.frac_in_s > 0.9);
    let fixed_diverges = outcomes
        .iter()
        .filter(|(a, h, _)| !*a && (*h == 4 || *h == 6))
        .all(|(_, _, s)| s.final_h > (slots / 1000).max(200));
    rep.check("EZ-flow walks stay bounded for K = 4, 6, 8", ez_bounded);
    rep.check("fixed-cw walks diverge (K = 4, 6)", fixed_diverges);
    rep
}

fn paper_drift(adaptive: bool, region: usize) -> String {
    let name = REGION_NAMES[region];
    if adaptive {
        match name {
            "F" | "H" => "negative (k=1 region in the proof)".into(),
            "B" => "negative over k=25 steps".into(),
            "C" => "negative over k=4 steps".into(),
            "D" | "E" => "negative over k=2 steps".into(),
            "G" => "negative over k=3 steps".into(),
            _ => String::new(),
        }
    } else {
        match name {
            "D" => "+1 (hidden pair pumps b1)".into(),
            "F" => "+1/2".into(),
            "H" => "+1/4".into(),
            _ => String::new(),
        }
    }
}
