//! **Table 1** — capacity of each link of the testbed flow F1.
//!
//! The paper measured each campus link in isolation over 1200 s. We run
//! the calibrated testbed loss model one link at a time (a saturated
//! single-hop flow over that link) and compare the measured capacity with
//! the paper's numbers — this validates the calibration that every other
//! testbed experiment rests on. The per-link runs are independent, so
//! they fan out through the [`crate::runner::SweepRunner`].

use ezflow_net::topo::{self, FlowSpec, Topology, TABLE1_KBPS};
use ezflow_sim::Time;

use super::Algo;
use crate::report::{Report, Scale};
use crate::runner::Job;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let secs = scale.secs(1200);
    let until = Time::from_secs(secs);
    let warm = Time::from_secs(10.min(secs / 4));
    let mut rep = Report::new("table1", "per-link capacity of the testbed (flow F1)");
    rep.note(format!(
        "each link isolated, saturated, {secs} s (paper: 1200 s); loss calibrated from Table 1"
    ));

    let base = topo::testbed(true, false, Time::ZERO, until);
    let jobs: Vec<Job> = (0..TABLE1_KBPS.len())
        .map(|i| {
            let flow = FlowSpec::saturating(0, vec![i, i + 1], Time::ZERO, until);
            let t = Topology {
                name: "testbed-link".into(),
                positions: base.positions.clone(),
                loss: base.loss.clone(),
                flows: vec![flow],
            };
            Job::new(
                format!("table1/l{i}"),
                scale.spec(&t, scale.seed ^ i as u64),
                until,
                Algo::Plain.factory(),
            )
        })
        .collect();
    let measured = scale.runner().run_map(jobs, |_, net| {
        let sm = net
            .metrics
            .throughput
            .get(&0)
            .expect("flow 0")
            .window_kbps(warm, until);
        (net.metrics.mean_kbps(0, warm, until), sm.std)
    });

    let mut worst_err: f64 = 0.0;
    for (i, (&target, &(mean, std))) in TABLE1_KBPS.iter().zip(measured.iter()).enumerate() {
        let err = (mean - target).abs() / target * 100.0;
        worst_err = worst_err.max(err);
        rep.row(
            format!("l{i} ({i} -> {})", i + 1),
            format!("{target:.0} kb/s"),
            format!("{mean:.0} kb/s (sigma {std:.0}, err {err:.1}%)"),
        );
    }
    rep.check("every link capacity within 8% of Table 1", worst_err < 8.0);
    rep
}
