//! **Fig. 4** — buffer evolution of the testbed relays for F1 (7-hop)
//! and F2 (4-hop), with and without EZ-flow.
//!
//! Paper numbers: average buffered packets without EZ-flow 41.6 (N1),
//! 43.1 (N2), 43.7 (N4); with EZ-flow 29.5 (N1), 5.2 (N2), 5.3 (N4); all
//! other relays negligible. N1's partial relief (29.5 rather than ~5) is
//! the MadWifi `CWmin <= 2^10` hardware cap in action — which we model.
//!
//! The four runs (two flows × two algorithms) are independent and fan
//! out through the [`crate::runner::SweepRunner`]; the buffer series the
//! figures need ride back on the returned networks.

use ezflow_net::topo;
use ezflow_sim::{Duration, Time};
use ezflow_stats::render_series;

use super::Algo;
use crate::report::{Report, Scale};
use crate::runner::Job;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let secs = scale.secs(2000);
    let until = Time::from_secs(secs);
    let warm = Time::from_secs(secs / 10);
    let mut rep = Report::new(
        "fig4",
        "testbed buffer evolution for F1 and F2, 802.11 vs EZ-flow (2^10 cap)",
    );
    rep.note(format!(
        "calibrated testbed, one flow at a time, {secs} s per run (paper: 2000 s)"
    ));

    // (flow on, nodes whose buffers the paper plots)
    let cases = [
        ("F1", true, false, vec![1usize, 2, 3]),
        ("F2", false, true, vec![4usize, 5, 6]),
    ];
    let algos = [Algo::Plain, Algo::EzFlowTestbed];
    let mut jobs = Vec::new();
    let mut keys = Vec::new();
    for (label, f1, f2, nodes) in &cases {
        let t = topo::testbed(*f1, *f2, Time::ZERO, until);
        for algo in algos {
            jobs.push(Job::new(
                format!("fig4/{label}/{}", algo.name()),
                scale.spec(&t, scale.seed),
                until,
                algo.factory(),
            ));
            keys.push((*label, algo, nodes.clone()));
        }
    }
    let nets = scale.runner().run(jobs);

    let mut avg = std::collections::HashMap::new();
    for ((label, algo, nodes), net) in keys.iter().zip(nets.iter()) {
        for &node in nodes {
            let mean = net.metrics.buffer[node].window(warm, until).mean;
            avg.insert((*label, algo.name(), node), mean);
            rep.row(
                format!("{label} {}: mean buffer N{node}", algo.name()),
                paper_value(label, *algo, node),
                format!("{mean:.1} packets"),
            );
        }
        // One representative figure per run: the flow's first relay.
        let first = nodes[0];
        let series = net.metrics.buffer[first].binned_mean(Duration::from_secs(20));
        rep.figures.push(render_series(
            &format!("{label} {}: buffer of N{first} [packets]", algo.name()),
            &series,
            64,
            8,
        ));
    }

    let b = |l: &str, a: Algo, n: usize| *avg.get(&(l, a.name(), n)).unwrap_or(&f64::NAN);
    rep.check(
        "without EZ-flow, F1's head relays saturate",
        b("F1", Algo::Plain, 1) > 35.0 && b("F1", Algo::Plain, 2) > 20.0,
    );
    rep.check(
        "without EZ-flow, F2's first relay (N4) saturates",
        b("F2", Algo::Plain, 4) > 35.0,
    );
    rep.check(
        "EZ-flow deflates N2 and N4 by >= 4x",
        b("F1", Algo::EzFlowTestbed, 2) < b("F1", Algo::Plain, 2) / 4.0
            && b("F2", Algo::EzFlowTestbed, 4) < b("F2", Algo::Plain, 4) / 4.0,
    );
    rep
}

fn paper_value(label: &str, algo: Algo, node: usize) -> String {
    match (label, algo, node) {
        ("F1", Algo::Plain, 1) => "41.6".into(),
        ("F1", Algo::Plain, 2) => "43.1".into(),
        ("F1", Algo::EzFlowTestbed, 1) => "29.5 (2^10 cap limits relief)".into(),
        ("F1", Algo::EzFlowTestbed, 2) => "5.2".into(),
        ("F2", Algo::Plain, 4) => "43.7".into(),
        ("F2", Algo::EzFlowTestbed, 4) => "5.3".into(),
        _ => "very small".into(),
    }
}
