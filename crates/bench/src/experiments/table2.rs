//! **Table 2** — testbed mean throughput, standard deviation and Jain
//! fairness, for each flow alone and for the parking-lot combination,
//! with and without EZ-flow.
//!
//! Paper: F1 alone 119 ± 25; F2 alone 157 ± 29; together F1 starves
//! (7 ± 15 vs 143 ± 34, FI = 0.55). EZ-flow: 148 ± 28, 185 ± 26, and
//! together 71 ± 31 / 110 ± 35 with FI = 0.96.
//!
//! The six runs (three flow combinations × two algorithms) are
//! independent, so they go through the [`crate::runner::SweepRunner`] as
//! one batch.

use ezflow_net::topo;
use ezflow_sim::Time;
use ezflow_stats::jain_index;

use super::Algo;
use crate::report::{kbps, Report, Scale};
use crate::runner::Job;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let secs = scale.secs(1800);
    let until = Time::from_secs(secs);
    let warm = Time::from_secs(secs / 10);
    let mut rep = Report::new("table2", "testbed throughput / fairness, 802.11 vs EZ-flow");
    rep.note(format!(
        "calibrated testbed, {secs} s per run (paper: 1800 s); EZ-flow with the 2^10 cap"
    ));

    let cases: [(&str, bool, bool); 3] = [
        ("F1 alone", true, false),
        ("F2 alone", false, true),
        ("F1 + F2", true, true),
    ];
    let paper: &[(&str, &str, [&str; 2])] = &[
        ("F1 alone", "802.11", ["119 ± 25", ""]),
        ("F1 alone", "EZ-flow (2^10 cap)", ["148 ± 28", ""]),
        ("F2 alone", "802.11", ["157 ± 29", ""]),
        ("F2 alone", "EZ-flow (2^10 cap)", ["185 ± 26", ""]),
        ("F1 + F2", "802.11", ["7 ± 15", "143 ± 34 (FI 0.55)"]),
        (
            "F1 + F2",
            "EZ-flow (2^10 cap)",
            ["71 ± 31", "110 ± 35 (FI 0.96)"],
        ),
    ];

    // Batch order: cases × algorithms, algorithms fastest.
    let algos = [Algo::Plain, Algo::EzFlowTestbed];
    let mut jobs = Vec::new();
    let mut keys = Vec::new();
    for (label, f1, f2) in &cases {
        let t = topo::testbed(*f1, *f2, Time::ZERO, until);
        for algo in algos {
            jobs.push(Job::new(
                format!("table2/{label}/{}", algo.name()),
                scale.spec(&t, scale.seed),
                until,
                algo.factory(),
            ));
            keys.push((*label, algo));
        }
    }
    let outcomes = scale.runner().run_map(jobs, move |_, net| {
        let mut kb = Vec::new();
        for (&f, ts) in net.metrics.throughput.iter() {
            let sm = ts.window_kbps(warm, until);
            kb.push((f, sm.mean, sm.std));
        }
        let fi = jain_index(&kb.iter().map(|&(_, m, _)| m).collect::<Vec<_>>());
        let flows: Vec<u32> = kb.iter().map(|&(f, _, _)| f).collect();
        let fw = super::fairness_windows(&net, &flows, warm, until);
        (kb, fi, fw)
    });

    let mut results = std::collections::HashMap::new();
    for ((label, algo), (kb, fi, (f_min, f_mean))) in keys.iter().zip(outcomes) {
        let p = paper
            .iter()
            .find(|(l, a, _)| l == label && *a == algo.name())
            .map(|(_, _, v)| v)
            .expect("paper row");
        if kb.len() == 1 {
            rep.row(
                format!("{label} [{}]", algo.name()),
                p[0].to_string(),
                kbps(kb[0].1, kb[0].2),
            );
        } else {
            rep.row(
                format!("{label} F1 [{}]", algo.name()),
                p[0].to_string(),
                kbps(kb[0].1, kb[0].2),
            );
            rep.row(
                format!("{label} F2 [{}]", algo.name()),
                p[1].to_string(),
                format!("{} (FI {fi:.2})", kbps(kb[1].1, kb[1].2)),
            );
            rep.row(
                format!("{label} [{}]: fairness_min_window (Jain)", algo.name()),
                "-",
                format!("{f_min:.2} (mean {f_mean:.2})"),
            );
        }
        results.insert((*label, algo.name()), (kb, fi));
    }

    let get = |l: &'static str, a: Algo| results[&(l, a.name())].clone();
    let (both_plain, fi_plain) = get("F1 + F2", Algo::Plain);
    let (both_ez, fi_ez) = get("F1 + F2", Algo::EzFlowTestbed);
    let (f1_plain, _) = get("F1 alone", Algo::Plain);
    let (f1_ez, _) = get("F1 alone", Algo::EzFlowTestbed);
    let (f2_plain, _) = get("F2 alone", Algo::Plain);
    let (f2_ez, _) = get("F2 alone", Algo::EzFlowTestbed);

    rep.check(
        "EZ-flow improves each single-flow throughput",
        f1_ez[0].1 > f1_plain[0].1 && f2_ez[0].1 > f2_plain[0].1,
    );
    rep.check(
        "802.11 parking lot starves the long flow (F1 << F2)",
        both_plain[0].1 < both_plain[1].1 / 3.0,
    );
    rep.check(
        "EZ-flow repairs fairness (FI rises substantially)",
        fi_ez > fi_plain + 0.15,
    );
    rep.check(
        "EZ-flow raises the parking-lot aggregate",
        both_ez[0].1 + both_ez[1].1 > both_plain[0].1 + both_plain[1].1,
    );
    rep
}
