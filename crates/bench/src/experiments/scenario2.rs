//! **Scenario 2** (Figs. 10, 11 + Table 3) — three flows with hidden
//! sources (Fig. 9). F1 and F2 run from the start; F3 joins for the
//! middle period; F1 finishes alone.
//!
//! Paper (Table 3): period 1 under 802.11 gives F1 = 145.6 / F2 = 39.9
//! (FI 0.75, F2 suffers ~15 s delays from the hidden-node situation);
//! EZ-flow equalizes to 89.9 / 100.3 (FI 1.00). Period 2 under 802.11
//! starves F2 and F3 (129.9 / 31.0 / 27.3, FI 0.64, cumulative 188.2);
//! EZ-flow reaches 304.6 cumulative (+62%), FI 0.80, delays an order of
//! magnitude lower. Period 3 recovers the single-flow operating point
//! (150.0 vs 179.9 kb/s).

use ezflow_net::topo;
use ezflow_sim::Duration;
use ezflow_stats::{jain_index, render_series};

use super::scenario1::scale_timeline;
use super::{run_net, Algo};
use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let tl = scale_timeline(scale, &[5, 1805, 3605, 4500]);
    let (t0, t1, t2, t3) = (tl[0], tl[1], tl[2], tl[3]);

    let mut topo = topo::scenario2();
    topo.flows[0].start = t0;
    topo.flows[0].stop = t3;
    topo.flows[1].start = t0;
    topo.flows[1].stop = t2;
    topo.flows[2].start = t1;
    topo.flows[2].stop = t2;

    let mut rep = Report::new(
        "scenario2",
        "Figs. 10-11 + Table 3: three flows with hidden sources",
    );
    rep.note(format!(
        "F1 {}..{}; F2 {}..{}; F3 {}..{} (paper: 5..4500 / 5..3605 / 1805..3605 s)",
        t0, t3, t0, t2, t1, t2
    ));

    let mut per_algo = std::collections::HashMap::new();
    for algo in [Algo::Plain, Algo::EzFlow] {
        let net = run_net(
            &topo,
            algo,
            t3,
            &scale,
            &format!("scenario2_{}", algo.slug()),
        );
        if scale.flight_cap > 0 {
            rep.lifecycle(algo.slug(), net.flight.to_jsonl(), net.flight.stats());
        }
        for f in [0u32, 1, 2] {
            rep.figures.push(render_series(
                &format!("Fig10 {}: delay of F{} [s]", algo.name(), f + 1),
                &net.metrics.delay_net[&f].binned_mean(Duration::from_secs(20)),
                64,
                7,
            ));
        }
        if algo == Algo::EzFlow {
            for node in [0usize, 1, 10, 11, 19, 20] {
                let pts: Vec<(f64, f64)> = net.metrics.cw[node]
                    .points()
                    .into_iter()
                    .map(|(t, v)| (t, v.log2()))
                    .collect();
                rep.figures.push(render_series(
                    &format!("Fig11 EZ-flow: log2(cw) at node {node}"),
                    &pts,
                    64,
                    6,
                ));
            }
        }
        per_algo.insert(algo.name(), net);
    }

    // Table 3.
    let periods = [
        ("P1 (F1,F2)", t0, t1, vec![0u32, 1]),
        ("P2 (F1,F2,F3)", t1, t2, vec![0u32, 1, 2]),
        ("P3 (F1)", t2, t3, vec![0u32]),
    ];
    let paper: &[(&str, &str, &str)] = &[
        ("P1 (F1,F2)", "802.11", "145.6 / 39.9, FI 0.75"),
        ("P1 (F1,F2)", "EZ-flow", "89.9 / 100.3, FI 1.00"),
        ("P2 (F1,F2,F3)", "802.11", "129.9 / 31.0 / 27.3, FI 0.64"),
        ("P2 (F1,F2,F3)", "EZ-flow", "29.5 / 139.7 / 135.4, FI 0.80"),
        ("P3 (F1)", "802.11", "150.0"),
        ("P3 (F1)", "EZ-flow", "179.9"),
    ];
    let mut stats = std::collections::HashMap::new();
    for algo in [Algo::Plain, Algo::EzFlow] {
        let net = &per_algo[algo.name()];
        for (label, from, to, flows) in &periods {
            let kb: Vec<f64> = flows
                .iter()
                .map(|f| net.metrics.mean_kbps(*f, *from, *to))
                .collect();
            let fi = jain_index(&kb);
            let delay: f64 = flows
                .iter()
                .map(|f| net.metrics.delay_net[f].window(*from, *to).mean)
                .sum::<f64>()
                / flows.len() as f64;
            let p = paper
                .iter()
                .find(|(l, a, _)| l == label && *a == algo.name())
                .expect("paper row");
            let kb_text = kb
                .iter()
                .map(|k| format!("{k:.1}"))
                .collect::<Vec<_>>()
                .join(" / ");
            rep.row(
                format!("{label} [{}]: kb/s, FI", algo.name()),
                p.2.to_string(),
                format!("{kb_text}, FI {fi:.2} (mean delay {delay:.2} s)"),
            );
            stats.insert((*label, algo.name()), (kb.clone(), fi, delay));
            if flows.len() > 1 {
                let (f_min, f_mean) = super::fairness_windows(net, flows, *from, *to);
                rep.row(
                    format!("{label} [{}]: fairness_min_window (Jain)", algo.name()),
                    "-",
                    format!("{f_min:.2} (mean {f_mean:.2})"),
                );
            }
        }
    }

    let g = |l: &str, a: Algo| stats[&(l, a.name())].clone();
    let (kb1p, fi1p, d1p) = g("P1 (F1,F2)", Algo::Plain);
    let (kb1e, fi1e, d1e) = g("P1 (F1,F2)", Algo::EzFlow);
    let (kb2p, fi2p, d2p) = g("P2 (F1,F2,F3)", Algo::Plain);
    let (kb2e, fi2e, d2e) = g("P2 (F1,F2,F3)", Algo::EzFlow);
    let (kb3p, _, _) = g("P3 (F1)", Algo::Plain);
    let (kb3e, _, _) = g("P3 (F1)", Algo::EzFlow);

    rep.check(
        "P1: 802.11 treats the flows unequally, EZ-flow improves FI",
        fi1e > fi1p,
    );
    rep.check("P1: EZ-flow cuts mean delay by >= 3x", d1e < d1p / 3.0);
    rep.check(
        "P2: EZ-flow raises cumulative throughput",
        kb2e.iter().sum::<f64>() > kb2p.iter().sum::<f64>(),
    );
    rep.check("P2: EZ-flow improves FI", fi2e > fi2p);
    rep.check("P2: EZ-flow cuts mean delay by >= 3x", d2e < d2p / 3.0);
    rep.check(
        "P3: EZ-flow single-flow throughput >= 802.11's",
        kb3e[0] > kb3p[0],
    );
    let _ = kb1p;
    let _ = kb1e;
    rep
}
