//! **Seed robustness** (beyond the paper): the qualitative conclusions
//! must not depend on the random seed. Runs the headline 4-hop comparison
//! across many independent seeds and reports the outcome *distributions*.

use ezflow_core::EzFlowController;
use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::{topo, Network};
use ezflow_sim::Time;
use ezflow_stats::mean_std;

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let secs = scale.secs(400);
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let seeds: Vec<u64> = (0..10).map(|i| scale.seed.wrapping_add(1000 * i)).collect();

    let mut rep = Report::new(
        "seeds",
        "seed robustness of the 4-hop comparison (10 independent seeds)",
    );
    rep.note(format!("{secs} s per run, seeds {:?}", seeds));

    let mut stable_everywhere = true;
    let mut ez_wins_everywhere = true;
    for (name, ez) in [("802.11", false), ("EZ-flow", true)] {
        let mut b1s = Vec::new();
        let mut kbps = Vec::new();
        let mut delays = Vec::new();
        for &seed in &seeds {
            let topo = topo::chain(4, Time::ZERO, until);
            let make: Box<dyn Fn(usize) -> Box<dyn Controller>> = if ez {
                Box::new(|_| Box::new(EzFlowController::with_defaults()))
            } else {
                Box::new(|_| Box::new(FixedController::standard()))
            };
            let mut net = Network::from_topology(&topo, seed, &*make);
            net.run_until(until);
            b1s.push(net.metrics.buffer[1].window(half, until).mean);
            kbps.push(net.metrics.mean_kbps(0, half, until));
            delays.push(net.metrics.delay_net[&0].window(half, until).mean);
        }
        let b1 = mean_std(&b1s);
        let k = mean_std(&kbps);
        let d = mean_std(&delays);
        rep.row(
            format!("{name}: b1 over seeds"),
            if ez { "always ~empty" } else { "always ~50" },
            format!(
                "{:.1} ± {:.1} (range {:.1}..{:.1})",
                b1.mean, b1.std, b1.min, b1.max
            ),
        );
        rep.row(
            format!("{name}: throughput over seeds"),
            "",
            format!("{:.0} ± {:.0} kb/s", k.mean, k.std),
        );
        rep.row(
            format!("{name}: delay over seeds"),
            "",
            format!("{:.2} ± {:.2} s (max {:.2})", d.mean, d.std, d.max),
        );
        if ez {
            stable_everywhere &= b1.max < 10.0;
            ez_wins_everywhere &= d.max < 1.0;
        } else {
            stable_everywhere &= b1.min > 40.0;
        }
    }
    rep.check(
        "every seed shows 802.11 saturated and EZ-flow empty at node 1",
        stable_everywhere,
    );
    rep.check(
        "every seed keeps EZ-flow delay under 1 s",
        ez_wins_everywhere,
    );
    rep
}
