//! **Seed robustness** (beyond the paper): the qualitative conclusions
//! must not depend on the random seed. Runs the headline 4-hop comparison
//! across many independent seeds and reports the outcome *distributions*.
//!
//! The 20 runs (2 algorithms × 10 seeds) are completely independent, so
//! they go through the [`crate::runner::SweepRunner`] as one batch.

use ezflow_core::EzFlowController;
use ezflow_net::controller::{ControllerFactory, FixedController};
use ezflow_net::topo;
use ezflow_sim::Time;
use ezflow_stats::mean_std;

use crate::report::{Report, Scale};
use crate::runner::Job;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let secs = scale.secs(400);
    let until = Time::from_secs(secs);
    let half = Time::from_secs(secs / 2);
    let seeds: Vec<u64> = (0..10).map(|i| scale.seed.wrapping_add(1000 * i)).collect();

    let mut rep = Report::new(
        "seeds",
        "seed robustness of the 4-hop comparison (10 independent seeds)",
    );
    rep.note(format!("{secs} s per run, seeds {:?}", seeds));

    // One batch: [802.11 × seeds..., EZ-flow × seeds...], in that order.
    let algos: [(&str, bool); 2] = [("802.11", false), ("EZ-flow", true)];
    let mut jobs = Vec::new();
    for (name, ez) in algos {
        for &seed in &seeds {
            let t = topo::chain(4, Time::ZERO, until);
            let make: ControllerFactory = if ez {
                Box::new(|_| Box::new(EzFlowController::with_defaults()))
            } else {
                Box::new(|_| Box::new(FixedController::standard()))
            };
            jobs.push(Job::new(
                format!("seeds/{name}/{seed}"),
                scale.spec(&t, seed),
                until,
                make,
            ));
        }
    }
    // Reduce each run to its three numbers on the worker thread.
    let outcomes = scale.runner().run_map(jobs, |_, net| {
        (
            net.metrics.buffer[1].window(half, until).mean,
            net.metrics.mean_kbps(0, half, until),
            net.metrics.delay_net[&0].window(half, until).mean,
        )
    });

    let mut stable_everywhere = true;
    let mut ez_wins_everywhere = true;
    for (a, (name, ez)) in algos.iter().enumerate() {
        let runs = &outcomes[a * seeds.len()..(a + 1) * seeds.len()];
        let b1s: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let kbps: Vec<f64> = runs.iter().map(|r| r.1).collect();
        let delays: Vec<f64> = runs.iter().map(|r| r.2).collect();
        let b1 = mean_std(&b1s);
        let k = mean_std(&kbps);
        let d = mean_std(&delays);
        rep.row(
            format!("{name}: b1 over seeds"),
            if *ez { "always ~empty" } else { "always ~50" },
            format!(
                "{:.1} ± {:.1} (range {:.1}..{:.1})",
                b1.mean, b1.std, b1.min, b1.max
            ),
        );
        rep.row(
            format!("{name}: throughput over seeds"),
            "",
            format!("{:.0} ± {:.0} kb/s", k.mean, k.std),
        );
        rep.row(
            format!("{name}: delay over seeds"),
            "",
            format!("{:.2} ± {:.2} s (max {:.2})", d.mean, d.std, d.max),
        );
        if *ez {
            stable_everywhere &= b1.max < 10.0;
            ez_wins_everywhere &= d.max < 1.0;
        } else {
            stable_everywhere &= b1.min > 40.0;
        }
    }
    rep.check(
        "every seed shows 802.11 saturated and EZ-flow empty at node 1",
        stable_everywhere,
    );
    rep.check(
        "every seed keeps EZ-flow delay under 1 s",
        ez_wins_everywhere,
    );
    rep
}
