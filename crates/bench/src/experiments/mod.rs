//! The experiment implementations, one module per paper artifact.
//!
//! See DESIGN.md §5 for the experiment index mapping each module to the
//! figure/table it regenerates.

pub mod ablations;
pub mod analysis_exps;
pub mod fig1;
pub mod fig4;
pub mod scenario1;
pub mod scenario2;
pub mod seeds;
pub mod table1;
pub mod table2;

use ezflow_core::EzFlowController;
use ezflow_net::controller::{ControllerFactory, FixedController};
use ezflow_net::{topo::Topology, Network};
use ezflow_sim::Time;

use crate::report::{Report, Scale};

/// Which flow-control algorithm a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algo {
    /// Plain IEEE 802.11 (the paper's baseline).
    Plain,
    /// EZ-flow with the paper's simulation parameters.
    EzFlow,
    /// EZ-flow with the testbed's MadWifi `CWmin <= 2^10` clamp.
    EzFlowTestbed,
}

impl Algo {
    /// Per-node controller factory (`Send + Sync`, so one factory can be
    /// handed to the sweep runner's worker threads).
    pub fn factory(self) -> ControllerFactory {
        match self {
            Algo::Plain => Box::new(|_| Box::new(FixedController::standard())),
            Algo::EzFlow => Box::new(|_| Box::new(EzFlowController::with_defaults())),
            Algo::EzFlowTestbed => Box::new(|_| {
                Box::new(EzFlowController::new(
                    ezflow_core::EzFlowConfig::testbed(),
                    32,
                ))
            }),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Plain => "802.11",
            Algo::EzFlow => "EZ-flow",
            Algo::EzFlowTestbed => "EZ-flow (2^10 cap)",
        }
    }
}

/// Builds and runs a topology to `until` under `algo`, with the scale's
/// seed, flight-recorder capacity and scheduler backend.
///
/// [`Scale::flight_cap`] arms the per-packet flight recorder (`0` = off,
/// the experiments' default). Neither recording nor the scheduler choice
/// perturbs a run — the simulation content is bit-identical either way.
pub fn run_net(topo: &Topology, algo: Algo, until: Time, scale: &Scale) -> Network {
    let mut spec = scale.spec(topo, scale.seed);
    spec.flight_cap = scale.flight_cap;
    let mut net = Network::new(spec, &*algo.factory());
    net.run_until(until);
    net
}

/// Runs every experiment at `scale`, in index order.
pub fn run_all(scale: Scale) -> Vec<Report> {
    vec![
        fig1::run(scale),
        table1::run(scale),
        fig4::run(scale),
        table2::run(scale),
        scenario1::run(scale),
        scenario2::run(scale),
        analysis_exps::table4(scale),
        analysis_exps::theorem1(scale),
        ablations::run(scale),
        seeds::run(scale),
    ]
}

/// Experiment ids accepted by the CLI, with their runners.
pub fn by_id(id: &str, scale: Scale) -> Option<Vec<Report>> {
    let r = match id {
        "fig1" => vec![fig1::run(scale)],
        "table1" => vec![table1::run(scale)],
        "fig4" => vec![fig4::run(scale)],
        "table2" => vec![table2::run(scale)],
        "fig6" | "fig7" | "fig8" | "scenario1" => vec![scenario1::run(scale)],
        "fig10" | "fig11" | "table3" | "scenario2" => vec![scenario2::run(scale)],
        "table4" => vec![analysis_exps::table4(scale)],
        "theorem1" => vec![analysis_exps::theorem1(scale)],
        "ablations" => vec![ablations::run(scale)],
        "seeds" => vec![seeds::run(scale)],
        "all" => run_all(scale),
        _ => return None,
    };
    Some(r)
}
