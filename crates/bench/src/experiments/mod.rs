//! The experiment implementations, one module per paper artifact.
//!
//! See DESIGN.md §5 for the experiment index mapping each module to the
//! figure/table it regenerates.

pub mod ablations;
pub mod analysis_exps;
pub mod fig1;
pub mod fig4;
pub mod scenario1;
pub mod scenario2;
pub mod seeds;
pub mod spec;
pub mod table1;
pub mod table2;

use ezflow_core::EzFlowController;
use ezflow_net::controller::{ControllerFactory, FixedController};
use ezflow_net::{topo::Topology, Network};
use ezflow_sim::Time;

use crate::report::{Report, Scale};

/// Which flow-control algorithm a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algo {
    /// Plain IEEE 802.11 (the paper's baseline).
    Plain,
    /// EZ-flow with the paper's simulation parameters.
    EzFlow,
    /// EZ-flow with the testbed's MadWifi `CWmin <= 2^10` clamp.
    EzFlowTestbed,
}

impl Algo {
    /// Per-node controller factory (`Send + Sync`, so one factory can be
    /// handed to the sweep runner's worker threads).
    pub fn factory(self) -> ControllerFactory {
        match self {
            Algo::Plain => Box::new(|_| Box::new(FixedController::standard())),
            Algo::EzFlow => Box::new(|_| Box::new(EzFlowController::with_defaults())),
            Algo::EzFlowTestbed => Box::new(|_| {
                Box::new(EzFlowController::new(
                    ezflow_core::EzFlowConfig::testbed(),
                    32,
                ))
            }),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Plain => "802.11",
            Algo::EzFlow => "EZ-flow",
            Algo::EzFlowTestbed => "EZ-flow (2^10 cap)",
        }
    }

    /// File-friendly name (the display name minus path-hostile
    /// characters), used for lifecycle and telemetry export filenames.
    pub fn slug(self) -> String {
        self.name().replace(['.', ' ', '(', ')'], "")
    }

    /// Resolves a controller name from a scenario spec's `sweep.controllers`
    /// list. Accepts the display name, its slug, and the obvious aliases;
    /// `None` means the spec names a controller this harness doesn't have.
    pub fn from_name(name: &str) -> Option<Algo> {
        match name {
            "802.11" | "80211" | "plain" | "dcf" => Some(Algo::Plain),
            "EZ-flow" | "ez-flow" | "ezflow" => Some(Algo::EzFlow),
            "EZ-flow (2^10 cap)" | "EZ-flow2^10cap" | "ezflow-testbed" => Some(Algo::EzFlowTestbed),
            _ => None,
        }
    }
}

/// Builds and runs a topology to `until` under `algo`, with the scale's
/// seed, flight-recorder capacity, telemetry interval and scheduler
/// backend. `label` names the run for live exports: when the harness
/// registered a telemetry directory (see [`crate::telemetry_out`]), the
/// run streams one JSONL record per sample window to `<label>.jsonl`.
///
/// [`Scale::flight_cap`] arms the per-packet flight recorder and
/// [`Scale::telemetry_every`] the telemetry bus (both off by default).
/// Neither recorder, telemetry nor the scheduler choice perturbs a run —
/// the simulation content is bit-identical either way.
pub fn run_net(topo: &Topology, algo: Algo, until: Time, scale: &Scale, label: &str) -> Network {
    let mut spec = scale.spec(topo, scale.seed);
    spec.flight_cap = scale.flight_cap;
    let mut net = Network::new(spec, &*algo.factory());
    crate::telemetry_out::attach(&mut net, label);
    crate::audit_out::attach(&mut net, label);
    net.run_until(until);
    net
}

/// Windowed Jain fairness of `flows` over `[from, to)`: each metric bin
/// yields the flows' per-bin throughputs and a Jain index; the returned
/// pair is the *minimum* (the fairness floor a mean would hide) and the
/// mean across bins. Bins in which no listed flow moved a bit are
/// skipped; with no scored bins both values degenerate to 1.0.
pub fn fairness_windows(net: &Network, flows: &[u32], from: Time, to: Time) -> (f64, f64) {
    let bin = net.metrics.bin;
    let (mut t, mut min, mut sum, mut n) = (from, f64::INFINITY, 0.0f64, 0u32);
    while t + bin <= to {
        let kb: Vec<f64> = flows
            .iter()
            .map(|f| net.metrics.mean_kbps(*f, t, t + bin))
            .collect();
        if kb.iter().any(|&k| k > 0.0) {
            let fi = ezflow_stats::jain_index(&kb);
            min = min.min(fi);
            sum += fi;
            n += 1;
        }
        t += bin;
    }
    if n == 0 {
        (1.0, 1.0)
    } else {
        (min, sum / n as f64)
    }
}

/// Runs every experiment at `scale`, in index order.
pub fn run_all(scale: Scale) -> Vec<Report> {
    vec![
        fig1::run(scale),
        table1::run(scale),
        fig4::run(scale),
        table2::run(scale),
        scenario1::run(scale),
        scenario2::run(scale),
        analysis_exps::table4(scale),
        analysis_exps::theorem1(scale),
        ablations::run(scale),
        seeds::run(scale),
    ]
}

/// Experiment ids accepted by the CLI, with their runners.
pub fn by_id(id: &str, scale: Scale) -> Option<Vec<Report>> {
    let r = match id {
        "fig1" => vec![fig1::run(scale)],
        "table1" => vec![table1::run(scale)],
        "fig4" => vec![fig4::run(scale)],
        "table2" => vec![table2::run(scale)],
        "fig6" | "fig7" | "fig8" | "scenario1" => vec![scenario1::run(scale)],
        "fig10" | "fig11" | "table3" | "scenario2" => vec![scenario2::run(scale)],
        "table4" => vec![analysis_exps::table4(scale)],
        "theorem1" => vec![analysis_exps::theorem1(scale)],
        "ablations" => vec![ablations::run(scale)],
        "seeds" => vec![seeds::run(scale)],
        "all" => run_all(scale),
        _ => return None,
    };
    Some(r)
}
