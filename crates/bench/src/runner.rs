//! The deterministic parallel sweep runner.
//!
//! Almost every experiment in this crate is a *sweep*: the same scenario
//! run under several algorithms, seeds, or parameter points, each run
//! completely independent of the others. A run is a pure function of its
//! [`NetworkSpec`] and controller factory (see DESIGN.md §2), so fanning
//! the runs across threads cannot change any result — it only changes
//! wall-clock time. [`SweepRunner`] packages exactly that:
//!
//! * a [`Job`] is the closed description of one run (spec + controller
//!   factory + end time + label);
//! * [`SweepRunner::run`] executes a batch of jobs across plain
//!   [`std::thread::scope`] workers and returns the finished networks
//!   **in job order**, regardless of which worker finished when;
//! * `--jobs=1` (or a single job) short-circuits to plain in-line
//!   execution on the caller's thread — byte-for-byte the old serial
//!   behaviour, with no threads spawned at all.
//!
//! No work queues, no channels, no dependencies: a shared atomic cursor
//! hands out job indices, and each worker writes its results into
//! pre-allocated per-job slots. `Network: Send` (asserted at its
//! definition) is what makes the whole scheme safe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ezflow_net::{ControllerFactory, Network, NetworkSpec};
use ezflow_sim::Time;

/// A pre-run observer hook (see [`Job::setup`]).
pub type SetupHook = Box<dyn Fn(&mut Network) + Send + Sync>;

/// One independent simulation run, fully described: everything a worker
/// thread needs to build, run, and hand back a [`Network`].
pub struct Job {
    /// Human-readable tag ("table1/EZ-flow/seed42"), carried through to
    /// the result for labelling.
    pub label: String,
    /// The network to build.
    pub spec: NetworkSpec,
    /// Simulated end time.
    pub until: Time,
    /// Per-node controller factory.
    pub make: ControllerFactory,
    /// Optional hook run on the freshly-built network before the event
    /// loop starts — the place to attach observers (telemetry streaming,
    /// extra probes). Observers never perturb a run, so the hook cannot
    /// change results, only what the run exports.
    pub setup: Option<SetupHook>,
}

impl Job {
    /// Packages one run.
    pub fn new(
        label: impl Into<String>,
        spec: NetworkSpec,
        until: Time,
        make: ControllerFactory,
    ) -> Self {
        Job {
            label: label.into(),
            spec,
            until,
            make,
            setup: None,
        }
    }

    /// Attaches a pre-run hook (see [`Job::setup`]).
    pub fn with_setup(mut self, setup: impl Fn(&mut Network) + Send + Sync + 'static) -> Self {
        self.setup = Some(Box::new(setup));
        self
    }

    /// Builds and runs the network to completion (what a worker executes).
    pub fn run(self) -> Network {
        let mut net = Network::new(self.spec, &*self.make);
        if let Some(setup) = &self.setup {
            setup(&mut net);
        }
        net.run_until(self.until);
        net
    }
}

/// Fans a batch of [`Job`]s across worker threads; results come back in
/// job order, so callers index them exactly as they would a serial loop's
/// output.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    workers: usize,
}

impl SweepRunner {
    /// A runner with `workers` threads. `0` means "use the machine":
    /// [`std::thread::available_parallelism`]. `1` disables threading
    /// entirely (jobs run in-line, in order, on the caller's thread).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        SweepRunner { workers }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job, returning the finished networks in job order.
    pub fn run(&self, jobs: Vec<Job>) -> Vec<Network> {
        self.run_map(jobs, |_, net| net)
    }

    /// Runs every job and maps each finished network through `f` **on the
    /// worker thread** (useful to reduce a network to a small summary
    /// instead of shipping whole networks back). `f` receives the job
    /// index, and the output vector is in job order.
    pub fn run_map<T, F>(&self, jobs: Vec<Job>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Network) -> T + Send + Sync,
    {
        if self.workers <= 1 || jobs.len() <= 1 {
            // Serial fast path: the caller's thread, in order — identical
            // to the pre-runner code, and what `--jobs=1` guarantees.
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| f(i, job.run()))
                .collect();
        }

        let n = jobs.len();
        let slots: Vec<Mutex<Option<Job>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let threads = self.workers.min(n);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job taken twice");
                    let out = f(i, job.run());
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker left a result slot empty")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_net::{topo, FixedController};

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| {
                let t = topo::chain(3, Time::ZERO, Time::from_secs(5));
                Job::new(
                    format!("chain/{i}"),
                    NetworkSpec::from_topology(&t, 42 + i as u64),
                    Time::from_secs(5),
                    Box::new(|_| Box::new(FixedController::standard())),
                )
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_job_order() {
        // Workers race, but outputs must line up with inputs: check via a
        // map that records the job index alongside the seed-derived
        // event count.
        let serial = SweepRunner::new(1).run_map(jobs(4), |i, net| (i, net.events_processed()));
        let par = SweepRunner::new(4).run_map(jobs(4), |i, net| (i, net.events_processed()));
        assert_eq!(serial, par);
        for (i, &(j, _)) in par.iter().enumerate() {
            assert_eq!(i, j);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let mut serial = SweepRunner::new(1).run(jobs(3));
        let mut par = SweepRunner::new(3).run(jobs(3));
        for (a, b) in serial.iter_mut().zip(par.iter_mut()) {
            let mut sa = a.snapshot("x");
            let mut sb = b.snapshot("x");
            sa.perf = ezflow_net::PerfSnapshot::zeroed();
            sb.perf = ezflow_net::PerfSnapshot::zeroed();
            assert_eq!(sa, sb, "identical job must yield identical snapshot");
        }
    }

    #[test]
    fn zero_workers_resolves_to_machine_parallelism() {
        assert!(SweepRunner::new(0).workers() >= 1);
        assert_eq!(SweepRunner::new(3).workers(), 3);
    }
}
