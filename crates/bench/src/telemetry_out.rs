//! Live telemetry streaming destination for the experiment harness.
//!
//! `experiments --telemetry-dir=DIR` arms the telemetry bus on every
//! network the experiments build and registers `DIR` here; [`attach`]
//! then gives each labelled run its own `DIR/<label>.jsonl` sink, so one
//! record per sample window streams out *while the simulation runs* —
//! the `trace telemetry` inspector's input format.
//!
//! A process-wide `OnceLock` rather than a `Scale` field keeps `Scale`
//! `Copy` (it is passed by value through every experiment) while the
//! destination, set once at CLI parse time, never varies within a
//! process.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use ezflow_net::Network;

static DIR: OnceLock<PathBuf> = OnceLock::new();

/// Registers the streaming directory. First call wins; later calls are
/// ignored (the CLI parses the flag once).
pub fn set_dir(dir: impl Into<PathBuf>) {
    let _ = DIR.set(dir.into());
}

/// The registered streaming directory, if any.
pub fn dir() -> Option<&'static Path> {
    DIR.get().map(PathBuf::as_path)
}

/// Attaches `DIR/<label>.jsonl` as `net`'s telemetry sink. A no-op
/// unless both the network's telemetry bus is armed and a directory was
/// registered; creation failures are reported and skipped — telemetry
/// must never fail an experiment.
pub fn attach(net: &mut Network, label: &str) {
    let Some(dir) = dir() else { return };
    if !net.telemetry.enabled() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("telemetry dir {} unavailable: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{label}.jsonl"));
    match std::fs::File::create(&path) {
        Ok(f) => {
            net.telemetry.set_sink(Box::new(std::io::BufWriter::new(f)));
            eprintln!("streaming telemetry to {}", path.display());
        }
        Err(e) => eprintln!("telemetry sink {} failed: {e}", path.display()),
    }
}
