//! The large-mesh scale gate: runs `scenarios/mesh1k.json` (a 1,024-node
//! random-geometric mesh with 4 gateways and a mixed CBR / windowed /
//! on-off workload) and holds the simulator to a stated budget:
//!
//! ```text
//! cargo run --release -p ezflow-bench --bin mesh_bench             # measure + gate
//! cargo run --release -p ezflow-bench --bin mesh_bench -- --record # also update BENCH_sim_speed.json
//! cargo run --release -p ezflow-bench --bin mesh_bench -- --spec=scenarios/other.json
//! ```
//!
//! The gate is deliberately loose — half the demonstrated events/s, 4×
//! the demonstrated peak RSS — so it catches real regressions (an
//! accidental O(n²) in the hot path, a leak that scales with node count)
//! without flaking on machine noise. The measured numbers, plus the
//! scenario's own throughput / p99 / fairness summary, are recorded as
//! the `"mesh1k"` entry of `BENCH_sim_speed.json` by `--record`,
//! preserving every other entry in the file.

use std::path::PathBuf;

use ezflow_bench::experiments::{spec, Algo};
use ezflow_bench::report::Scale;
use ezflow_net::Network;
use ezflow_sim::{JsonValue, Time};

/// Consumed events per wall second the mesh run must sustain. The
/// demonstrated rate on the reference machine is ~1.3M events/s (lower
/// than the chain workloads' ~9M: a thousand-node mesh pays for large
/// carrier-sense neighborhoods on every transmission); gating at a
/// third of that leaves room for slower CI boxes while still catching
/// complexity regressions, which cost 10×, not 2×.
const MIN_EVENTS_PER_SEC: f64 = 400_000.0;

/// Peak-RSS ceiling for the whole process (build + run + report). The
/// demonstrated footprint is ~20 MB; a 1,024-node network that suddenly
/// needs more than this has grown a per-node-pair structure somewhere.
const MAX_PEAK_RSS_BYTES: u64 = 512 * 1024 * 1024;

/// Extracts the peak-RSS high-water mark, in bytes, from the text of a
/// `/proc/<pid>/status` document (the `VmHWM:` line, recorded by the
/// kernel in kB). Pure so the parse is unit-testable on a canned
/// document; `None` when the line is absent or malformed.
fn parse_vm_hwm(status_text: &str) -> Option<u64> {
    let line = status_text.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Peak resident set of this process, from `/proc/self/status` VmHWM
/// (linux only; `None` elsewhere, which skips the RSS gate).
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<u64> {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_bytes() -> Option<u64> {
    // Keep the pure parser compiled (and its tests meaningful) even
    // where there is no procfs to read.
    let _ = parse_vm_hwm;
    None
}

fn bench_json_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_speed.json"
    ))
}

fn default_spec_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/mesh1k.json"
    ))
}

/// One measured mesh run at a given shard count.
struct MeshRun {
    shards: usize,
    consumed: u64,
    stale_fraction: f64,
    wall: f64,
    eps: f64,
    /// Process VmHWM after this run — cumulative across runs in one
    /// process (the high-water mark never shrinks), recorded honestly
    /// as such.
    rss: Option<u64>,
    cut_fraction: f64,
    cut_deliveries: u64,
    barrier_waits: u64,
    tput: f64,
    p99: f64,
    jain: (f64, f64),
    arena_high_water: usize,
}

fn run_mesh(ns: ezflow_net::NetworkSpec, algo: Algo, flows: &[u32], until: Time) -> MeshRun {
    let shards = ns.shards.max(1);
    let mut net = Network::new(ns, &*algo.factory());
    net.run_until(until);
    let elided = net.sched_stale_elided();
    let consumed = net.events_processed() + elided + net.sched_rescheduled();
    let stale_fraction = if consumed > 0 {
        elided as f64 / consumed as f64
    } else {
        0.0
    };
    let wall = net.wall_time().as_secs_f64();
    let eps = if wall > 0.0 {
        consumed as f64 / wall
    } else {
        0.0
    };
    let (tput, p99, jain) = spec::summarize(&net, flows, Time::ZERO, until);
    MeshRun {
        shards,
        consumed,
        stale_fraction,
        wall,
        eps,
        rss: peak_rss_bytes(),
        cut_fraction: net.cut_edge_fraction(),
        cut_deliveries: net.sched_cut_deliveries(),
        barrier_waits: net.sched_barrier_waits(),
        tput,
        p99,
        jain,
        arena_high_water: net.arena_high_water(),
    }
}

fn main() -> std::process::ExitCode {
    let mut record = false;
    let mut record_sharded = false;
    let mut shards = 1usize;
    let mut spec_path = default_spec_path();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--record" => record = true,
            "--record-sharded" => record_sharded = true,
            s if s.starts_with("--shards=") => {
                shards = s["--shards=".len()..].parse().expect("a shard count");
            }
            s if s.starts_with("--spec=") => {
                spec_path = PathBuf::from(&s["--spec=".len()..]);
            }
            other => {
                eprintln!(
                    "unknown arg: {other}\n\
                     usage: mesh_bench [--record] [--record-sharded] [--shards=N] [--spec=FILE]"
                );
                return std::process::ExitCode::from(2);
            }
        }
    }

    let doc = match spec::load(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spec error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let compiled = match doc.compile() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("spec error: {}: {e}", spec_path.display());
            return std::process::ExitCode::FAILURE;
        }
    };
    // The gate runs the sweep's first point only: one canonical
    // configuration, timed alone, so the recorded rate means one thing.
    let point = &compiled.points[0];
    let Some(algo) = Algo::from_name(&point.controller) else {
        eprintln!("unknown controller in spec: {}", point.controller);
        return std::process::ExitCode::FAILURE;
    };
    let mut scale = Scale::full();
    scale.shards = shards;
    let mut ns = scale.spec(&compiled.topology, point.seed);
    ns.queue_cap = point.queue_cap;

    let flows: Vec<u32> = compiled.topology.flows.iter().map(|f| f.id).collect();
    let nodes = compiled.topology.positions.len();
    eprintln!(
        "{}: {} nodes, {} flows, {} simulated ({})",
        compiled.name,
        nodes,
        flows.len(),
        compiled.until,
        point.label
    );

    // The sharded sweep: the same canonical point at 1, 2 and 4
    // partitions, recorded as the `"sharded"` BENCH entry. Execution at
    // every shard count is the serial merge over K queues (bit-identical
    // by construction — see DESIGN.md §12), so the interesting numbers
    // are the PDES gauges: cut-edge fraction, cross-shard posts, and
    // barrier-window advances per event.
    if record_sharded {
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut runs = Vec::new();
        for k in [1usize, 2, 4] {
            let mut s = scale;
            s.shards = k;
            let mut kns = s.spec(&compiled.topology, point.seed);
            kns.queue_cap = point.queue_cap;
            let r = run_mesh(kns, algo, &flows, compiled.until);
            eprintln!(
                "  shards={k}: {:.0} events/s ({} consumed in {:.3} s), \
                 cut fraction {:.4}, {} cut deliveries, {} barrier waits",
                r.eps, r.consumed, r.wall, r.cut_fraction, r.cut_deliveries, r.barrier_waits
            );
            runs.push(r);
        }
        let serial_eps = runs[0].eps;
        let entries: Vec<JsonValue> = runs
            .iter()
            .map(|r| {
                JsonValue::obj(vec![
                    ("shards", (r.shards as f64).into()),
                    ("events_consumed", (r.consumed as f64).into()),
                    ("wall_secs", r.wall.into()),
                    ("events_per_sec", r.eps.into()),
                    ("speedup_vs_serial", (r.eps / serial_eps).into()),
                    (
                        "peak_rss_bytes",
                        r.rss.map(|b| (b as f64).into()).unwrap_or(JsonValue::Null),
                    ),
                    ("cut_edge_fraction", r.cut_fraction.into()),
                    ("cut_deliveries", (r.cut_deliveries as f64).into()),
                    ("barrier_waits", (r.barrier_waits as f64).into()),
                ])
            })
            .collect();
        let entry = JsonValue::obj(vec![
            ("spec", JsonValue::Str("scenarios/mesh1k.json".to_string())),
            ("label", JsonValue::Str(point.label.clone())),
            ("nodes", (nodes as f64).into()),
            ("sim_secs", (compiled.until.as_micros() as f64 / 1e6).into()),
            (
                "execution",
                JsonValue::Str("serial merge over K shard queues (byte-identical)".to_string()),
            ),
            ("machine_parallelism", (machine as f64).into()),
            (
                "note",
                JsonValue::Str(
                    "peak_rss_bytes is the process high-water mark and is cumulative \
                     across the runs of this sweep (shards=1 ran first)"
                        .to_string(),
                ),
            ),
            ("runs", JsonValue::Array(entries)),
            ("os", JsonValue::Str(std::env::consts::OS.to_string())),
            ("arch", JsonValue::Str(std::env::consts::ARCH.to_string())),
        ]);
        let out = bench_json_path();
        let mut docjson = match std::fs::read_to_string(&out) {
            Ok(text) => JsonValue::parse(&text).unwrap_or(JsonValue::Object(Vec::new())),
            Err(_) => JsonValue::Object(Vec::new()),
        };
        if let JsonValue::Object(fields) = &mut docjson {
            fields.retain(|(k, _)| k != "sharded");
            fields.push(("sharded".to_string(), entry));
        }
        let mut text = docjson.to_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(&out, text) {
            eprintln!("failed to write {}: {e}", out.display());
            return std::process::ExitCode::FAILURE;
        }
        eprintln!("recorded sharded entry in {}", out.display());
        return std::process::ExitCode::SUCCESS;
    }

    let r = run_mesh(ns, algo, &flows, compiled.until);
    let MeshRun {
        consumed,
        stale_fraction,
        wall,
        eps,
        rss,
        tput,
        p99,
        jain,
        ..
    } = r;

    eprintln!(
        "  {consumed} events consumed in {wall:.3} s = {eps:.0} events/s \
         (stale fraction {stale_fraction:.7}, arena high water {})",
        r.arena_high_water
    );
    if shards > 1 {
        eprintln!(
            "  shards={shards}: cut fraction {:.4}, {} cut deliveries, {} barrier waits",
            r.cut_fraction, r.cut_deliveries, r.barrier_waits
        );
    }
    eprintln!(
        "  aggregate throughput {tput:.1} kb/s, e2e p99 {p99:.3} s, Jain min {:.2} (mean {:.2})",
        jain.0, jain.1
    );
    match rss {
        Some(b) => eprintln!("  peak RSS {:.1} MB", b as f64 / (1024.0 * 1024.0)),
        None => eprintln!("  peak RSS unavailable on this platform (gate skipped)"),
    }

    let mut ok = true;
    if eps < MIN_EVENTS_PER_SEC {
        eprintln!("FAIL: {eps:.0} events/s below the {MIN_EVENTS_PER_SEC:.0} budget");
        ok = false;
    }
    if let Some(b) = rss {
        if b > MAX_PEAK_RSS_BYTES {
            eprintln!(
                "FAIL: peak RSS {} bytes exceeds the {} budget",
                b, MAX_PEAK_RSS_BYTES
            );
            ok = false;
        }
    }

    if record {
        // Record the repo-relative spec path when resolvable — the entry
        // should read the same on every machine.
        let repo_root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let spec_display = match (spec_path.canonicalize(), repo_root.canonicalize()) {
            (Ok(p), Ok(r)) => p
                .strip_prefix(&r)
                .map(|x| x.display().to_string())
                .unwrap_or_else(|_| p.display().to_string()),
            _ => spec_path.display().to_string(),
        };
        let entry = JsonValue::obj(vec![
            ("spec", JsonValue::Str(spec_display)),
            ("label", JsonValue::Str(point.label.clone())),
            ("nodes", (nodes as f64).into()),
            ("flows", (flows.len() as f64).into()),
            ("sim_secs", (compiled.until.as_micros() as f64 / 1e6).into()),
            ("events_consumed", (consumed as f64).into()),
            ("stale_fraction", stale_fraction.into()),
            ("arena_high_water", (r.arena_high_water as f64).into()),
            ("wall_secs", wall.into()),
            ("events_per_sec", eps.into()),
            ("min_events_per_sec_budget", MIN_EVENTS_PER_SEC.into()),
            (
                "peak_rss_bytes",
                rss.map(|b| (b as f64).into()).unwrap_or(JsonValue::Null),
            ),
            (
                "max_peak_rss_bytes_budget",
                (MAX_PEAK_RSS_BYTES as f64).into(),
            ),
            ("throughput_kbps", tput.into()),
            ("e2e_p99_secs", p99.into()),
            ("jain_min_window", jain.0.into()),
            ("jain_mean_window", jain.1.into()),
            ("os", JsonValue::Str(std::env::consts::OS.to_string())),
            ("arch", JsonValue::Str(std::env::consts::ARCH.to_string())),
        ]);
        let out = bench_json_path();
        let mut docjson = match std::fs::read_to_string(&out) {
            Ok(text) => JsonValue::parse(&text).unwrap_or(JsonValue::Object(Vec::new())),
            Err(_) => JsonValue::Object(Vec::new()),
        };
        if let JsonValue::Object(fields) = &mut docjson {
            fields.retain(|(k, _)| k != "mesh1k");
            fields.push(("mesh1k".to_string(), entry));
        }
        let mut text = docjson.to_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(&out, text) {
            eprintln!("failed to write {}: {e}", out.display());
            return std::process::ExitCode::FAILURE;
        }
        eprintln!("recorded mesh1k entry in {}", out.display());
    }

    if ok {
        eprintln!("mesh budget gate PASSED");
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::parse_vm_hwm;

    /// A canned `/proc/self/status` excerpt — the parse must survive the
    /// document's other Vm* lines (in particular `VmHWM` vs `VmRSS`
    /// prefix confusion) and the kernel's tab-and-space formatting.
    const STATUS: &str = "Name:\tmesh_bench\n\
        Umask:\t0022\n\
        VmPeak:\t  123456 kB\n\
        VmSize:\t  100000 kB\n\
        VmHWM:\t   20480 kB\n\
        VmRSS:\t   18000 kB\n\
        Threads:\t1\n";

    #[test]
    fn parses_vm_hwm_from_a_canned_status_document() {
        assert_eq!(parse_vm_hwm(STATUS), Some(20480 * 1024));
    }

    #[test]
    fn missing_or_malformed_lines_yield_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("Name:\tx\nVmRSS:\t 10 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }
}
