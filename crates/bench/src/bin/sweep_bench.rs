//! Measures the sweep runner's parallel speedup and records it in
//! `BENCH_sim_speed.json`.
//!
//! ```text
//! cargo run --release -p ezflow-bench --bin sweep_bench -- [--out=FILE]
//! ```
//!
//! Runs one batch of independent chain simulations twice — `--jobs=1`
//! (serial) and `--jobs=4` — verifies the two produce **byte-identical**
//! run snapshots (perf block zeroed; it is wall-clock and honestly
//! non-deterministic), and writes a `"sweep"` entry into the JSON file
//! next to the existing events/s baseline. The entry records the wall
//! times, the speedup, and the machine's available parallelism — on a
//! single-core container the speedup is ~1× by physics, and the entry
//! says so rather than pretending otherwise.

use std::time::Instant;

use ezflow_bench::runner::{Job, SweepRunner};
use ezflow_core::EzFlowController;
use ezflow_net::{topo, FixedController, NetworkSpec, PerfSnapshot};
use ezflow_sim::{JsonValue, Time};

const RUNS: usize = 8;
const SIM_SECS: u64 = 240;
const PAR_JOBS: usize = 4;

fn batch() -> Vec<Job> {
    let until = Time::from_secs(SIM_SECS);
    (0..RUNS)
        .map(|i| {
            let hops = 3 + i % 3;
            let t = topo::chain(hops, Time::ZERO, until);
            let spec = NetworkSpec::from_topology(&t, 42 + i as u64);
            let make: Box<dyn Fn(usize) -> Box<dyn ezflow_net::Controller> + Send + Sync> =
                if i % 2 == 0 {
                    Box::new(|_| Box::new(FixedController::standard()))
                } else {
                    Box::new(|_| Box::new(EzFlowController::with_defaults()))
                };
            Job::new(format!("sweep/{hops}hop/{i}"), spec, until, make)
        })
        .collect()
}

/// Runs the batch under `workers` threads; returns (wall seconds, one
/// comparable snapshot digest per job).
fn timed(workers: usize) -> (f64, Vec<String>) {
    let start = Instant::now();
    let digests = SweepRunner::new(workers).run_map(batch(), |i, mut net| {
        let mut doc = net.snapshot_json(&format!("job{i}"));
        if let JsonValue::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "perf" {
                    *v = PerfSnapshot::zeroed().to_json();
                }
            }
        }
        doc.to_compact()
    });
    (start.elapsed().as_secs_f64(), digests)
}

fn main() -> std::process::ExitCode {
    let mut out = std::path::PathBuf::from("BENCH_sim_speed.json");
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--out=") {
            out = p.into();
        } else {
            eprintln!("usage: sweep_bench [--out=FILE]");
            return std::process::ExitCode::from(2);
        }
    }

    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("{RUNS} runs x {SIM_SECS} sim-seconds; machine parallelism {machine}");

    let (serial_secs, serial) = timed(1);
    eprintln!("jobs=1: {serial_secs:.2} s");
    let (par_secs, par) = timed(PAR_JOBS);
    eprintln!("jobs={PAR_JOBS}: {par_secs:.2} s");

    let identical = serial == par;
    if !identical {
        eprintln!("ERROR: parallel snapshots diverged from serial");
        return std::process::ExitCode::FAILURE;
    }
    let speedup = serial_secs / par_secs;
    eprintln!("speedup {speedup:.2}x, outputs byte-identical");

    let entry = JsonValue::obj(vec![
        ("runs", (RUNS as f64).into()),
        ("sim_secs_per_run", (SIM_SECS as f64).into()),
        ("jobs_serial", 1.0.into()),
        ("jobs_parallel", (PAR_JOBS as f64).into()),
        ("serial_secs", serial_secs.into()),
        ("parallel_secs", par_secs.into()),
        ("speedup", speedup.into()),
        ("machine_parallelism", (machine as f64).into()),
        ("outputs_byte_identical", JsonValue::Bool(identical)),
    ]);

    // Merge into the existing baseline file, replacing any prior entry.
    let mut doc = match std::fs::read_to_string(&out) {
        Ok(text) => JsonValue::parse(&text).unwrap_or(JsonValue::Object(Vec::new())),
        Err(_) => JsonValue::Object(Vec::new()),
    };
    if let JsonValue::Object(fields) = &mut doc {
        fields.retain(|(k, _)| k != "sweep");
        fields.push(("sweep".to_string(), entry));
    }
    let mut text = doc.to_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("failed to write {}: {e}", out.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("recorded sweep entry in {}", out.display());
    std::process::ExitCode::SUCCESS
}
