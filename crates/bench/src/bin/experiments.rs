//! The experiment harness CLI.
//!
//! ```text
//! cargo run --release -p ezflow-bench --bin experiments -- all
//! cargo run --release -p ezflow-bench --bin experiments -- fig1 table2
//! cargo run --release -p ezflow-bench --bin experiments -- --quick all
//! cargo run --release -p ezflow-bench --bin experiments -- --markdown all
//! cargo run --release -p ezflow-bench --bin experiments -- --jobs=4 seeds
//! ```
//!
//! `--jobs=N` fans each experiment's independent runs across N worker
//! threads (`--jobs=0`, the default, uses the machine's parallelism;
//! `--jobs=1` forces the old serial behaviour). Results are identical
//! for every N — runs are pure functions of their spec and seed.
//!
//! Ids: fig1, table1, fig4, table2, scenario1 (fig6/fig7/fig8),
//! scenario2 (fig10/fig11/table3), table4, theorem1, ablations, all.

use std::process::ExitCode;

use ezflow_bench::experiments;
use ezflow_bench::report::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut markdown = false;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut ids = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--markdown" => markdown = true,
            "--seed" => {}
            s if s.starts_with("--seed=") => {
                scale.seed = s["--seed=".len()..].parse().expect("numeric seed");
            }
            s if s.starts_with("--time=") => {
                scale.time = s["--time=".len()..].parse().expect("numeric factor");
            }
            s if s.starts_with("--jobs=") => {
                scale.jobs = s["--jobs=".len()..].parse().expect("numeric job count");
            }
            s if s.starts_with("--csv=") => {
                csv_dir = Some(std::path::PathBuf::from(&s["--csv=".len()..]));
            }
            s if s.starts_with("--json=") => {
                json_path = Some(std::path::PathBuf::from(&s["--json=".len()..]));
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--quick] [--markdown] [--csv=DIR] [--json=FILE] [--seed=N] [--time=F] [--jobs=N] <id>...\n\
             ids: fig1 table1 fig4 table2 scenario1 scenario2 table4 theorem1 ablations seeds all"
        );
        return ExitCode::from(2);
    }

    let mut all_ok = true;
    let mut with_snapshots = Vec::new();
    for id in &ids {
        let Some(reports) = experiments::by_id(id, scale) else {
            eprintln!("unknown experiment id: {id}");
            return ExitCode::from(2);
        };
        for rep in reports {
            if markdown {
                print!("{}", rep.render_markdown());
            } else {
                print!("{}", rep.render());
            }
            if let Some(dir) = &csv_dir {
                match rep.write_csv(dir) {
                    Ok(files) => eprintln!("wrote {} CSV files to {}", files.len(), dir.display()),
                    Err(e) => eprintln!("CSV export failed: {e}"),
                }
            }
            all_ok &= rep.all_ok();
            if !rep.snapshots.is_empty() {
                with_snapshots.push(rep);
            }
        }
    }
    if let Some(path) = &json_path {
        let count: usize = with_snapshots.iter().map(|r| r.snapshots.len()).sum();
        match ezflow_bench::report::write_snapshots_json(&with_snapshots, path) {
            Ok(()) => eprintln!("wrote {count} run snapshots to {}", path.display()),
            Err(e) => {
                eprintln!("JSON export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if all_ok {
        println!("\nall qualitative checks PASSED");
        ExitCode::SUCCESS
    } else {
        println!("\nsome qualitative checks FAILED");
        ExitCode::FAILURE
    }
}
