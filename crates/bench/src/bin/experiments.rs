//! The experiment harness CLI.
//!
//! ```text
//! cargo run --release -p ezflow-bench --bin experiments -- all
//! cargo run --release -p ezflow-bench --bin experiments -- fig1 table2
//! cargo run --release -p ezflow-bench --bin experiments -- --quick all
//! cargo run --release -p ezflow-bench --bin experiments -- --markdown all
//! cargo run --release -p ezflow-bench --bin experiments -- --jobs=4 seeds
//! ```
//!
//! `--jobs=N` fans each experiment's independent runs across N worker
//! threads (`--jobs=0`, the default, uses the machine's parallelism;
//! `--jobs=1` forces the old serial behaviour). Results are identical
//! for every N — runs are pure functions of their spec and seed.
//!
//! `--sched=heap|wheel` selects the event-scheduler backend (default
//! `wheel`, the calendar queue). Runs are bit-identical across backends;
//! the flag exists to prove exactly that and to benchmark the gap.
//!
//! `--shards=N` partitions every network's scheduler into N
//! interference-domain queues (default 1, the serial queue). Runs are
//! bit-identical for every N — shard assignment changes which internal
//! queue an event waits in, never the merged pop order (DESIGN.md §12)
//! — and snapshots gain `perf.shards` / `perf.cut_deliveries` /
//! `perf.barrier_waits` gauges when N > 1.
//!
//! `--trace-dir=DIR` arms the per-packet flight recorder and writes each
//! traced run's lifecycle JSONL as `DIR/<experiment>_<algo>.jsonl` — the
//! input format of the `trace` inspector binary. The capture is bounded
//! (`--flight-cap=N` journeys, default 4096): past the bound the recorder
//! samples admissions deterministically and evicts finished journeys, and
//! this harness reports exactly how much was kept — a partial capture is
//! always labelled, never silent. Recording never changes the simulation:
//! runs are bit-identical with or without it.
//!
//! `--telemetry-dir=DIR` arms the telemetry bus on every network the
//! experiments build and streams one JSONL record per sample window to
//! `DIR/<experiment>_<algo>.jsonl` *while each run is in flight* — the
//! input format of `trace telemetry`. The sampling interval defaults to
//! 100 ms of simulated time; `--telemetry-ms=N` overrides it, and also
//! arms the bus on its own (rings + the snapshots' `stability` section,
//! no streaming). Telemetry never changes the simulation either.
//!
//! `--audit-dir=DIR` arms the controller-provenance audit ledger on every
//! network and streams one JSONL record per BOE estimation sample and per
//! `CWmin` decision to `DIR/<experiment>_<algo>.audit.jsonl` — the input
//! format of `trace controller`. Snapshots from the same runs gain a
//! `controller` section (per-node CW-change counts, per-link estimation
//! error). The audit is pull-based and never changes the simulation.
//!
//! `--spec=FILE` runs a declarative scenario document (see DESIGN.md §9
//! and the committed examples under `scenarios/`) through the same
//! reporting pipeline: every sweep point in the file becomes one run, and
//! `--csv` / `--json` / `--trace-dir` / `--telemetry-dir` all apply.
//! `--list` prints the named experiment ids plus every spec discovered
//! under `scenarios/`, one line each. `--emit-spec=NAME` prints the named
//! built-in topology re-expressed as a spec document (the generator of
//! the committed `scenarios/scenario1.json` etc.).
//!
//! Ids: fig1, table1, fig4, table2, scenario1 (fig6/fig7/fig8),
//! scenario2 (fig10/fig11/table3), table4, theorem1, ablations, all.

use std::process::ExitCode;

use ezflow_bench::experiments;
use ezflow_bench::report::Scale;

/// The named experiment ids with one-line blurbs, for `--list`.
const NAMED: &[(&str, &str)] = &[
    (
        "fig1",
        "K-hop chain turbulence: buffer oscillation under 802.11",
    ),
    ("table1", "9-node testbed calibration (Table 1 link rates)"),
    ("fig4", "3-hop chain: EZ-flow stabilizes the relay buffers"),
    ("table2", "chain throughput/delay, 802.11 vs EZ-flow"),
    (
        "scenario1",
        "Figs. 6-8: two merging 8-hop flows (also: fig6 fig7 fig8)",
    ),
    (
        "scenario2",
        "Figs. 10-11, Table 3: 25-node mesh (also: fig10 fig11 table3)",
    ),
    ("table4", "per-hop buffer/delay decomposition"),
    ("theorem1", "stability region check"),
    ("ablations", "EZ-flow component knock-outs"),
    ("seeds", "seed sensitivity sweep"),
    ("all", "every experiment above, in order"),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut markdown = false;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut flight_cap: Option<usize> = None;
    let mut telemetry_dir: Option<std::path::PathBuf> = None;
    let mut telemetry_ms: Option<u64> = None;
    let mut audit_dir: Option<std::path::PathBuf> = None;
    let mut ids = Vec::new();
    let mut specs: Vec<std::path::PathBuf> = Vec::new();
    let mut list = false;
    let mut emit: Option<String> = None;
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--list" => list = true,
            s if s.starts_with("--spec=") => {
                specs.push(std::path::PathBuf::from(&s["--spec=".len()..]));
            }
            s if s.starts_with("--emit-spec=") => {
                emit = Some(s["--emit-spec=".len()..].to_string());
            }
            "--markdown" => markdown = true,
            "--seed" => {}
            s if s.starts_with("--seed=") => {
                scale.seed = s["--seed=".len()..].parse().expect("numeric seed");
            }
            s if s.starts_with("--time=") => {
                scale.time = s["--time=".len()..].parse().expect("numeric factor");
            }
            s if s.starts_with("--jobs=") => {
                scale.jobs = s["--jobs=".len()..].parse().expect("numeric job count");
            }
            s if s.starts_with("--sched=") => {
                scale.sched = s["--sched=".len()..].parse().expect("heap|wheel");
            }
            s if s.starts_with("--shards=") => {
                scale.shards = s["--shards=".len()..].parse().expect("numeric shard count");
            }
            s if s.starts_with("--csv=") => {
                csv_dir = Some(std::path::PathBuf::from(&s["--csv=".len()..]));
            }
            s if s.starts_with("--json=") => {
                json_path = Some(std::path::PathBuf::from(&s["--json=".len()..]));
            }
            s if s.starts_with("--trace-dir=") => {
                trace_dir = Some(std::path::PathBuf::from(&s["--trace-dir=".len()..]));
            }
            s if s.starts_with("--flight-cap=") => {
                flight_cap = Some(s["--flight-cap=".len()..].parse().expect("numeric cap"));
            }
            s if s.starts_with("--telemetry-dir=") => {
                telemetry_dir = Some(std::path::PathBuf::from(&s["--telemetry-dir=".len()..]));
            }
            s if s.starts_with("--telemetry-ms=") => {
                let ms: u64 = s["--telemetry-ms=".len()..]
                    .parse()
                    .expect("numeric interval");
                assert!(ms > 0, "telemetry interval must be nonzero");
                telemetry_ms = Some(ms);
            }
            s if s.starts_with("--audit-dir=") => {
                audit_dir = Some(std::path::PathBuf::from(&s["--audit-dir=".len()..]));
            }
            other => ids.push(other.to_string()),
        }
    }
    // The recorder only runs when there is somewhere to write its export.
    if trace_dir.is_some() {
        scale.flight_cap = flight_cap.unwrap_or(4096);
    } else if flight_cap.is_some() {
        eprintln!("--flight-cap has no effect without --trace-dir=DIR");
    }
    // Either telemetry flag arms the bus; the dir adds live streaming.
    if telemetry_dir.is_some() || telemetry_ms.is_some() {
        scale.telemetry_every = Some(match telemetry_ms {
            Some(ms) => ezflow_sim::Duration::from_millis(ms),
            None => ezflow_net::NetworkSpec::TELEMETRY_EVERY,
        });
    }
    if let Some(dir) = &telemetry_dir {
        ezflow_bench::telemetry_out::set_dir(dir);
    }
    // The audit-dir flag arms the ledger and streams decisions live;
    // snapshots gain their `controller` section from the same runs.
    if let Some(dir) = &audit_dir {
        scale.audit_cap = ezflow_net::NetworkSpec::AUDIT_CAP;
        ezflow_bench::audit_out::set_dir(dir);
    }
    if list {
        println!("named experiments:");
        for (id, blurb) in NAMED {
            println!("  {id:<10} {blurb}");
        }
        println!("scenario specs (scenarios/*.json, run with --spec=FILE):");
        let found = experiments::spec::discover(std::path::Path::new("scenarios"));
        if found.is_empty() {
            println!("  (none found under ./scenarios)");
        }
        for (path, line) in found {
            println!("  {:<28} {line}", path.display().to_string());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &emit {
        let Some(spec) = experiments::spec::emit(name) else {
            eprintln!(
                "unknown --emit-spec name: {name} (known: {})",
                experiments::spec::EMITTABLE.join(", ")
            );
            return ExitCode::from(2);
        };
        println!("{}", spec.to_json().to_pretty());
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() && specs.is_empty() {
        eprintln!(
            "usage: experiments [--quick] [--markdown] [--csv=DIR] [--json=FILE] [--trace-dir=DIR]\n\
             \x20                  [--flight-cap=N] [--telemetry-dir=DIR] [--telemetry-ms=N]\n\
             \x20                  [--audit-dir=DIR]\n\
             \x20                  [--seed=N] [--time=F] [--jobs=N] [--sched=heap|wheel] [--shards=N]\n\
             \x20                  [--list] [--spec=FILE] [--emit-spec=NAME] <id>...\n\
             ids: fig1 table1 fig4 table2 scenario1 scenario2 table4 theorem1 ablations seeds all"
        );
        return ExitCode::from(2);
    }

    let mut all_ok = true;
    let mut with_snapshots = Vec::new();
    let mut reports_by_id: Vec<(String, Vec<ezflow_bench::report::Report>)> = Vec::new();
    for id in &ids {
        let Some(reports) = experiments::by_id(id, scale) else {
            eprintln!("unknown experiment id: {id}");
            return ExitCode::from(2);
        };
        reports_by_id.push((id.clone(), reports));
    }
    for path in &specs {
        let spec = match experiments::spec::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("spec error: {e}");
                return ExitCode::from(2);
            }
        };
        match experiments::spec::run_spec(&spec, &scale) {
            Ok(rep) => reports_by_id.push((format!("spec:{}", spec.name), vec![rep])),
            Err(e) => {
                eprintln!("spec error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for (_, reports) in reports_by_id {
        for rep in reports {
            if markdown {
                print!("{}", rep.render_markdown());
            } else {
                print!("{}", rep.render());
            }
            if let Some(dir) = &csv_dir {
                match rep.write_csv(dir) {
                    Ok(files) => eprintln!("wrote {} CSV files to {}", files.len(), dir.display()),
                    Err(e) => eprintln!("CSV export failed: {e}"),
                }
            }
            if let Some(dir) = &trace_dir {
                match rep.write_lifecycles(dir) {
                    Ok(files) => {
                        for (path, st) in files {
                            eprintln!(
                                "wrote lifecycle JSONL {} ({} journeys kept)",
                                path.display(),
                                st.tracked - st.evicted
                            );
                            if st.stride > 1 || st.evicted > 0 {
                                eprintln!(
                                    "  PARTIAL capture: cap bound hit — sampling 1/{} \
                                     ({} packets skipped, {} journeys evicted); \
                                     raise --flight-cap for a fuller census",
                                    st.stride, st.skipped, st.evicted
                                );
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("lifecycle export failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            all_ok &= rep.all_ok();
            if !rep.snapshots.is_empty() {
                with_snapshots.push(rep);
            }
        }
    }
    if let Some(path) = &json_path {
        let count: usize = with_snapshots.iter().map(|r| r.snapshots.len()).sum();
        match ezflow_bench::report::write_snapshots_json(&with_snapshots, path) {
            Ok(()) => eprintln!("wrote {count} run snapshots to {}", path.display()),
            Err(e) => {
                eprintln!("JSON export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if all_ok {
        println!("\nall qualitative checks PASSED");
        ExitCode::SUCCESS
    } else {
        println!("\nsome qualitative checks FAILED");
        ExitCode::FAILURE
    }
}
