//! `trace` — the per-packet lifecycle inspector.
//!
//! Reads the JSONL that the flight recorder exports (one
//! [`ezflow_sim::TraceEvent`] per line, produced by
//! `experiments --trace-dir=DIR` or [`ezflow_net::FlightRecorder::to_jsonl`])
//! and answers the questions the aggregate counters cannot: *what happened
//! to this packet*, *which packets fared worst*, and *where and why were
//! packets dropped*.
//!
//! ```text
//! trace journey --packet=ID FILE   # one packet's full hop-by-hop story
//! trace worst [--flow=F] [--top=K] FILE   # slowest delivered journeys
//! trace drops [--by-cause] FILE    # drop census (per journey, or grouped)
//! ```
//!
//! Flow ids are the simulator's: the paper's F1 is flow 0, F2 is flow 1.
//! A capture produced under budget pressure is a *sample* of the traffic
//! (the harness says so when writing it); every journey in the file is
//! still complete from admission to its terminal delivery or drop.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ezflow_net::{group_journeys, summarize_journey, JourneySummary};
use ezflow_sim::{TraceEvent, TraceRing};

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace <command> [flags] FILE\n\
         commands:\n\
         \x20 journey --packet=ID   print one packet's full lifecycle\n\
         \x20 worst [--flow=F] [--top=K]   slowest delivered journeys (default top 10)\n\
         \x20 drops [--by-cause]    drop census, grouped by cause with --by-cause\n\
         FILE is a lifecycle JSONL export (experiments --trace-dir=DIR)"
    );
    ExitCode::from(2)
}

/// Microseconds rendered for humans: µs under 1 ms, else ms.
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else {
        format!("{:.3} ms", us as f64 / 1_000.0)
    }
}

fn hops_arrow(s: &JourneySummary) -> String {
    let mut out = String::new();
    for (i, h) in s.hops.iter().enumerate() {
        if i > 0 {
            out.push('→');
        }
        out.push_str(&format!("N{h}"));
    }
    if let Some((_, node)) = s.delivered {
        out.push_str(&format!("→N{node}"));
    }
    out
}

fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    TraceRing::parse_jsonl(&text).map_err(|e| format!("{path} is not a lifecycle export: {e}"))
}

fn cmd_journey(events: &[TraceEvent], packet: u64) -> ExitCode {
    let journeys = group_journeys(events);
    let Some(evs) = journeys.get(&packet) else {
        eprintln!(
            "packet {packet} is not in this capture ({} journeys: seq {:?}..{:?})",
            journeys.len(),
            journeys.keys().next(),
            journeys.keys().next_back(),
        );
        return ExitCode::FAILURE;
    };
    let s = summarize_journey(packet, evs);
    println!(
        "packet {packet} (flow {})",
        s.flow.map_or("?".into(), |f| f.to_string())
    );
    println!("  path: {}", hops_arrow(&s));
    println!("  hops: {}, DCF attempts: {}", s.hops.len(), s.attempts);
    match (s.delivered, s.dropped) {
        (Some((at, node)), _) => {
            let lat = s.latency_us().map_or("?".into(), fmt_us);
            println!("  DELIVERED at N{node}, t={at}, end-to-end {lat}");
        }
        (None, Some((at, node, cause))) => {
            println!("  DROPPED at N{node}, t={at}, cause: {}", cause.name());
        }
        (None, None) => println!("  IN FLIGHT when the capture ended"),
    }
    println!();
    for ev in evs {
        println!("  {ev}");
    }
    ExitCode::SUCCESS
}

fn cmd_worst(events: &[TraceEvent], flow: Option<u32>, top: usize) -> ExitCode {
    let journeys = group_journeys(events);
    let mut delivered: Vec<(u64, JourneySummary)> = journeys
        .iter()
        .map(|(&seq, evs)| summarize_journey(seq, evs))
        .filter(|s| flow.is_none() || s.flow == flow)
        .filter_map(|s| s.latency_us().map(|l| (l, s)))
        .collect();
    if delivered.is_empty() {
        eprintln!(
            "no delivered journeys{} in this capture",
            flow.map_or(String::new(), |f| format!(" of flow {f}"))
        );
        return ExitCode::FAILURE;
    }
    delivered.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.seq.cmp(&b.1.seq)));
    println!(
        "{} delivered journeys{}; {} slowest:",
        delivered.len(),
        flow.map_or(String::new(), |f| format!(" of flow {f}")),
        top.min(delivered.len())
    );
    println!(
        "  {:>10} | {:>5} | {:>12} | {:>8} | path",
        "packet", "flow", "latency", "attempts"
    );
    for (lat, s) in delivered.iter().take(top) {
        println!(
            "  {:>10} | {:>5} | {:>12} | {:>8} | {}",
            s.seq,
            s.flow.map_or("?".into(), |f| f.to_string()),
            fmt_us(*lat),
            s.attempts,
            hops_arrow(s)
        );
    }
    ExitCode::SUCCESS
}

fn cmd_drops(events: &[TraceEvent], by_cause: bool) -> ExitCode {
    let journeys = group_journeys(events);
    let dropped: Vec<JourneySummary> = journeys
        .iter()
        .map(|(&seq, evs)| summarize_journey(seq, evs))
        .filter(|s| s.dropped.is_some())
        .collect();
    println!(
        "{} journeys, {} ended in a drop",
        journeys.len(),
        dropped.len()
    );
    if by_cause {
        // cause -> node -> count, rendered as one line per (cause, node).
        let mut census: BTreeMap<&'static str, BTreeMap<usize, u64>> = BTreeMap::new();
        for s in &dropped {
            let (_, node, cause) = s.dropped.expect("filtered on dropped");
            *census
                .entry(cause.name())
                .or_default()
                .entry(node)
                .or_insert(0) += 1;
        }
        for (cause, nodes) in &census {
            let total: u64 = nodes.values().sum();
            println!("  {cause}: {total}");
            for (node, n) in nodes {
                println!("    N{node}: {n}");
            }
        }
    } else {
        for s in &dropped {
            let (at, node, cause) = s.dropped.expect("filtered on dropped");
            println!(
                "  packet {:>8} flow {} dropped at N{node} t={at} ({}) after {}",
                s.seq,
                s.flow.map_or("?".into(), |f| f.to_string()),
                cause.name(),
                hops_arrow(s)
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut packet: Option<u64> = None;
    let mut flow: Option<u32> = None;
    let mut top = 10usize;
    let mut by_cause = false;
    let mut file: Option<String> = None;
    for a in &args[1..] {
        match a.as_str() {
            "--by-cause" => by_cause = true,
            s if s.starts_with("--packet=") => {
                packet = Some(match s["--packet=".len()..].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                });
            }
            s if s.starts_with("--flow=") => {
                flow = Some(match s["--flow=".len()..].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                });
            }
            s if s.starts_with("--top=") => {
                top = match s["--top=".len()..].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                };
            }
            s if s.starts_with("--") => return usage(),
            other => {
                if file.replace(other.to_string()).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let events = match load(&file) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "journey" => {
            let Some(packet) = packet else {
                eprintln!("journey needs --packet=ID");
                return usage();
            };
            cmd_journey(&events, packet)
        }
        "worst" => cmd_worst(&events, flow, top),
        "drops" => cmd_drops(&events, by_cause),
        _ => usage(),
    }
}
