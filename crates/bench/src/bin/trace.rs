//! `trace` — the per-packet lifecycle inspector.
//!
//! Reads the JSONL that the flight recorder exports (one
//! [`ezflow_sim::TraceEvent`] per line, produced by
//! `experiments --trace-dir=DIR` or [`ezflow_net::FlightRecorder::to_jsonl`])
//! and answers the questions the aggregate counters cannot: *what happened
//! to this packet*, *which packets fared worst*, and *where and why were
//! packets dropped*.
//!
//! ```text
//! trace journey --packet=ID FILE   # one packet's full hop-by-hop story
//! trace worst [--flow=F] [--top=K] FILE   # slowest delivered journeys
//! trace drops [--by-cause] [--by-node] [--by-link] FILE   # drop census
//! trace telemetry [--top=K] FILE   # worst oscillators, episodes, sparklines
//! trace controller [--top=K] FILE   # CW timelines, decisions, link errors
//! ```
//!
//! Flow ids are the simulator's: the paper's F1 is flow 0, F2 is flow 1.
//! A capture produced under budget pressure is a *sample* of the traffic
//! (the harness says so when writing it); every journey in the file is
//! still complete from admission to its terminal delivery or drop.
//!
//! `telemetry` reads the *other* JSONL format: the telemetry bus's
//! one-record-per-sample-window stream (`experiments --telemetry-dir`).
//! It rebuilds the per-node queue-depth series, runs the stability
//! analyzer over them, and prints the worst oscillators, the sustained
//! oscillation episodes, and one sparkline per ranked node and flow.
//!
//! `controller` reads a third format: the audit ledger's stream
//! (`experiments --audit-dir`, one record per BOE estimation sample and
//! per `CWmin` decision). It prints each node's `CWmin` timeline as a
//! sparkline over its decision points, the decision list with the
//! counter and threshold that fired each one, and the worst-estimated
//! links ranked by mean absolute estimation error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ezflow_net::{group_journeys, summarize_journey, JourneySummary};
use ezflow_sim::{Duration, JsonValue, TraceEvent, TraceRing};
use ezflow_stats::{analyze, Stability, StabilityConfig, TimeSeries};

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace <command> [flags] FILE\n\
         commands:\n\
         \x20 journey --packet=ID   print one packet's full lifecycle\n\
         \x20 worst [--flow=F] [--top=K]   slowest delivered journeys (default top 10)\n\
         \x20 drops [--by-cause] [--by-node] [--by-link]   drop census, grouped\n\
         \x20 telemetry [--top=K]   stability digest of a telemetry stream\n\
         \x20 controller [--top=K]   CW timelines, decisions, estimation errors\n\
         FILE is a lifecycle JSONL export (experiments --trace-dir=DIR),\n\
         for `telemetry` a sample-window stream (--telemetry-dir=DIR),\n\
         or for `controller` an audit stream (--audit-dir=DIR)"
    );
    ExitCode::from(2)
}

/// Microseconds rendered for humans: µs under 1 ms, else ms.
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else {
        format!("{:.3} ms", us as f64 / 1_000.0)
    }
}

fn hops_arrow(s: &JourneySummary) -> String {
    let mut out = String::new();
    for (i, h) in s.hops.iter().enumerate() {
        if i > 0 {
            out.push('→');
        }
        out.push_str(&format!("N{h}"));
    }
    if let Some((_, node)) = s.delivered {
        out.push_str(&format!("→N{node}"));
    }
    out
}

fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    TraceRing::parse_jsonl(&text).map_err(|e| format!("{path} is not a lifecycle export: {e}"))
}

fn cmd_journey(events: &[TraceEvent], packet: u64) -> ExitCode {
    let journeys = group_journeys(events);
    let Some(evs) = journeys.get(&packet) else {
        eprintln!(
            "packet {packet} is not in this capture ({} journeys: seq {:?}..{:?})",
            journeys.len(),
            journeys.keys().next(),
            journeys.keys().next_back(),
        );
        return ExitCode::FAILURE;
    };
    let s = summarize_journey(packet, evs);
    println!(
        "packet {packet} (flow {})",
        s.flow.map_or("?".into(), |f| f.to_string())
    );
    println!("  path: {}", hops_arrow(&s));
    println!("  hops: {}, DCF attempts: {}", s.hops.len(), s.attempts);
    match (s.delivered, s.dropped) {
        (Some((at, node)), _) => {
            let lat = s.latency_us().map_or("?".into(), fmt_us);
            println!("  DELIVERED at N{node}, t={at}, end-to-end {lat}");
        }
        (None, Some((at, node, cause))) => {
            println!("  DROPPED at N{node}, t={at}, cause: {}", cause.name());
        }
        (None, None) => println!("  IN FLIGHT when the capture ended"),
    }
    println!();
    for ev in evs {
        println!("  {ev}");
    }
    ExitCode::SUCCESS
}

fn cmd_worst(events: &[TraceEvent], flow: Option<u32>, top: usize) -> ExitCode {
    let journeys = group_journeys(events);
    let mut delivered: Vec<(u64, JourneySummary)> = journeys
        .iter()
        .map(|(&seq, evs)| summarize_journey(seq, evs))
        .filter(|s| flow.is_none() || s.flow == flow)
        .filter_map(|s| s.latency_us().map(|l| (l, s)))
        .collect();
    if delivered.is_empty() {
        eprintln!(
            "no delivered journeys{} in this capture",
            flow.map_or(String::new(), |f| format!(" of flow {f}"))
        );
        return ExitCode::FAILURE;
    }
    delivered.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.seq.cmp(&b.1.seq)));
    println!(
        "{} delivered journeys{}; {} slowest:",
        delivered.len(),
        flow.map_or(String::new(), |f| format!(" of flow {f}")),
        top.min(delivered.len())
    );
    println!(
        "  {:>10} | {:>5} | {:>12} | {:>8} | path",
        "packet", "flow", "latency", "attempts"
    );
    for (lat, s) in delivered.iter().take(top) {
        println!(
            "  {:>10} | {:>5} | {:>12} | {:>8} | {}",
            s.seq,
            s.flow.map_or("?".into(), |f| f.to_string()),
            fmt_us(*lat),
            s.attempts,
            hops_arrow(s)
        );
    }
    ExitCode::SUCCESS
}

/// The (tx → rx) link a drop belongs to, from the journey's hop list.
/// `hops` records enqueue nodes, so a queue-full drop at the refusing
/// receiver is not itself a hop: the link is then last-hop → drop node.
/// `None` means the packet never left its source (no link to blame).
fn drop_link(s: &JourneySummary) -> Option<(usize, usize)> {
    let (_, node, _) = s.dropped?;
    match s.hops.iter().rposition(|&h| h == node) {
        Some(0) => None,
        Some(pos) => Some((s.hops[pos - 1], node)),
        None => s.hops.last().map(|&tx| (tx, node)),
    }
}

fn cmd_drops(events: &[TraceEvent], by_cause: bool, by_node: bool, by_link: bool) -> ExitCode {
    let journeys = group_journeys(events);
    let dropped: Vec<JourneySummary> = journeys
        .iter()
        .map(|(&seq, evs)| summarize_journey(seq, evs))
        .filter(|s| s.dropped.is_some())
        .collect();
    println!(
        "{} journeys, {} ended in a drop",
        journeys.len(),
        dropped.len()
    );
    if by_link {
        // (tx → rx) link -> cause -> count: which hop kills packets.
        let mut census: BTreeMap<Option<(usize, usize)>, BTreeMap<&'static str, u64>> =
            BTreeMap::new();
        for s in &dropped {
            let (_, _, cause) = s.dropped.expect("filtered on dropped");
            *census
                .entry(drop_link(s))
                .or_default()
                .entry(cause.name())
                .or_insert(0) += 1;
        }
        for (link, causes) in &census {
            let total: u64 = causes.values().sum();
            match link {
                Some((tx, rx)) => println!("  N{tx}→N{rx}: {total}"),
                None => println!("  at source (never left): {total}"),
            }
            for (cause, n) in causes {
                println!("    {cause}: {n}");
            }
        }
    } else if by_node {
        // node -> cause -> count: where packets die, then why there.
        let mut census: BTreeMap<usize, BTreeMap<&'static str, u64>> = BTreeMap::new();
        for s in &dropped {
            let (_, node, cause) = s.dropped.expect("filtered on dropped");
            *census
                .entry(node)
                .or_default()
                .entry(cause.name())
                .or_insert(0) += 1;
        }
        for (node, causes) in &census {
            let total: u64 = causes.values().sum();
            println!("  N{node}: {total}");
            for (cause, n) in causes {
                println!("    {cause}: {n}");
            }
        }
    } else if by_cause {
        // cause -> node -> count, rendered as one line per (cause, node).
        let mut census: BTreeMap<&'static str, BTreeMap<usize, u64>> = BTreeMap::new();
        for s in &dropped {
            let (_, node, cause) = s.dropped.expect("filtered on dropped");
            *census
                .entry(cause.name())
                .or_default()
                .entry(node)
                .or_insert(0) += 1;
        }
        for (cause, nodes) in &census {
            let total: u64 = nodes.values().sum();
            println!("  {cause}: {total}");
            for (node, n) in nodes {
                println!("    N{node}: {n}");
            }
        }
    } else {
        for s in &dropped {
            let (at, node, cause) = s.dropped.expect("filtered on dropped");
            println!(
                "  packet {:>8} flow {} dropped at N{node} t={at} ({}) after {}",
                s.seq,
                s.flow.map_or("?".into(), |f| f.to_string()),
                cause.name(),
                hops_arrow(s)
            );
        }
    }
    ExitCode::SUCCESS
}

/// One-line sparkline of `values`, downsampled to at most `width`
/// buckets (bucket value = max, so oscillation peaks survive).
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let per = values.len().div_ceil(width).max(1);
    let buckets: Vec<f64> = values
        .chunks(per)
        .map(|c| c.iter().fold(f64::MIN, |a, &b| a.max(b)))
        .collect();
    let max = buckets.iter().fold(0.0f64, |a, &b| a.max(b));
    buckets
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Per-entity series rebuilt from a telemetry stream.
struct TelemetryDump {
    interval: Duration,
    windows: u64,
    /// Node id -> queue-depth samples, one per window.
    node_queue: BTreeMap<usize, Vec<f64>>,
    /// Flow id -> windowed kb/s.
    flow_kbps: BTreeMap<u32, Vec<f64>>,
}

fn load_telemetry(path: &str) -> Result<TelemetryDump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut dump = TelemetryDump {
        interval: Duration::from_micros(1),
        windows: 0,
        node_queue: BTreeMap::new(),
        flow_kbps: BTreeMap::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = JsonValue::parse(line)
            .map_err(|e| format!("{path}:{}: not a telemetry record: {e}", lineno + 1))?;
        let bad = || format!("{path}:{}: not a telemetry record", lineno + 1);
        let us = rec
            .get("interval_us")
            .and_then(JsonValue::as_u64)
            .ok_or_else(bad)?;
        dump.interval = Duration::from_micros(us);
        for nd in rec
            .get("nodes")
            .and_then(JsonValue::as_array)
            .ok_or_else(bad)?
        {
            let id = nd.get("id").and_then(JsonValue::as_u64).ok_or_else(bad)? as usize;
            let q = nd
                .get("queue")
                .and_then(JsonValue::as_f64)
                .ok_or_else(bad)?;
            dump.node_queue.entry(id).or_default().push(q);
        }
        for fl in rec
            .get("flows")
            .and_then(JsonValue::as_array)
            .ok_or_else(bad)?
        {
            let id = fl.get("flow").and_then(JsonValue::as_u64).ok_or_else(bad)? as u32;
            let k = fl.get("kbps").and_then(JsonValue::as_f64).ok_or_else(bad)?;
            dump.flow_kbps.entry(id).or_default().push(k);
        }
        dump.windows += 1;
    }
    if dump.windows == 0 {
        return Err(format!("{path}: no telemetry windows"));
    }
    Ok(dump)
}

fn cmd_telemetry(dump: &TelemetryDump, top: usize) -> ExitCode {
    let cfg = StabilityConfig::default();
    println!(
        "{} sample windows of {} µs ({} nodes, {} flows); stability over \
         {}-window chunks, episode = amplitude ≥ {} for ≥ {} chunks",
        dump.windows,
        dump.interval.as_micros(),
        dump.node_queue.len(),
        dump.flow_kbps.len(),
        cfg.window,
        cfg.amp_threshold,
        cfg.min_windows,
    );

    // Rebuild each node's queue ring and score it.
    let mut scored: Vec<(usize, Stability, &Vec<f64>)> = dump
        .node_queue
        .iter()
        .map(|(&id, values)| {
            let mut series = TimeSeries::new(dump.interval, values.len().max(1));
            for &v in values {
                series.push(v);
            }
            (id, analyze(&series, &cfg), values)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.amplitude
            .mean
            .total_cmp(&a.1.amplitude.mean)
            .then(a.0.cmp(&b.0))
    });

    println!("\nworst oscillators (queue depth, by mean chunk amplitude):");
    println!(
        "  {:>5} | {:>8} | {:>8} | {:>6} | {:>8} | queue sparkline",
        "node", "amp_mean", "amp_max", "cv", "episodes"
    );
    for (id, st, values) in scored.iter().take(top) {
        println!(
            "  {:>5} | {:>8.2} | {:>8.2} | {:>6.3} | {:>8} | {}",
            format!("N{id}"),
            st.amplitude.mean,
            st.amplitude.max,
            st.cv.mean,
            st.episodes.len(),
            sparkline(values, 48)
        );
    }

    let mut episodes: Vec<(usize, &ezflow_stats::Episode)> = scored
        .iter()
        .flat_map(|(id, st, _)| st.episodes.iter().map(move |e| (*id, e)))
        .collect();
    episodes.sort_by(|a, b| a.1.start.cmp(&b.1.start).then(a.0.cmp(&b.0)));
    if episodes.is_empty() {
        println!("\nno sustained oscillation episodes");
    } else {
        println!("\nsustained oscillation episodes:");
        for (id, e) in &episodes {
            println!(
                "  N{id}: {} .. {} (peak amplitude {:.1})",
                e.start, e.end, e.peak_amplitude
            );
        }
    }

    println!("\nper-flow windowed throughput:");
    for (flow, values) in &dump.flow_kbps {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        println!(
            "  flow {flow}: mean {:>7.1} kb/s | {}",
            mean,
            sparkline(values, 48)
        );
    }
    ExitCode::SUCCESS
}

/// One `CWmin` decision from an audit stream, with its recorded inputs.
struct Decision {
    at_us: u64,
    node: usize,
    kind: String,
    successor: Option<usize>,
    avg: f64,
    countup: u64,
    countdown: u64,
    up_threshold: u64,
    down_threshold: u64,
    cw_before: u64,
    cw_after: u64,
}

/// An audit stream rebuilt per entity (`experiments --audit-dir`).
struct AuditDump {
    records: u64,
    samples: u64,
    decisions: Vec<Decision>,
    /// (node, successor) -> signed estimation errors, in stream order.
    link_err: BTreeMap<(usize, usize), Vec<f64>>,
}

fn load_audit(path: &str) -> Result<AuditDump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut dump = AuditDump {
        records: 0,
        samples: 0,
        decisions: Vec::new(),
        link_err: BTreeMap::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = JsonValue::parse(line)
            .map_err(|e| format!("{path}:{}: not an audit record: {e}", lineno + 1))?;
        let bad = || format!("{path}:{}: not an audit record", lineno + 1);
        let u = |k: &str| rec.get(k).and_then(JsonValue::as_u64).ok_or_else(bad);
        let at_us = u("at_us")?;
        let node = u("node")? as usize;
        let kind = rec
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(bad)?;
        match kind {
            "sample" => {
                let successor = u("successor")? as usize;
                let err = u("estimate")? as f64 - u("truth")? as f64;
                dump.link_err
                    .entry((node, successor))
                    .or_default()
                    .push(err);
                dump.samples += 1;
            }
            _ => dump.decisions.push(Decision {
                at_us,
                node,
                kind: kind.to_string(),
                successor: rec
                    .get("successor")
                    .and_then(JsonValue::as_u64)
                    .map(|s| s as usize),
                avg: rec.get("avg").and_then(JsonValue::as_f64).ok_or_else(bad)?,
                countup: u("countup")?,
                countdown: u("countdown")?,
                up_threshold: u("up_threshold")?,
                down_threshold: u("down_threshold")?,
                cw_before: u("cw_before")?,
                cw_after: u("cw_after")?,
            }),
        }
        dump.records += 1;
    }
    if dump.records == 0 {
        return Err(format!("{path}: no audit records"));
    }
    Ok(dump)
}

/// What made a decision fire, in the CAA's own terms (§3.3 Algorithm 1).
/// The record carries the charge *entering* the round; the firing round
/// is the one that pushed it to the threshold.
fn fired(d: &Decision) -> String {
    match d.kind.as_str() {
        "increase" => format!("countup {}+1 hit {} → double", d.countup, d.up_threshold),
        "decrease" => format!(
            "countdown {}+1 hit {} → halve",
            d.countdown, d.down_threshold
        ),
        _ => "assigned".to_string(),
    }
}

fn cmd_controller(dump: &AuditDump, top: usize) -> ExitCode {
    println!(
        "{} audit records: {} estimation samples over {} links, {} CW decisions",
        dump.records,
        dump.samples,
        dump.link_err.len(),
        dump.decisions.len(),
    );

    // CWmin timeline per node, sampled at its decision points.
    let mut timelines: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for d in &dump.decisions {
        let tl = timelines.entry(d.node).or_default();
        if tl.is_empty() {
            tl.push(d.cw_before as f64);
        }
        tl.push(d.cw_after as f64);
    }
    if !timelines.is_empty() {
        println!("\nCWmin timelines (one point per decision):");
        println!(
            "  {:>5} | {:>9} | {:>8} | {:>8} | timeline",
            "node", "decisions", "cw_first", "cw_last"
        );
        for (node, tl) in &timelines {
            println!(
                "  {:>5} | {:>9} | {:>8} | {:>8} | {}",
                format!("N{node}"),
                tl.len() - 1,
                tl.first().copied().unwrap_or(0.0),
                tl.last().copied().unwrap_or(0.0),
                sparkline(tl, 48)
            );
        }
    }

    if dump.decisions.is_empty() {
        println!("\nno CW decisions in this capture");
    } else {
        let shown = top.min(dump.decisions.len());
        println!(
            "\nlast {shown} of {} decisions (oldest first):",
            dump.decisions.len()
        );
        for d in &dump.decisions[dump.decisions.len() - shown..] {
            let succ = d
                .successor
                .map_or(String::new(), |s| format!(" (successor N{s})"));
            println!(
                "  t={:>12} N{}{}: {} CW {} → {} | avg b̂ {:.2}, {}",
                fmt_us(d.at_us),
                d.node,
                succ,
                d.kind,
                d.cw_before,
                d.cw_after,
                d.avg,
                fired(d)
            );
        }
    }

    // Worst-estimated links by mean absolute error:
    // (link, bias, mae, max |error|, error series).
    type LinkScore<'a> = (&'a (usize, usize), f64, f64, f64, &'a Vec<f64>);
    let mut ranked: Vec<LinkScore<'_>> = dump
        .link_err
        .iter()
        .map(|(link, errs)| {
            let n = errs.len() as f64;
            let bias = errs.iter().sum::<f64>() / n;
            let mae = errs.iter().map(|e| e.abs()).sum::<f64>() / n;
            let max = errs.iter().fold(0.0f64, |a, &e| a.max(e.abs()));
            (link, bias, mae, max, errs)
        })
        .collect();
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(b.0)));
    if !ranked.is_empty() {
        println!("\nworst-estimated links (estimate − truth, by mean |error|):");
        println!(
            "  {:>9} | {:>8} | {:>7} | {:>7} | {:>7} | |error| sparkline",
            "link", "samples", "bias", "mae", "max"
        );
        for (link, bias, mae, max, errs) in ranked.iter().take(top) {
            let abs: Vec<f64> = errs.iter().map(|e| e.abs()).collect();
            println!(
                "  {:>9} | {:>8} | {:>7.2} | {:>7.2} | {:>7.1} | {}",
                format!("N{}→N{}", link.0, link.1),
                errs.len(),
                bias,
                mae,
                max,
                sparkline(&abs, 48)
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut packet: Option<u64> = None;
    let mut flow: Option<u32> = None;
    let mut top = 10usize;
    let mut by_cause = false;
    let mut by_node = false;
    let mut by_link = false;
    let mut file: Option<String> = None;
    for a in &args[1..] {
        match a.as_str() {
            "--by-cause" => by_cause = true,
            "--by-node" => by_node = true,
            "--by-link" => by_link = true,
            s if s.starts_with("--packet=") => {
                packet = Some(match s["--packet=".len()..].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                });
            }
            s if s.starts_with("--flow=") => {
                flow = Some(match s["--flow=".len()..].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                });
            }
            s if s.starts_with("--top=") => {
                top = match s["--top=".len()..].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                };
            }
            s if s.starts_with("--") => return usage(),
            other => {
                if file.replace(other.to_string()).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(file) = file else {
        return usage();
    };
    // `telemetry` reads the sample-window stream, not lifecycle events.
    if cmd == "telemetry" {
        return match load_telemetry(&file) {
            Ok(dump) => cmd_telemetry(&dump, top),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    // `controller` reads the audit stream, also not lifecycle events.
    if cmd == "controller" {
        return match load_audit(&file) {
            Ok(dump) => cmd_controller(&dump, top),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let events = match load(&file) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "journey" => {
            let Some(packet) = packet else {
                eprintln!("journey needs --packet=ID");
                return usage();
            };
            cmd_journey(&events, packet)
        }
        "worst" => cmd_worst(&events, flow, top),
        "drops" => cmd_drops(&events, by_cause, by_node, by_link),
        _ => usage(),
    }
}
