//! Hot-path microbenchmark and determinism gate.
//!
//! ```text
//! cargo run --release -p ezflow-bench --bin hotpath_bench               # measure + record
//! cargo run --release -p ezflow-bench --bin hotpath_bench -- --check    # CI gate (non-flaky)
//! cargo run --release -p ezflow-bench --bin hotpath_bench -- --bless    # refresh the golden
//! cargo run --release -p ezflow-bench --bin hotpath_bench -- --sched=heap
//! cargo run --release -p ezflow-bench --bin hotpath_bench -- --shards=4
//! ```
//!
//! Times the two inner-loop workloads the repo optimises for:
//!
//! * **scenario1/quick** — the paper's two merging 8-hop flows at the
//!   `--quick` scale, under both 802.11 and EZ-flow. The committed
//!   pre-optimisation baseline for exactly this run is ~4.0 M events/s
//!   ([`BASELINE_EVENTS_PER_SEC`]); the PR 4 hot-path pass raised it to
//!   ~6.2 M ([`PR4_EVENTS_PER_SEC`]), and the calendar-queue scheduler
//!   with pop-time stale elision is gated on beating *that* by ≥ 1.3×.
//! * **grid/dense** — a 4×4 grid where every node carrier-senses every
//!   other (degree ≈ N), the worst case for the neighbor-list path: the
//!   stressor proves the optimisation never *loses* to the full scan it
//!   replaced, even when the lists cannot shrink the work.
//!
//! Throughput is counted in events **consumed** per wall second —
//! dispatched plus stale-elided plus keyed-rescheduled. Each term is a
//! scheduler entry the simulation paid for that earlier generations
//! dispatched: elision turned dead MAC timers into pop-time counter
//! bumps, and keyed rescheduling (eager parking) then turned almost all
//! of *those* into in-place moves that never reach the pop loop at all.
//! Counting all three keeps the metric apples-to-apples with the
//! committed PR 4 number, which was measured when every stale timer was
//! still dispatched. Each run entry also records the scheduled /
//! dispatched / elided / rescheduled split and the stale fraction
//! (elided over consumed — near zero now that parking removes stale
//! entries before they ever surface).
//!
//! The default mode writes a `"hotpath"` entry (before/after events/s,
//! the per-run elision accounting, machine info) plus a
//! `"sched_compare"` heap-vs-wheel entry into `BENCH_sim_speed.json`.
//! `--sched=heap|wheel` picks the backend for the main runs.
//!
//! `--check` is the regression gate `scripts/check.sh` runs: it executes
//! every workload under **both** scheduler backends and at shard counts
//! 2 and 4, requires all perf-zeroed snapshots to be byte-identical to
//! the serial wheel run's, and compares them byte-for-byte against the
//! committed golden (`crates/bench/golden/hotpath.json`), failing on any
//! drift; determinism makes this non-flaky. `--diff-dir=DIR` writes the
//! mismatching sharded digests to `DIR` for CI to upload on failure. It then *warns* (never fails — CI
//! machines vary) if events/s fell more than 20% below the recorded
//! `"hotpath"` entry.
//!
//! These runs keep the flight recorder **off** (`flight_cap = 0`, the
//! default), so the golden byte-compare doubles as the recorder's
//! zero-cost gate: any recorder code leaking into the disabled path —
//! consuming RNG draws, perturbing scheduling — shows up as snapshot
//! drift, and any residual overhead shows up in the events/s warning.
//! (`crates/net/tests/flight.rs` proves the complementary half: the
//! simulation is bit-identical with the recorder *on*.) The telemetry
//! bus gets the same treatment: the main runs keep it off (golden =
//! zero-cost gate), `--check` re-runs scenario1 with the bus armed and
//! requires the stability-stripped snapshots to match the off-run byte
//! for byte, and measure mode records the telemetry-on events/s as the
//! `"telemetry_overhead"` sub-entry, warning past 10%. The controller
//! audit ledger is gated identically: `--check` re-runs scenario1 with
//! the ledger armed and requires the controller-stripped snapshots to
//! match the off-run byte for byte (the audit is pull-based — no events,
//! no RNG — so nothing needs compensating), and measure mode records the
//! audit-on events/s as `"audit_overhead"`, warning past 10%.

use std::path::PathBuf;

use ezflow_bench::experiments::{scenario1, Algo};
use ezflow_bench::report::Scale;
use ezflow_net::{topo, Network, PerfSnapshot, SchedKind};
use ezflow_sim::{JsonValue, Time};

/// Mean events/s of the two committed `scenario1/quick` baseline
/// snapshots (`BENCH_sim_speed.json` as of the pre-optimisation tree:
/// 4,087,815 for 802.11 and 3,999,336 for EZ-flow) — the "before" the
/// `"hotpath"` entry compares against.
const BASELINE_EVENTS_PER_SEC: f64 = 4_043_575.0;

/// The committed `scenario1/quick` events/s after the PR 4 hot-path pass
/// (neighbor tables, pooled buffers, BOE miss filter) — measured when
/// every stale timer was still dispatched, so directly comparable to the
/// consumed-events rate. The scheduler work is gated on ≥ 1.3× this.
const PR4_EVENTS_PER_SEC: f64 = 6_202_790.0;

/// Relative drop below the recorded entry that triggers the (non-fatal)
/// `--check` performance warning.
const WARN_FRACTION: f64 = 0.20;

/// One timed run: label + the accounting the network left behind.
struct Timed {
    label: String,
    /// Events ever scheduled.
    scheduled: u64,
    /// Events dispatched to handlers.
    dispatched: u64,
    /// Stale timers elided inside the scheduler's pop loop.
    elided: u64,
    /// Timer entries moved in place by keyed rescheduling — consumed
    /// without ever reaching the pop loop.
    rescheduled: u64,
    wall_secs: f64,
    buffer_reuses: u64,
    /// Snapshot JSON, perf zeroed: the deterministic digest.
    digest: String,
}

impl Timed {
    /// Dispatched + elided + rescheduled: every scheduler entry the
    /// simulation consumed, wherever it died.
    fn consumed(&self) -> u64 {
        self.dispatched + self.elided + self.rescheduled
    }

    /// Fraction of consumed entries that went stale before their instant
    /// (the turbulence the eager-parking scheduler is built to remove).
    fn stale_fraction(&self) -> f64 {
        if self.consumed() > 0 {
            self.elided as f64 / self.consumed() as f64
        } else {
            0.0
        }
    }
}

fn timed(label: &str, mut net: Network, until: Time) -> Timed {
    net.run_until(until);
    // `snapshot_json` serialises the latency histograms from borrows —
    // the digest epilogue charges the run no per-flow/per-hop clones.
    let mut doc = net.snapshot_json(label);
    let scheduled = doc
        .get("scheduler")
        .and_then(|s| s.get("scheduled_total"))
        .and_then(JsonValue::as_u64)
        .expect("snapshot document has scheduler.scheduled_total");
    if let JsonValue::Object(fields) = &mut doc {
        // Zero the perf block (wall-clock noise) and strip the sections
        // telemetry and the audit ledger are allowed to add (a no-op on
        // the feature-off runs), so on- and off-digests are comparable.
        // Top-level keys only: each node's controller *name* field stays.
        for (k, v) in fields.iter_mut() {
            if k == "perf" {
                *v = PerfSnapshot::zeroed().to_json();
            }
        }
        fields.retain(|(k, _)| k != "stability" && k != "controller");
    }
    Timed {
        label: label.to_string(),
        scheduled,
        dispatched: net.events_processed(),
        elided: net.sched_stale_elided(),
        rescheduled: net.sched_rescheduled(),
        wall_secs: net.wall_time().as_secs_f64(),
        buffer_reuses: net.buffer_reuses(),
        digest: doc.to_compact(),
    }
}

/// The quick scenario-1 runs — the same topology, timeline, seed and
/// controllers whose perf the committed baseline snapshots recorded.
fn scenario1_runs(sched: SchedKind, shards: usize) -> Vec<Timed> {
    scenario1_runs_with(sched, None, 0, shards)
}

/// Same runs with an explicit telemetry interval (`Some` arms the bus),
/// audit capacity (nonzero arms the ledger) and scheduler shard count:
/// the overhead workloads and the on/off equivalence gates.
fn scenario1_runs_with(
    sched: SchedKind,
    telemetry_every: Option<ezflow_sim::Duration>,
    audit_cap: usize,
    shards: usize,
) -> Vec<Timed> {
    let mut scale = Scale::quick();
    scale.sched = sched;
    scale.telemetry_every = telemetry_every;
    scale.audit_cap = audit_cap;
    scale.shards = shards;
    let tl = scenario1::scale_timeline(scale, &[5, 605, 1805, 2504]);
    let (t0, t1, t2, t3) = (tl[0], tl[1], tl[2], tl[3]);
    let mut t = topo::scenario1();
    t.flows[0].start = t0;
    t.flows[0].stop = t3;
    t.flows[1].start = t1;
    t.flows[1].stop = t2;
    [Algo::Plain, Algo::EzFlow]
        .into_iter()
        .map(|algo| {
            let net = Network::new(scale.spec(&t, scale.seed), &*algo.factory());
            timed(&format!("scenario1/{}", algo.name()), net, t3)
        })
        .collect()
}

/// The dense-mesh stressor: every node senses every other.
fn grid_run(sched: SchedKind, shards: usize) -> Timed {
    let until = Time::from_secs(300);
    let t = topo::grid(4, 4, 140.0, Time::ZERO, until);
    let mut scale = Scale::quick();
    scale.sched = sched;
    scale.shards = shards;
    let net = Network::new(scale.spec(&t, 42), &*Algo::Plain.factory());
    timed("grid/4x4/140m", net, until)
}

fn golden_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/golden/hotpath.json"))
}

fn bench_json_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_speed.json"
    ))
}

/// The committed-golden document: label → perf-zeroed snapshot JSON,
/// compact (single line) — the golden is a machine artifact, not for
/// human diffing, and pretty-printing it costs ~15 k lines of repo.
fn golden_doc(runs: &[Timed]) -> String {
    let fields = runs
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                JsonValue::parse(&r.digest).expect("digest is valid JSON"),
            )
        })
        .collect();
    let mut text = JsonValue::Object(fields).to_compact();
    text.push('\n');
    text
}

/// Consumed (dispatched + elided) events per wall second over `runs`.
fn events_per_sec(runs: &[Timed]) -> f64 {
    let events: u64 = runs.iter().map(Timed::consumed).sum();
    let wall: f64 = runs.iter().map(|r| r.wall_secs).sum();
    if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    }
}

fn run_entry(r: &Timed) -> JsonValue {
    JsonValue::obj(vec![
        ("events_scheduled", (r.scheduled as f64).into()),
        ("events_dispatched", (r.dispatched as f64).into()),
        ("events_elided", (r.elided as f64).into()),
        ("events_rescheduled", (r.rescheduled as f64).into()),
        ("stale_fraction", r.stale_fraction().into()),
        ("wall_secs", r.wall_secs.into()),
        (
            "events_per_sec",
            if r.wall_secs > 0.0 {
                (r.consumed() as f64 / r.wall_secs).into()
            } else {
                0.0.into()
            },
        ),
        ("buffer_reuses", (r.buffer_reuses as f64).into()),
    ])
}

/// Reads `events_per_sec` recorded in the file's `"hotpath"` entry.
fn recorded_events_per_sec(doc: &JsonValue) -> Option<f64> {
    let JsonValue::Object(fields) = doc else {
        return None;
    };
    let entry = &fields.iter().find(|(k, _)| k == "hotpath")?.1;
    let JsonValue::Object(entry) = entry else {
        return None;
    };
    match entry
        .iter()
        .find(|(k, _)| k == "events_per_sec")
        .map(|(_, v)| v)?
    {
        JsonValue::Num(n) => Some(*n),
        _ => None,
    }
}

/// Timing passes per workload in measure mode. Wall-clock noise on a
/// shared box only ever slows a run down, so the fastest pass is the
/// machine's demonstrated capability; the digests are identical across
/// passes by determinism.
const PASSES: usize = 3;

fn best_of<F: Fn() -> Vec<Timed>>(f: F) -> Vec<Timed> {
    (0..PASSES)
        .map(|_| f())
        .max_by(|a, b| events_per_sec(a).total_cmp(&events_per_sec(b)))
        .expect("PASSES >= 1")
}

fn measure(out: &PathBuf, sched: SchedKind, shards: usize) -> std::process::ExitCode {
    let mut runs = best_of(|| scenario1_runs(sched, shards));
    let scenario_eps = events_per_sec(&runs);
    let grid = best_of(|| vec![grid_run(sched, shards)]).remove(0);
    let grid_eps = events_per_sec(std::slice::from_ref(&grid));
    runs.push(grid);
    let speedup = scenario_eps / BASELINE_EVENTS_PER_SEC;
    let speedup_pr4 = scenario_eps / PR4_EVENTS_PER_SEC;
    eprintln!(
        "scenario1/quick [{}]: {scenario_eps:.0} events/s consumed \
         ({speedup:.2}x over the {BASELINE_EVENTS_PER_SEC:.0} baseline, \
         {speedup_pr4:.2}x over the {PR4_EVENTS_PER_SEC:.0} PR 4 number)",
        sched.name()
    );
    eprintln!("grid/dense:      {grid_eps:.0} events/s consumed");
    for r in &runs {
        eprintln!(
            "  {}: {} dispatched + {} elided + {} rescheduled of {} scheduled \
             in {:.3} s, {} buffer reuses, stale fraction {:.7}",
            r.label,
            r.dispatched,
            r.elided,
            r.rescheduled,
            r.scheduled,
            r.wall_secs,
            r.buffer_reuses,
            r.stale_fraction()
        );
    }

    // Same workload, both backends, best-of-N each: the committed
    // apples-to-apples heap-vs-wheel comparison.
    let heap_eps = events_per_sec(&best_of(|| scenario1_runs(SchedKind::Heap, shards)));
    let wheel_eps = events_per_sec(&best_of(|| scenario1_runs(SchedKind::Wheel, shards)));
    eprintln!(
        "sched compare:   heap {heap_eps:.0} vs wheel {wheel_eps:.0} events/s ({:.2}x)",
        wheel_eps / heap_eps
    );
    let compare = JsonValue::obj(vec![
        ("workload", JsonValue::Str("scenario1/quick".to_string())),
        ("heap_events_per_sec", heap_eps.into()),
        ("wheel_events_per_sec", wheel_eps.into()),
        ("wheel_speedup", (wheel_eps / heap_eps).into()),
    ]);

    // Same workload with the telemetry bus armed at its default 100 ms:
    // the recorded telemetry-on cost, gated advisorily at 10%.
    let tel_eps = events_per_sec(&best_of(|| {
        scenario1_runs_with(
            sched,
            Some(ezflow_net::NetworkSpec::TELEMETRY_EVERY),
            0,
            shards,
        )
    }));
    let tel_overhead = 1.0 - tel_eps / scenario_eps;
    eprintln!(
        "telemetry on:    {tel_eps:.0} events/s consumed ({:+.1}% vs off)",
        -tel_overhead * 100.0
    );
    if tel_overhead > 0.10 {
        eprintln!(
            "WARNING: telemetry overhead {:.1}% exceeds the 10% budget",
            tel_overhead * 100.0
        );
    }
    let telemetry = JsonValue::obj(vec![
        ("workload", JsonValue::Str("scenario1/quick".to_string())),
        (
            "interval_ms",
            (ezflow_net::NetworkSpec::TELEMETRY_EVERY.as_micros() as f64 / 1000.0).into(),
        ),
        ("events_per_sec_off", scenario_eps.into()),
        ("events_per_sec_on", tel_eps.into()),
        ("overhead_fraction", tel_overhead.into()),
    ]);

    // Same workload with the audit ledger armed at the CLI's default
    // capacity: the recorded audit-on cost, same 10% advisory budget.
    let audit_eps = events_per_sec(&best_of(|| {
        scenario1_runs_with(sched, None, ezflow_net::NetworkSpec::AUDIT_CAP, shards)
    }));
    let audit_overhead = 1.0 - audit_eps / scenario_eps;
    eprintln!(
        "audit on:        {audit_eps:.0} events/s consumed ({:+.1}% vs off)",
        -audit_overhead * 100.0
    );
    if audit_overhead > 0.10 {
        eprintln!(
            "WARNING: audit overhead {:.1}% exceeds the 10% budget",
            audit_overhead * 100.0
        );
    }
    let audit = JsonValue::obj(vec![
        ("workload", JsonValue::Str("scenario1/quick".to_string())),
        (
            "audit_cap",
            (ezflow_net::NetworkSpec::AUDIT_CAP as f64).into(),
        ),
        ("events_per_sec_off", scenario_eps.into()),
        ("events_per_sec_on", audit_eps.into()),
        ("overhead_fraction", audit_overhead.into()),
    ]);

    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut fields = vec![
        (
            "baseline_events_per_sec",
            JsonValue::from(BASELINE_EVENTS_PER_SEC),
        ),
        ("pr4_events_per_sec", PR4_EVENTS_PER_SEC.into()),
        ("events_per_sec", scenario_eps.into()),
        ("speedup_vs_baseline", speedup.into()),
        ("speedup_vs_pr4", speedup_pr4.into()),
        ("sched", JsonValue::Str(sched.name().to_string())),
        ("machine_parallelism", (machine as f64).into()),
        ("os", JsonValue::Str(std::env::consts::OS.to_string())),
        ("arch", JsonValue::Str(std::env::consts::ARCH.to_string())),
    ];
    for r in &runs {
        fields.push((r.label.as_str(), run_entry(r)));
    }
    fields.push(("sched_compare", compare));
    fields.push(("telemetry_overhead", telemetry));
    fields.push(("audit_overhead", audit));
    let entry = JsonValue::obj(fields);

    let mut doc = match std::fs::read_to_string(out) {
        Ok(text) => JsonValue::parse(&text).unwrap_or(JsonValue::Object(Vec::new())),
        Err(_) => JsonValue::Object(Vec::new()),
    };
    if let JsonValue::Object(fields) = &mut doc {
        fields.retain(|(k, _)| k != "hotpath");
        fields.push(("hotpath".to_string(), entry));
    }
    let mut text = doc.to_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(out, text) {
        eprintln!("failed to write {}: {e}", out.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("recorded hotpath entry in {}", out.display());
    std::process::ExitCode::SUCCESS
}

/// All gated workloads under one backend and shard count.
fn all_runs(sched: SchedKind, shards: usize) -> Vec<Timed> {
    let mut runs = scenario1_runs(sched, shards);
    runs.push(grid_run(sched, shards));
    runs
}

/// Writes the two mismatching digests (pretty-printed, one key per line
/// — the flattened form CI uploads as its diff artifact) into `dir`.
fn write_diff_artifact(dir: &std::path::Path, label: &str, want: &Timed, got: &Timed, tag: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {}: {e}", dir.display());
        return;
    }
    let stem = label.replace('/', "_");
    let pretty = |t: &Timed| {
        let mut text = JsonValue::parse(&t.digest)
            .expect("digest is valid JSON")
            .to_pretty();
        text.push('\n');
        text
    };
    for (suffix, t) in [("serial", want), (tag, got)] {
        let path = dir.join(format!("{stem}.{suffix}.json"));
        match std::fs::write(&path, pretty(t)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn check(out: &PathBuf, diff_dir: Option<&std::path::Path>) -> std::process::ExitCode {
    let wheel_runs = all_runs(SchedKind::Wheel, 1);
    let heap_runs = all_runs(SchedKind::Heap, 1);
    // Backend equivalence first: heap and wheel must leave byte-identical
    // perf-zeroed snapshots behind on every workload.
    for (w, h) in wheel_runs.iter().zip(&heap_runs) {
        if w.digest != h.digest {
            eprintln!(
                "scheduler backends DIVERGED on {}: the wheel's snapshot does not\n\
                 match the heap's. The backends must be observationally identical;\n\
                 see crates/sim/tests/sched_equiv.rs for the reduced property.",
                w.label
            );
            return std::process::ExitCode::FAILURE;
        }
    }
    eprintln!("heap and wheel snapshots byte-identical on every workload");

    // Shard-count equivalence: partitioning the scheduler must leave the
    // same simulation behind on every workload — the byte-identity
    // contract of the sharded engine (crates/net/tests/shards.rs holds
    // the same pin; this leg is what the CI 2-thread job runs, with
    // `--diff-dir` capturing the mismatching digests as its artifact).
    for shards in [2usize, 4] {
        let sharded = all_runs(SchedKind::Wheel, shards);
        for (s, w) in sharded.iter().zip(&wheel_runs) {
            if s.digest != w.digest {
                eprintln!(
                    "sharded run DIVERGED on {} at shards={shards}: shard count must be\n\
                     unobservable; see crates/net/src/partition.rs and\n\
                     crates/sim/src/sched/sharded.rs.",
                    s.label
                );
                if let Some(dir) = diff_dir {
                    write_diff_artifact(dir, &s.label, w, s, &format!("shards{shards}"));
                }
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    eprintln!("sharded (2, 4) snapshots byte-identical to serial on every workload");

    // Telemetry-on equivalence: arming the bus must leave the same
    // simulation behind (perf zeroed, stability stripped by `timed`).
    let tel_runs = scenario1_runs_with(
        SchedKind::Wheel,
        Some(ezflow_net::NetworkSpec::TELEMETRY_EVERY),
        0,
        1,
    );
    for (t, w) in tel_runs.iter().zip(&wheel_runs) {
        if t.digest != w.digest {
            eprintln!(
                "telemetry-on snapshot DIVERGED from telemetry-off on {}: the\n\
                 sampler must never perturb the simulation; see crates/net/src/telemetry.rs.",
                t.label
            );
            return std::process::ExitCode::FAILURE;
        }
    }
    eprintln!("telemetry-on snapshots byte-identical to telemetry-off");

    // Audit-on equivalence: arming the ledger must leave the same
    // simulation behind (controller section stripped by `timed`; the
    // audit schedules nothing, so no counter compensation exists to get
    // wrong — any divergence is a probe writing where it should read).
    let audit_runs = scenario1_runs_with(
        SchedKind::Wheel,
        None,
        ezflow_net::NetworkSpec::AUDIT_CAP,
        1,
    );
    for (a, w) in audit_runs.iter().zip(&wheel_runs) {
        if a.digest != w.digest {
            eprintln!(
                "audit-on snapshot DIVERGED from audit-off on {}: the audit\n\
                 ledger must never perturb the simulation; see crates/net/src/audit.rs.",
                a.label
            );
            return std::process::ExitCode::FAILURE;
        }
    }
    eprintln!("audit-on snapshots byte-identical to audit-off");

    let scenario_eps = events_per_sec(&wheel_runs[..2]);
    let got = golden_doc(&wheel_runs);
    let golden = match std::fs::read_to_string(golden_path()) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "hotpath golden missing ({}): {e}\nrun `hotpath_bench --bless` and commit the result",
                golden_path().display()
            );
            return std::process::ExitCode::FAILURE;
        }
    };
    if got != golden {
        eprintln!(
            "hotpath snapshots DIVERGED from the committed golden ({}).\n\
             The hot-path optimisations must be observationally identical; if the\n\
             simulation's behaviour changed on purpose, re-bless with\n\
             `cargo run --release -p ezflow-bench --bin hotpath_bench -- --bless`.",
            golden_path().display()
        );
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("hotpath snapshots byte-identical to the committed golden");

    // Advisory only: wall-clock differs across machines, so a slow CI box
    // must not fail the gate.
    if let Ok(text) = std::fs::read_to_string(out) {
        if let Ok(doc) = JsonValue::parse(&text) {
            if let Some(recorded) = recorded_events_per_sec(&doc) {
                if scenario_eps < (1.0 - WARN_FRACTION) * recorded {
                    eprintln!(
                        "WARNING: scenario1/quick at {scenario_eps:.0} events/s is more than \
                         {:.0}% below the recorded {recorded:.0} — hot path may have regressed",
                        WARN_FRACTION * 100.0
                    );
                } else {
                    eprintln!(
                        "events/s {scenario_eps:.0} within {:.0}% of the recorded {recorded:.0}",
                        WARN_FRACTION * 100.0
                    );
                }
            }
        }
    }
    std::process::ExitCode::SUCCESS
}

fn bless() -> std::process::ExitCode {
    let runs = all_runs(SchedKind::Wheel, 1);
    // Refuse to bless a golden the heap backend cannot reproduce.
    let heap_runs = all_runs(SchedKind::Heap, 1);
    for (w, h) in runs.iter().zip(&heap_runs) {
        if w.digest != h.digest {
            eprintln!(
                "refusing to bless: heap and wheel snapshots differ on {}",
                w.label
            );
            return std::process::ExitCode::FAILURE;
        }
    }
    let text = golden_doc(&runs);
    let path = golden_path();
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            return std::process::ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("failed to write {}: {e}", path.display());
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("blessed {}", path.display());
    std::process::ExitCode::SUCCESS
}

fn main() -> std::process::ExitCode {
    let mut out = bench_json_path();
    let mut mode = "measure";
    let mut sched = SchedKind::default();
    let mut shards = 1usize;
    let mut diff_dir: Option<PathBuf> = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--check" => mode = "check",
            "--bless" => mode = "bless",
            s if s.starts_with("--out=") => out = s["--out=".len()..].into(),
            s if s.starts_with("--sched=") => {
                sched = s["--sched=".len()..].parse().expect("heap|wheel");
            }
            s if s.starts_with("--shards=") => {
                shards = s["--shards=".len()..].parse().expect("a shard count");
            }
            s if s.starts_with("--diff-dir=") => {
                diff_dir = Some(PathBuf::from(&s["--diff-dir=".len()..]));
            }
            _ => {
                eprintln!(
                    "usage: hotpath_bench [--check | --bless] [--out=FILE] \
                     [--sched=heap|wheel] [--shards=N] [--diff-dir=DIR]"
                );
                return std::process::ExitCode::from(2);
            }
        }
    }
    match mode {
        "check" => check(&out, diff_dir.as_deref()),
        "bless" => bless(),
        _ => measure(&out, sched, shards),
    }
}
