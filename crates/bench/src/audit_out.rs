//! Live controller-audit streaming destination for the experiment
//! harness.
//!
//! `experiments --audit-dir=DIR` arms the audit ledger on every network
//! the experiments build and registers `DIR` here; [`attach`] then gives
//! each labelled run its own `DIR/<label>.audit.jsonl` sink, so one
//! record per BOE estimation sample and per `CWmin` decision streams out
//! *while the simulation runs* — the `trace controller` inspector's
//! input format.
//!
//! Same shape as [`crate::telemetry_out`]: a process-wide `OnceLock`
//! rather than a `Scale` field keeps `Scale` `Copy` while the
//! destination, set once at CLI parse time, never varies within a
//! process. The `.audit.jsonl` suffix keeps the two streams apart when
//! both flags point at the same directory.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use ezflow_net::Network;

static DIR: OnceLock<PathBuf> = OnceLock::new();

/// Registers the streaming directory. First call wins; later calls are
/// ignored (the CLI parses the flag once).
pub fn set_dir(dir: impl Into<PathBuf>) {
    let _ = DIR.set(dir.into());
}

/// The registered streaming directory, if any.
pub fn dir() -> Option<&'static Path> {
    DIR.get().map(PathBuf::as_path)
}

/// Attaches `DIR/<label>.audit.jsonl` as `net`'s audit sink. A no-op
/// unless both the network's audit ledger is armed and a directory was
/// registered; creation failures are reported and skipped — the audit
/// must never fail an experiment.
pub fn attach(net: &mut Network, label: &str) {
    let Some(dir) = dir() else { return };
    if !net.audit.enabled() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("audit dir {} unavailable: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{label}.audit.jsonl"));
    match std::fs::File::create(&path) {
        Ok(f) => {
            net.audit.set_sink(Box::new(std::io::BufWriter::new(f)));
            eprintln!("streaming controller audit to {}", path.display());
        }
        Err(e) => eprintln!("audit sink {} failed: {e}", path.display()),
    }
}
