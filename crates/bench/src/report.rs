//! Experiment reporting: paper-vs-measured tables, ASCII figures, and
//! machine-readable run snapshots.

use std::fmt::Write as _;

use ezflow_net::{NetworkSpec, RunSnapshot, SchedKind};
use ezflow_sim::{Duration, JsonValue};

/// How much of the paper's experiment duration to simulate.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier on simulated durations (1.0 = the paper's length).
    pub time: f64,
    /// Random seed for the runs.
    pub seed: u64,
    /// Worker threads for independent runs within one experiment
    /// (`0` = machine parallelism, `1` = serial). Results are identical
    /// for any value — see [`crate::runner::SweepRunner`].
    pub jobs: usize,
    /// Flight-recorder capacity in packet journeys (`0`, the default,
    /// leaves the recorder off). Recording never perturbs a run — the
    /// simulation content is bit-identical either way — so turning this
    /// on changes only what the scenario experiments *export*: per-packet
    /// lifecycle JSONL attached to their reports as [`Lifecycle`]s.
    pub flight_cap: usize,
    /// Scheduler backend for every network the experiments build. Both
    /// kinds give bit-identical results (pinned by the `sched_equiv`
    /// regression test); `--sched=heap` exists to prove exactly that.
    pub sched: SchedKind,
    /// Telemetry sampling interval (`None`, the default, leaves the
    /// telemetry bus off). Arming it never perturbs a run — snapshots
    /// gain a `stability` section and, when a streaming directory is set
    /// via [`crate::telemetry_out`], each network streams one JSONL
    /// record per sample window while it runs.
    pub telemetry_every: Option<Duration>,
    /// Controller-audit ledger capacity in records (`0`, the default,
    /// leaves the ledger off). Arming it never perturbs a run — the
    /// audit is pull-based, touching no scheduler state and no RNG —
    /// snapshots gain a `controller` section and, when a streaming
    /// directory is set via [`crate::audit_out`], each network streams
    /// one JSONL record per estimation sample and `CWmin` decision.
    pub audit_cap: usize,
    /// Scheduler partitions per network (`1` = the serial queue). Any
    /// value gives bit-identical runs — sharding changes which internal
    /// queue an event waits in, never the merged pop order — so
    /// `--shards=N` exists to exercise the PDES machinery and read its
    /// cut/barrier counters, exactly like `--sched=heap` proves backend
    /// equivalence.
    pub shards: usize,
}

impl Scale {
    /// Full paper-length runs.
    pub fn full() -> Self {
        Scale {
            time: 1.0,
            seed: 42,
            jobs: 0,
            flight_cap: 0,
            sched: SchedKind::default(),
            telemetry_every: None,
            audit_cap: 0,
            shards: 1,
        }
    }

    /// Quick runs for `cargo bench` / CI. Half the paper's durations: the
    /// CAA needs a few hundred simulated seconds to converge (50-sample
    /// rounds at tens of packets per second), so cutting deeper than this
    /// turns adaptation transients into spurious check failures.
    pub fn quick() -> Self {
        Scale {
            time: 0.5,
            seed: 42,
            jobs: 0,
            flight_cap: 0,
            sched: SchedKind::default(),
            telemetry_every: None,
            audit_cap: 0,
            shards: 1,
        }
    }

    /// Scales a duration in seconds, keeping a sane floor.
    pub fn secs(&self, paper_secs: u64) -> u64 {
        ((paper_secs as f64 * self.time) as u64).max(30)
    }

    /// The sweep runner this scale asks for.
    pub fn runner(&self) -> crate::runner::SweepRunner {
        crate::runner::SweepRunner::new(self.jobs)
    }

    /// A [`NetworkSpec`] for `topo` carrying this scale's scheduler
    /// choice. The one spot every experiment goes through, so
    /// `--sched=heap` reaches every network any experiment builds.
    pub fn spec(&self, topo: &ezflow_net::Topology, seed: u64) -> NetworkSpec {
        let mut spec = NetworkSpec::from_topology(topo, seed);
        spec.sched = self.sched;
        spec.telemetry_every = self.telemetry_every;
        spec.audit_cap = self.audit_cap;
        spec.shards = self.shards;
        spec
    }
}

/// One row of a paper-vs-measured table.
#[derive(Clone, Debug)]
pub struct Row {
    /// What the row measures.
    pub label: String,
    /// The paper's reported value, if it reports one.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
}

impl Row {
    /// Builds a row.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
        }
    }
}

/// A named numeric series attached to a report (for CSV export).
#[derive(Clone, Debug)]
pub struct Series {
    /// File-friendly name, e.g. "fig1_3hop_node1_buffer".
    pub name: String,
    /// Column headers.
    pub headers: (String, String),
    /// The points.
    pub points: Vec<(f64, f64)>,
}

/// A per-packet lifecycle export from one simulated network: the flight
/// recorder's JSONL dump plus the admission stats needed to report how
/// bounded the capture was. Written out by [`Report::write_lifecycles`].
#[derive(Clone, Debug)]
pub struct Lifecycle {
    /// File-friendly run label, e.g. "scenario1_80211".
    pub label: String,
    /// One JSON [`ezflow_sim::TraceEvent`] per line, the `trace` CLI's
    /// input format.
    pub jsonl: String,
    /// The recorder's admission accounting (tracked / skipped / evicted /
    /// sampling stride) — surfaced so a bounded capture is never silent.
    pub stats: ezflow_net::FlightStats,
}

/// The result of one experiment.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment id (e.g. "fig1").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form context lines (what was run, what to look for).
    pub notes: Vec<String>,
    /// Paper-vs-measured rows.
    pub rows: Vec<Row>,
    /// Rendered ASCII figures.
    pub figures: Vec<String>,
    /// Pass/fail verdicts on the qualitative claims (label, ok).
    pub checks: Vec<(String, bool)>,
    /// Raw series for CSV export.
    pub series: Vec<Series>,
    /// Cross-layer run snapshots (one per simulated network), for JSON
    /// export via [`write_snapshots_json`].
    pub snapshots: Vec<RunSnapshot>,
    /// Per-packet lifecycle exports (one per traced network), for JSONL
    /// export via [`Report::write_lifecycles`]. Empty unless the run's
    /// [`Scale::flight_cap`] was non-zero.
    pub lifecycles: Vec<Lifecycle>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            ..Report::default()
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds a table row.
    pub fn row(
        &mut self,
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) {
        self.rows.push(Row::new(label, paper, measured));
    }

    /// Adds a qualitative check.
    pub fn check(&mut self, label: impl Into<String>, ok: bool) {
        self.checks.push((label.into(), ok));
    }

    /// Attaches a raw series for CSV export.
    pub fn series(
        &mut self,
        name: impl Into<String>,
        x: impl Into<String>,
        y: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) {
        self.series.push(Series {
            name: name.into(),
            headers: (x.into(), y.into()),
            points,
        });
    }

    /// Writes every attached series as `<dir>/<id>_<name>.csv`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for s in &self.series {
            let path = dir.join(format!("{}_{}.csv", self.id, s.name));
            let rows: Vec<Vec<f64>> = s.points.iter().map(|&(x, y)| vec![x, y]).collect();
            ezflow_stats::write_csv(&path, &[&s.headers.0, &s.headers.1], &rows)?;
            written.push(path);
        }
        Ok(written)
    }

    /// Attaches a per-packet lifecycle export from a traced run. The
    /// recorder's stats ride along so the writer can report sampling and
    /// eviction instead of dropping packets silently.
    pub fn lifecycle(
        &mut self,
        label: impl Into<String>,
        jsonl: String,
        stats: ezflow_net::FlightStats,
    ) {
        self.lifecycles.push(Lifecycle {
            label: label.into(),
            jsonl,
            stats,
        });
    }

    /// Writes every attached lifecycle as `<dir>/<id>_<label>.jsonl` and
    /// returns `(path, stats)` pairs for the caller to log. The capture is
    /// bounded by the recorder's journey cap — when the bound forced
    /// sampling (`stats.stride > 1`) or eviction, the returned stats say
    /// so; callers must surface that, never silently pretend the file is a
    /// full census.
    pub fn write_lifecycles(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<Vec<(std::path::PathBuf, ezflow_net::FlightStats)>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for lc in &self.lifecycles {
            let path = dir.join(format!("{}_{}.jsonl", self.id, lc.label));
            std::fs::write(&path, &lc.jsonl)?;
            written.push((path, lc.stats));
        }
        Ok(written)
    }

    /// True iff every qualitative check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }

    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== [{}] {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        if !self.rows.is_empty() {
            let w_label = self
                .rows
                .iter()
                .map(|r| r.label.len())
                .max()
                .unwrap_or(0)
                .max(9);
            let w_paper = self
                .rows
                .iter()
                .map(|r| r.paper.len())
                .max()
                .unwrap_or(0)
                .max(5);
            let _ = writeln!(
                out,
                "   {:<w_label$} | {:<w_paper$} | measured",
                "metric", "paper"
            );
            let _ = writeln!(out, "   {:-<w_label$}-+-{:-<w_paper$}-+----------", "", "");
            for r in &self.rows {
                let _ = writeln!(
                    out,
                    "   {:<w_label$} | {:<w_paper$} | {}",
                    r.label, r.paper, r.measured
                );
            }
        }
        for f in &self.figures {
            out.push('\n');
            for line in f.lines() {
                let _ = writeln!(out, "   {line}");
            }
        }
        if !self.checks.is_empty() {
            let _ = writeln!(out, "   checks:");
            for (label, ok) in &self.checks {
                let _ = writeln!(out, "     [{}] {label}", if *ok { "PASS" } else { "FAIL" });
            }
        }
        out
    }

    /// Renders the report as a Markdown section (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "{n}\n");
        }
        if !self.rows.is_empty() {
            let _ = writeln!(out, "| metric | paper | measured |");
            let _ = writeln!(out, "|---|---|---|");
            for r in &self.rows {
                let _ = writeln!(out, "| {} | {} | {} |", r.label, r.paper, r.measured);
            }
            out.push('\n');
        }
        for f in &self.figures {
            let _ = writeln!(out, "```text\n{f}```\n");
        }
        if !self.checks.is_empty() {
            for (label, ok) in &self.checks {
                let _ = writeln!(out, "- **{}** {label}", if *ok { "PASS" } else { "FAIL" });
            }
            out.push('\n');
        }
        out
    }
}

/// Serialises run snapshots gathered from `reports` as one JSON document:
/// `{"snapshots": [RunSnapshot, ...]}`, in report order.
pub fn snapshots_json(reports: &[Report]) -> JsonValue {
    let snaps: Vec<JsonValue> = reports
        .iter()
        .flat_map(|r| r.snapshots.iter())
        .map(RunSnapshot::to_json)
        .collect();
    JsonValue::obj(vec![("snapshots", JsonValue::Array(snaps))])
}

/// Writes [`snapshots_json`] pretty-printed to `path`.
pub fn write_snapshots_json(reports: &[Report], path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut text = snapshots_json(reports).to_pretty();
    text.push('\n');
    std::fs::write(path, text)
}

/// Formats kb/s ± std.
pub fn kbps(mean: f64, std: f64) -> String {
    format!("{mean:.1} ± {std:.1} kb/s")
}

/// Formats seconds.
pub fn secs(s: f64) -> String {
    format!("{s:.2} s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_floors_duration() {
        let s = Scale::quick();
        assert_eq!(s.secs(100), 50);
        assert_eq!(s.secs(2500), 1250);
        assert_eq!(s.secs(10), 30, "floor at 30 s");
        assert_eq!(Scale::full().secs(2500), 2500);
    }

    #[test]
    fn render_contains_rows_and_checks() {
        let mut r = Report::new("figX", "demo");
        r.note("context");
        r.row("throughput F1", "119 kb/s", "121.3 kb/s");
        r.check("stabilized", true);
        r.check("broken", false);
        let text = r.render();
        assert!(text.contains("[figX] demo"));
        assert!(text.contains("119 kb/s"));
        assert!(text.contains("[PASS] stabilized"));
        assert!(text.contains("[FAIL] broken"));
        assert!(!r.all_ok());
        let md = r.render_markdown();
        assert!(md.contains("| throughput F1 | 119 kb/s | 121.3 kb/s |"));
    }
}
