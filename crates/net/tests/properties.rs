//! Property-based, whole-network invariants: for random chain lengths,
//! loss rates, rates and seeds, the simulator must conserve packets,
//! respect buffer bounds, and be a pure function of its inputs.

use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::{topo, Network, NetworkSpec};
use ezflow_sim::Time;
use proptest::prelude::*;

fn std_controller(_: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

fn build(hops: usize, loss: f64, rate: u64, seed: u64, secs: u64) -> Network {
    let mut t = topo::chain(hops, Time::ZERO, Time::from_secs(secs));
    t.flows[0].rate_bps = rate;
    let mut spec = NetworkSpec::from_topology(&t, seed);
    if loss > 0.0 {
        spec.loss = ezflow_phy::LossModel::uniform(loss);
    }
    Network::new(spec, &std_controller)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every packet is either delivered, dropped somewhere
    /// (source queue, relay queue, retry limit), still queued, or in
    /// flight inside a MAC. We check the delivered count never exceeds
    /// generated minus visible losses, and buffers respect the cap.
    #[test]
    fn network_conserves_and_bounds(
        seed in any::<u64>(),
        hops in 1usize..6,
        loss in 0f64..0.3,
        rate in 100_000u64..2_000_000,
    ) {
        let secs = 20;
        let mut net = build(hops, loss, rate, seed, secs);
        net.run_until(Time::from_secs(secs));

        let delivered = net.metrics.delivered[&0];
        let src_drops = net.metrics.source_drops[&0];
        let q_drops: u64 = net.metrics.queue_drops.iter().sum();
        let r_drops: u64 = net.metrics.retry_drops.iter().sum();
        // Queued leftovers + up to one in-service frame per node.
        let queued: u64 = (0..net.node_count()).map(|n| net.occupancy(n) as u64).sum();
        let in_flight = net.node_count() as u64;

        // Generated packets: the CBR source emits one per interval while
        // active. We reconstruct from metric counters instead of duration
        // arithmetic: everything generated must be accounted for.
        let accounted = delivered + src_drops + q_drops + r_drops + queued;
        // Delivered can't be bigger than everything accounted (slack for
        // in-flight frames inside MACs).
        prop_assert!(accounted + in_flight >= delivered);

        for n in 0..net.node_count() {
            prop_assert!(net.occupancy(n) <= net.queue_cap() * 2);
        }
        // Buffer samples never exceeded the cap either.
        for n in 0..net.node_count() {
            if let Some(max) = net.metrics.buffer[n].max_in(Time::ZERO, Time::from_secs(secs)) {
                prop_assert!(max <= net.queue_cap() as f64 + 0.5);
            }
        }
    }

    /// Determinism: the same spec and seed reproduce identical outcomes.
    #[test]
    fn network_is_deterministic(seed in any::<u64>(), hops in 1usize..5) {
        let secs = 15;
        let mut a = build(hops, 0.05, 2_000_000, seed, secs);
        let mut b = build(hops, 0.05, 2_000_000, seed, secs);
        a.run_until(Time::from_secs(secs));
        b.run_until(Time::from_secs(secs));
        prop_assert_eq!(a.events_processed(), b.events_processed());
        prop_assert_eq!(a.metrics.delivered[&0], b.metrics.delivered[&0]);
        for n in 0..a.node_count() {
            prop_assert_eq!(a.mac_stats(n).tx_attempts, b.mac_stats(n).tx_attempts);
            prop_assert_eq!(a.occupancy(n), b.occupancy(n));
        }
    }

    /// MAC-level sanity across random conditions: successes are acked
    /// data frames, and the receiver's delivered count matches the
    /// sender's successes (stop-and-wait, duplicate-filtered).
    #[test]
    fn link_accounting_matches(seed in any::<u64>(), loss in 0f64..0.3) {
        let secs = 20;
        let mut net = build(1, loss, 2_000_000, seed, secs);
        net.run_until(Time::from_secs(secs));
        let tx = net.mac_stats(0);
        let rx = net.mac_stats(1);
        // Every success at the sender is a clean ACK round trip; the
        // receiver delivered at least that many distinct frames (it may
        // have delivered more whose ACKs were then lost and the frame was
        // eventually dropped by the sender's retry limit).
        prop_assert!(rx.delivered >= tx.tx_success);
        prop_assert!(rx.delivered <= tx.tx_success + tx.drops_retry + 1);
        // Duplicates happen only when loss is possible.
        if loss == 0.0 {
            prop_assert_eq!(rx.dup_rx, 0);
        }
        prop_assert_eq!(net.metrics.delivered[&0], rx.delivered);
    }

    /// Observability counters are cumulative: a later snapshot of the same
    /// run never shows a smaller value for any counter, and each node's
    /// airtime buckets always partition elapsed time exactly.
    #[test]
    fn snapshot_counters_are_monotone(
        seed in any::<u64>(),
        hops in 1usize..5,
        loss in 0f64..0.2,
    ) {
        let secs = 12;
        let mut net = build(hops, loss, 2_000_000, seed, secs);
        net.run_until(Time::from_secs(secs / 2));
        let early = net.snapshot("early");
        net.run_until(Time::from_secs(secs));
        let late = net.snapshot("late");

        prop_assert!(late.scheduler.scheduled_total >= early.scheduler.scheduled_total);
        prop_assert!(late.scheduler.dispatched_total >= early.scheduler.dispatched_total);
        prop_assert!(late.scheduler.depth_high_water >= early.scheduler.depth_high_water);
        prop_assert!(late.trace_records >= early.trace_records);
        for (e, l) in early
            .scheduler
            .dispatched_by_kind
            .iter()
            .zip(late.scheduler.dispatched_by_kind.iter())
        {
            prop_assert_eq!(&e.0, &l.0);
            prop_assert!(l.1 >= e.1, "dispatch count for {} went backwards", e.0);
        }

        for (a, b) in early.nodes.iter().zip(late.nodes.iter()) {
            let ma = &a.mac;
            let mb = &b.mac;
            prop_assert!(mb.tx_attempts >= ma.tx_attempts);
            prop_assert!(mb.tx_success >= ma.tx_success);
            prop_assert!(mb.retries >= ma.retries);
            prop_assert!(mb.backoff_slots >= ma.backoff_slots);
            prop_assert!(mb.cca_busy >= ma.cca_busy);
            for (qa, qb) in a.queues.iter().zip(b.queues.iter()) {
                prop_assert!(qb.high_water >= qa.high_water);
                prop_assert!(qb.drops >= qa.drops);
                prop_assert!(qb.accepted >= qa.accepted);
            }
            prop_assert!(b.airtime.tx_us >= a.airtime.tx_us);
            // The buckets partition the elapsed simulated time exactly.
            prop_assert_eq!(a.airtime.total_us(), early.at_us);
            prop_assert_eq!(b.airtime.total_us(), late.at_us);
            let (tx, rx, busy, idle) = b.airtime.fractions();
            prop_assert!((tx + rx + busy + idle - 1.0).abs() < 1e-9);
        }

        prop_assert!(late.channel.tx_started >= early.channel.tx_started);
        prop_assert!(late.channel.clean_deliveries >= early.channel.clean_deliveries);
    }
}
