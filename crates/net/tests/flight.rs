//! Integration tests for the packet flight recorder: full-journey
//! reconstruction on the paper's scenario 1, drop attribution, latency
//! histograms, and the recorder's zero-interference guarantee.

use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::flight::{group_journeys, summarize_journey};
use ezflow_net::network::{Network, NetworkSpec};
use ezflow_net::snapshot::PerfSnapshot;
use ezflow_net::topo;
use ezflow_sim::{DropCause, Time, TraceKind, TracePayload, TraceRing};

fn std_controller(_id: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

/// Scenario 1 with the recorder on, run for `secs` seconds (flow F1
/// starts at 5 s; F2 only at 605 s, far past these runs).
fn run_scenario1(secs: u64, flight_cap: usize, trace_cap: usize) -> Network {
    let t = topo::scenario1();
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.flight_cap = flight_cap;
    spec.trace_cap = trace_cap;
    let mut net = Network::new(spec, &std_controller);
    net.run_until(Time::from_secs(secs));
    net
}

#[test]
fn delivered_packet_journey_reconstructs_the_full_hop_sequence() {
    let net = run_scenario1(30, 4096, 0);
    assert!(net.metrics.delivered[&0] > 0, "F1 must deliver");

    // Parse the recorder's own JSONL export — the same path the `trace`
    // CLI consumes — and reconstruct journeys from it.
    let jsonl = net.flight.to_jsonl();
    let events = TraceRing::parse_jsonl(&jsonl).expect("export parses");
    let journeys = group_journeys(&events);
    let delivered: Vec<_> = journeys
        .iter()
        .map(|(&seq, evs)| summarize_journey(seq, evs))
        .filter(|s| s.delivered.is_some())
        .collect();
    assert!(!delivered.is_empty(), "some tracked packet was delivered");

    // F1's path is N12→N10→N8→N6→N4→N3→N2→N1→N0: enqueued at the source
    // and each of the 7 relays, delivered at the gateway.
    let f1_path = [12usize, 10, 8, 6, 4, 3, 2, 1];
    let complete = delivered
        .iter()
        .find(|s| s.hops == f1_path)
        .unwrap_or_else(|| {
            panic!(
                "no journey covered the full F1 path; first: {:?}",
                delivered[0]
            )
        });
    assert_eq!(complete.flow, Some(0));
    assert_eq!(complete.delivered.unwrap().1, 0, "sink is the gateway N0");
    assert!(
        complete.attempts >= f1_path.len() as u64,
        "at least one DCF attempt per hop, got {}",
        complete.attempts
    );
    assert!(complete.latency_us().unwrap() > 0);

    // The raw journey interleaves the lifecycle correctly: it starts with
    // Admit and every hop shows Enqueue before Dequeue.
    let raw = net.flight.journey(complete.seq).unwrap();
    assert_eq!(raw[0].kind, TraceKind::Admit);
    let kinds: Vec<TraceKind> = raw.iter().map(|e| e.kind).collect();
    let first_deq = kinds.iter().position(|&k| k == TraceKind::Dequeue).unwrap();
    let first_enq = kinds.iter().position(|&k| k == TraceKind::Enqueue).unwrap();
    assert!(first_enq < first_deq, "enqueue precedes dequeue");
    assert_eq!(*kinds.last().unwrap(), TraceKind::Deliver);
    // On a clean channel, every recorded decode outcome for this packet's
    // data transmissions is accounted for (clean/capture/collision/loss).
    assert!(
        raw.iter().any(|e| e.kind == TraceKind::RxOutcome),
        "decode outcomes recorded"
    );
}

#[test]
fn dropped_packet_journey_terminates_in_the_correct_drop_cause() {
    let net = run_scenario1(35, 8192, 0);
    let total_source: u64 = net.metrics.source_drops.values().sum();
    assert!(total_source > 0, "a saturating CBR source must overflow");

    let jsonl = net.flight.to_jsonl();
    let events = TraceRing::parse_jsonl(&jsonl).expect("export parses");
    let journeys = group_journeys(&events);

    let mut saw_source_full = false;
    let mut saw_relay_drop = false;
    for (&seq, evs) in &journeys {
        let s = summarize_journey(seq, evs);
        let Some((_, node, cause)) = s.dropped else {
            continue;
        };
        // A dropped journey has no delivery, and the drop is its last word.
        assert!(
            s.delivered.is_none(),
            "seq {seq} both dropped and delivered"
        );
        assert_eq!(evs.last().unwrap().kind, TraceKind::Drop);
        match cause {
            DropCause::SourceQueueFull => {
                assert_eq!(node, 12, "F1 source drops happen at N12");
                assert_eq!(s.hops, vec![12], "never left the source");
                saw_source_full = true;
            }
            DropCause::QueueFull | DropCause::RetryLimit => {
                saw_relay_drop = true;
            }
            other => panic!("unexpected cause {other:?} in scenario 1"),
        }
    }
    assert!(saw_source_full, "source-queue-full journeys recorded");
    assert!(
        saw_relay_drop,
        "the saturated 8-hop chain must shed packets past the source"
    );
}

#[test]
fn every_drop_counter_is_matched_by_trace_events() {
    // Satellite check: each drop path emits a typed `Drop` trace record,
    // so trace counts re-derive the counters exactly. The ring must be
    // large enough that nothing was evicted, or the census is partial.
    let net = run_scenario1(25, 0, 1 << 19);
    assert_eq!(
        net.trace.pushed_total(),
        net.trace.len() as u64,
        "ring evicted records; raise the cap for an exact census"
    );

    let mut by_cause = std::collections::BTreeMap::new();
    for ev in net.trace.iter() {
        if let TracePayload::Drop { cause, .. } = ev.payload {
            *by_cause.entry(cause.name()).or_insert(0u64) += 1;
        }
    }
    let count = |name: &str| by_cause.get(name).copied().unwrap_or(0);

    let source: u64 = net.metrics.source_drops.values().sum();
    let queue: u64 = net.metrics.queue_drops.iter().sum();
    let retry: u64 = net.metrics.retry_drops.iter().sum();
    // DCF freeze/restart churn no longer strands timers: invalidated
    // entries are rescheduled in place or parked, so pop-time elision
    // (and the MAC's defensive counter behind it) stays dry.
    let stale = net.sched_stale_elided()
        + (0..net.node_count())
            .map(|n| net.mac_stats(n).stale_epochs)
            .sum::<u64>();
    assert!(
        net.sched_rescheduled() > 0,
        "DCF churn must move timers in place"
    );
    assert_eq!(stale, 0, "eager parking must keep the elision path dry");
    assert!(
        source > 0 && queue > 0,
        "saturation produces both drop kinds"
    );
    assert_eq!(count("source_queue_full"), source);
    // Unroutable frames also land in `queue_drops` (none exist here, but
    // the identity is over the sum of both attributed causes).
    assert_eq!(count("queue_full") + count("unroutable"), queue);
    assert_eq!(count("retry_limit"), retry);
    assert_eq!(count("stale_epoch"), stale, "event drops attributed too");
}

#[test]
fn latency_histograms_populate_and_round_trip() {
    let mut net = run_scenario1(30, 0, 0);
    let snap = net.snapshot("scenario1/hist");

    // Per-flow: every delivered F1 packet landed in the histogram.
    let (flow, h) = &snap.latency.per_flow[0];
    assert_eq!(*flow, 0);
    assert_eq!(h.total(), net.metrics.delivered[&0]);
    let [p50, p95, p99, p999] = h.percentiles();
    assert!(p50 > 0 && p50 <= p95 && p95 <= p99 && p99 <= p999);

    // Per-hop: every node on F1's path transmitted successfully; nodes
    // off the path (N5..N11 odd branch) recorded nothing.
    for &n in &[12usize, 10, 8, 6, 4, 3, 2, 1] {
        assert!(snap.latency.per_hop[n].total() > 0, "node {n} quiet");
        assert!(snap.latency.per_hop[n].percentiles()[2] > 0, "node {n} p99");
    }
    assert_eq!(snap.latency.per_hop[11].total(), 0, "F2 not started yet");

    // The whole latency section survives the JSON round trip.
    let text = snap.to_json().to_pretty();
    let parsed = ezflow_sim::JsonValue::parse(&text).unwrap();
    let back = ezflow_net::snapshot::RunSnapshot::from_json(&parsed).unwrap();
    assert_eq!(back.latency, snap.latency);
    assert_eq!(back, snap);
}

#[test]
fn recorder_on_and_off_produce_identical_simulations() {
    // The tentpole's zero-interference guarantee: recording must never
    // consult the RNG or perturb scheduling, so the simulation content is
    // bit-identical with the recorder on or off. (The hotpath golden gate
    // enforces the recorder-off half against the committed snapshot.)
    let snap_text = |flight_cap: usize| {
        let mut net = run_scenario1(20, flight_cap, 0);
        let mut snap = net.snapshot("interference");
        snap.perf = PerfSnapshot::zeroed();
        snap.to_json().to_pretty()
    };
    assert_eq!(snap_text(0), snap_text(4096));
}

#[test]
fn flight_stats_account_for_every_admitted_packet() {
    let net = run_scenario1(25, 512, 0);
    let st = net.flight.stats();
    // Everything offered was either tracked or (deterministically) skipped.
    let offered: u64 = st.tracked + st.skipped;
    assert!(offered > 0);
    assert!(st.tracked > 0);
    assert!(
        net.flight.packets() <= 512,
        "cap bounds retained journeys, got {}",
        net.flight.packets()
    );
    assert_eq!(
        net.flight.packets() as u64,
        st.tracked - st.evicted,
        "tracked = retained + evicted"
    );
    // The export stays parseable under eviction pressure.
    let parsed = TraceRing::parse_jsonl(&net.flight.to_jsonl()).unwrap();
    assert_eq!(parsed.len(), net.flight.events());
}
