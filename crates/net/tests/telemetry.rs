//! Integration tests for the telemetry bus: the zero-interference
//! guarantee (telemetry on/off produce byte-identical snapshots, across
//! random sample intervals), ring/window accounting, JSONL streaming,
//! and the engine self-profiler staying perf-only.

use std::sync::OnceLock;

use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::engine::PROFILE_KINDS;
use ezflow_net::network::{Network, NetworkSpec};
use ezflow_net::snapshot::PerfSnapshot;
use ezflow_net::topo;
use ezflow_sim::{Duration, JsonValue, Time};
use proptest::prelude::*;

fn std_controller(_id: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

/// Every zero-interference comparison runs scenario 1 to the same
/// horizon (F1 starts at 5 s, so this covers ramp-up and saturation).
const RUN_SECS: u64 = 12;

fn run_scenario1(telemetry_every: Option<Duration>, cap: usize) -> Network {
    let t = topo::scenario1();
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.telemetry_every = telemetry_every;
    spec.telemetry_cap = cap;
    let mut net = Network::new(spec, &std_controller);
    net.run_until(Time::from_secs(RUN_SECS));
    net
}

/// Snapshot text with the perf section zeroed and the stability section
/// stripped — exactly the parts telemetry is *allowed* to populate.
/// Everything else must be byte-identical with telemetry on or off.
fn comparable_text(net: &mut Network) -> String {
    let mut snap = net.snapshot("interference");
    snap.perf = PerfSnapshot::zeroed();
    snap.stability = None;
    snap.to_json().to_pretty()
}

/// The telemetry-off baseline, computed once per test process.
fn off_text() -> &'static str {
    static OFF: OnceLock<String> = OnceLock::new();
    OFF.get_or_init(|| comparable_text(&mut run_scenario1(None, 1 << 16)))
}

#[test]
fn telemetry_on_and_off_produce_identical_simulations() {
    // The tentpole's zero-interference guarantee at the default interval
    // and a spread of others (sub-default, odd, coarse).
    for &ms in &[100u64, 37, 250, 1000] {
        let mut net = run_scenario1(Some(Duration::from_millis(ms)), 1 << 16);
        let mut snap = net.snapshot("interference");
        assert!(
            snap.stability.is_some(),
            "telemetry on must surface a stability section"
        );
        assert_eq!(
            snap.stability.as_ref().unwrap().windows,
            net.telemetry.windows()
        );
        snap.perf = PerfSnapshot::zeroed();
        snap.stability = None;
        assert_eq!(
            snap.to_json().to_pretty(),
            off_text(),
            "telemetry at {ms} ms perturbed the simulation"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Satellite: the on/off byte-identity holds for *random* sample
    /// intervals, not just round ones — the sampler event must never
    /// collide with simulation scheduling no matter where it lands.
    #[test]
    fn zero_interference_holds_for_random_sample_intervals(us in 7_001u64..3_000_000) {
        let mut net = run_scenario1(Some(Duration::from_micros(us)), 1 << 16);
        prop_assert_eq!(comparable_text(&mut net), off_text());
    }
}

#[test]
fn profiler_is_perf_only_and_times_every_kind() {
    // Profile + telemetry on: handler wall-times populate (including the
    // dedicated telemetry slot past the counted kinds) yet the
    // comparable snapshot still matches the plain off-run byte for byte.
    let t = topo::scenario1();
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.telemetry_every = Some(Duration::from_millis(100));
    spec.profile = true;
    let mut net = Network::new(spec, &std_controller);
    net.run_until(Time::from_secs(RUN_SECS));

    let snap = net.snapshot("profile");
    assert!(
        snap.perf.handler_ns[..PROFILE_KINDS - 1]
            .iter()
            .sum::<u64>()
            > 0
    );
    assert!(
        snap.perf.handler_ns[PROFILE_KINDS - 1] > 0,
        "telemetry dispatch must be timed in its own slot"
    );
    assert_eq!(snap.perf.telemetry_windows, net.telemetry.windows());
    assert!(snap.perf.telemetry_windows_per_sec > 0.0);
    assert_eq!(comparable_text(&mut net), off_text());

    // Profiler off: the slots stay zero (the golden gate depends on it).
    let mut plain = run_scenario1(Some(Duration::from_millis(100)), 1 << 16);
    let psnap = plain.snapshot("profile-off");
    assert!(psnap.perf.handler_ns.iter().all(|&ns| ns == 0));
}

#[test]
fn rings_window_the_run_and_telescope_throughput() {
    let net = run_scenario1(Some(Duration::from_millis(100)), 1 << 16);
    let w = net.telemetry.windows();
    assert!(
        (115..=121).contains(&w),
        "expected ~120 windows over {RUN_SECS} s, got {w}"
    );
    for node in 0..net.node_count() {
        assert_eq!(net.telemetry.queue_depth(node).len() as u64, w);
        assert_eq!(net.telemetry.active_frac(node).len() as u64, w);
        assert!(net
            .telemetry
            .active_frac(node)
            .iter()
            .all(|(_, &f)| (0.0..=1.0).contains(&f)));
    }
    // F1's source (N12) saturates its 50-packet queue; the ring sees it.
    assert!(net.telemetry.queue_depth(12).iter().any(|(_, &d)| d > 0.0));

    // The per-window throughput deltas telescope back to the cumulative
    // total — no window is lost or double-counted.
    let (id, kbps) = net.telemetry.flow_kbps().next().unwrap();
    assert_eq!(id, 0);
    let summed_bits: f64 = kbps.iter().map(|(_, &k)| k * 1000.0 * 0.1).sum();
    let total_bits = net.metrics.throughput[&0].total_bits();
    assert!(total_bits > 0.0, "F1 must deliver in {RUN_SECS} s");
    assert!(
        (summed_bits - total_bits).abs() <= 1e-6 * total_bits,
        "windowed kbps must telescope: {summed_bits} vs {total_bits}"
    );
}

#[test]
fn rings_evict_oldest_windows_at_cap() {
    let mut net = run_scenario1(Some(Duration::from_millis(100)), 32);
    let w = net.telemetry.windows();
    assert!(w > 32, "run long enough to overflow the cap");
    let ring = net.telemetry.queue_depth(0);
    assert_eq!(ring.len(), 32);
    assert_eq!(ring.dropped(), w - 32);
    assert_eq!(ring.first_index(), w - 32);
    assert_eq!(ring.next_index(), w);
    // A capped run is still interference-free.
    assert_eq!(comparable_text(&mut net), off_text());
}

#[test]
fn jsonl_sink_streams_one_record_per_window() {
    let t = topo::scenario1();
    let mut spec = NetworkSpec::from_topology(&t, 42);
    spec.telemetry_every = Some(Duration::from_millis(500));
    let mut net = Network::new(spec, &std_controller);
    let path = std::env::temp_dir().join(format!(
        "ezflow_telemetry_sink_{}.jsonl",
        std::process::id()
    ));
    net.telemetry
        .set_sink(Box::new(std::fs::File::create(&path).expect("temp file")));
    net.run_until(Time::from_secs(10));
    let text = std::fs::read_to_string(&path).expect("sink written");
    std::fs::remove_file(&path).ok();

    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, net.telemetry.windows());
    for (i, line) in lines.iter().enumerate() {
        let rec = JsonValue::parse(line).expect("each record parses");
        assert_eq!(
            rec.get("window").and_then(JsonValue::as_u64),
            Some(i as u64)
        );
        assert_eq!(
            rec.get("interval_us").and_then(JsonValue::as_u64),
            Some(500_000)
        );
        let at = rec.get("at_us").and_then(JsonValue::as_u64).unwrap();
        assert_eq!(at, (i as u64 + 1) * 500_000, "windows land on the grid");
        let nodes = rec.get("nodes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(nodes.len(), net.node_count());
        for nd in nodes {
            let q = nd.get("queue").and_then(JsonValue::as_f64).unwrap();
            assert!(q >= 0.0);
            let af = nd.get("active_frac").and_then(JsonValue::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&af));
        }
        let flows = rec.get("flows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(flows.len(), 2, "scenario 1 declares F1 and F2");
    }
}
