//! Scenario-spec properties: any spec the strategy can generate must
//! survive the JSON round trip unchanged, generative topologies must be
//! pure functions of their seeds, and the on-off transport must shape a
//! real network's offered load the way its duty cycle says.

use ezflow_net::scenario::{
    LinkBurst, LinkChurn, LinkPer, LossSpec, MixEntry, ScenarioSpec, SweepSpec, TopologySpec,
    TrafficMix,
};
use ezflow_net::{topo, FlowSpec, Network, NetworkSpec, Transport};
use ezflow_phy::{ChurnWindow, GilbertElliott, Position};
use ezflow_sim::{Duration, Time};
use proptest::prelude::*;

/// Seeds that survive JSON: the kernel writes whole numbers exactly only
/// up to 2^53 (the f64 integer limit), so spec seeds live in that range.
fn seed_st() -> impl Strategy<Value = u64> {
    0u64..(1u64 << 53)
}

fn time_st() -> impl Strategy<Value = Time> {
    (0u64..2_000_000_000_000).prop_map(Time::from_micros)
}

fn duration_st() -> impl Strategy<Value = Duration> {
    (1u64..100_000_000_000).prop_map(Duration::from_micros)
}

fn transport_st() -> impl Strategy<Value = Transport> {
    prop_oneof![
        Just(Transport::Cbr),
        (1usize..64, 1u32..2000).prop_map(|(window, ack_payload)| Transport::Windowed {
            window,
            ack_payload,
        }),
        (duration_st(), duration_st(), 1.01f64..8.0).prop_map(|(mean_on, mean_off, alpha)| {
            Transport::OnOff {
                mean_on,
                mean_off,
                alpha,
            }
        }),
    ]
}

fn topology_st() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..16).prop_map(|ps| {
            TopologySpec::Explicit {
                positions: ps.into_iter().map(|(x, y)| Position::new(x, y)).collect(),
            }
        }),
        (1usize..10, 1.0f64..500.0)
            .prop_map(|(hops, spacing)| TopologySpec::Chain { hops, spacing }),
        (1usize..5, 2usize..6, 1.0f64..500.0).prop_map(|(rows, cols, spacing)| {
            TopologySpec::Grid {
                rows,
                cols,
                spacing,
            }
        }),
        (
            3usize..50,
            10.0f64..5000.0,
            10.0f64..5000.0,
            1usize..5,
            seed_st()
        )
            .prop_map(
                |(nodes, width, height, g, seed)| TopologySpec::RandomGeometric {
                    nodes,
                    width,
                    height,
                    gateways: g.min(nodes - 1),
                    seed,
                }
            ),
    ]
}

fn flows_st() -> impl Strategy<Value = Vec<FlowSpec>> {
    prop::collection::vec(
        (
            prop::collection::vec(0usize..64, 2..8),
            1u64..10_000_000,
            1u32..4000,
            time_st(),
            time_st(),
            transport_st(),
        ),
        0..5,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(
                |(i, (path, rate_bps, payload_bytes, start, stop, transport))| FlowSpec {
                    id: i as u32,
                    path,
                    rate_bps,
                    payload_bytes,
                    start,
                    stop,
                    transport,
                },
            )
            .collect()
    })
}

fn ge_st() -> impl Strategy<Value = GilbertElliott> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.2, 0.0f64..1.0).prop_map(
        |(p_g2b, p_b2g, p_good, p_bad)| GilbertElliott {
            p_g2b,
            p_b2g,
            p_good,
            p_bad,
        },
    )
}

fn loss_st() -> impl Strategy<Value = LossSpec> {
    (
        0.0f64..1.0,
        prop::collection::vec((0usize..32, 0usize..32, 0.0f64..1.0, any::<bool>()), 0..4),
        prop::option::of(ge_st()),
        prop::collection::vec((0usize..32, 0usize..32, ge_st(), any::<bool>()), 0..3),
        prop::collection::vec(
            (
                0usize..32,
                0usize..32,
                duration_st(),
                duration_st(),
                0u64..5_000_000,
                any::<bool>(),
            ),
            0..3,
        ),
    )
        .prop_map(|(default_per, links, burst, burst_links, churn)| LossSpec {
            default_per,
            links: links
                .into_iter()
                .map(|(a, b, per, symmetric)| LinkPer {
                    a,
                    b,
                    per,
                    symmetric,
                })
                .collect(),
            burst,
            burst_links: burst_links
                .into_iter()
                .map(|(a, b, ge, symmetric)| LinkBurst {
                    a,
                    b,
                    ge,
                    symmetric,
                })
                .collect(),
            churn: churn
                .into_iter()
                .map(|(a, b, up, down, phase, symmetric)| LinkChurn {
                    a,
                    b,
                    window: ChurnWindow::new(up, down, Duration::from_micros(phase)),
                    symmetric,
                })
                .collect(),
        })
}

/// Lowercase identifier-ish strings (the vendored proptest has no regex
/// strategies).
fn name_st() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..10)
        .prop_map(|v| v.into_iter().map(|c| (b'a' + c) as char).collect())
}

/// Printable free text, JSON-escape-worthy characters included.
fn text_st() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefXYZ0123456789 .-^()\"\\/\x07";
    prop::collection::vec(0usize..CHARS.len(), 0..24)
        .prop_map(|v| v.into_iter().map(|i| CHARS[i] as char).collect())
}

fn spec_st() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            name_st(),
            text_st(),
            1u64..2_000_000_000_000,
            seed_st(),
            1usize..10_000,
        ),
        topology_st(),
        flows_st(),
        prop::option::of((
            1usize..20,
            1u64..10_000_000,
            1u32..4000,
            time_st(),
            time_st(),
            prop::collection::vec((0u32..100, transport_st()), 1..4),
        )),
        loss_st(),
        (
            prop::collection::vec(1usize..10_000, 0..3),
            prop::collection::vec(seed_st(), 0..3),
            prop::collection::vec(name_st(), 0..3),
        ),
    )
        .prop_map(
            |(
                (name, description, dur_us, seed, queue_cap),
                topology,
                flows,
                traffic,
                loss,
                (queue_caps, seeds, controllers),
            )| {
                // Explicit flows and a generative mix are mutually
                // exclusive; keep whichever the strategy filled first.
                let traffic = if flows.is_empty() {
                    traffic.map(
                        |(n, rate_bps, payload_bytes, start, stop, mix)| TrafficMix {
                            flows: n,
                            rate_bps,
                            payload_bytes,
                            start,
                            stop,
                            mix: mix
                                .into_iter()
                                .map(|(weight, transport)| MixEntry { weight, transport })
                                .collect(),
                        },
                    )
                } else {
                    None
                };
                ScenarioSpec {
                    name,
                    description,
                    duration_secs: dur_us as f64 / 1e6,
                    seed,
                    queue_cap,
                    topology,
                    flows,
                    traffic,
                    loss,
                    sweep: SweepSpec {
                        queue_caps,
                        seeds,
                        controllers,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pipeline's foundation: serialising any spec and parsing it
    /// back yields an equal spec — every f64 (positions, probabilities,
    /// second-resolution times) survives the text round trip exactly.
    #[test]
    fn spec_round_trips_through_json(spec in spec_st()) {
        let pretty = spec.to_json().to_pretty();
        let back = ScenarioSpec::parse(&pretty).expect("emitted spec must parse");
        prop_assert_eq!(&spec, &back);
        // And the compact form agrees with the pretty form.
        let compact = spec.to_json().to_compact();
        let back2 = ScenarioSpec::parse(&compact).expect("compact form must parse");
        prop_assert_eq!(&spec, &back2);
    }

    /// Generative topologies are pure functions of their parameters:
    /// same spec, same layout — across independent compiles.
    #[test]
    fn generative_topologies_are_deterministic(
        nodes in 10usize..40,
        gateways in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = ScenarioSpec {
            name: "det".into(),
            description: String::new(),
            duration_secs: 10.0,
            seed: 1,
            queue_cap: 50,
            topology: TopologySpec::RandomGeometric {
                nodes,
                width: 1000.0,
                height: 1000.0,
                gateways: gateways.min(nodes - 1),
                seed,
            },
            flows: vec![FlowSpec::saturating(0, vec![0, 1], Time::ZERO, Time::from_secs(1))],
            traffic: None,
            loss: LossSpec::default(),
            sweep: SweepSpec::default(),
        };
        // compile() may reject disconnected meshes (validate runs on the
        // explicit flow 0->1, which may be out of decode range); position
        // generation itself must still be deterministic, so go through
        // the public compile path only when it succeeds and otherwise
        // compare the error — both must repeat identically.
        match (spec.compile(), spec.compile()) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.topology.positions, b.topology.positions),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "non-deterministic compile: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

/// An on-off flow through a real chain delivers a strict subset of what
/// the same-rate CBR flow delivers (the OFF periods), and identically so
/// across rebuilds with the same seed.
#[test]
fn onoff_flow_shapes_offered_load_end_to_end() {
    let until = Time::from_secs(120);
    let mut t = topo::chain(2, Time::ZERO, until);
    t.flows[0].rate_bps = 200_000;

    let run = |transport: Transport, seed: u64| -> u64 {
        let mut t = t.clone();
        t.flows[0].transport = transport;
        let mut net = Network::new(NetworkSpec::from_topology(&t, seed), &|_| {
            Box::new(ezflow_net::FixedController::standard())
        });
        net.run_until(until);
        net.metrics.delivered[&0]
    };

    let onoff = Transport::OnOff {
        mean_on: Duration::from_secs(2),
        mean_off: Duration::from_secs(2),
        alpha: 1.5,
    };
    let cbr = run(Transport::Cbr, 7);
    let shaped = run(onoff, 7);
    let shaped_again = run(onoff, 7);
    assert_eq!(shaped, shaped_again, "same seed, same deliveries");
    assert!(shaped > 0, "the ON periods must deliver traffic");
    // 50% duty cycle: well under CBR, well over a quarter of it.
    assert!(
        shaped < (cbr * 3) / 4 && shaped > cbr / 4,
        "shaped {shaped} vs cbr {cbr}: expected roughly half"
    );
}
