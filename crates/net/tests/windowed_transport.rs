//! The closed-loop (TCP-like) transport substrate: window clocking,
//! end-to-end ACKs over the reverse path, credit timeouts — and the
//! paper's claim that EZ-flow helps feedback traffic too.

use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::topo::{self, FlowSpec, Topology};
use ezflow_net::{Network, NetworkSpec};
use ezflow_sim::Time;

fn windowed_chain(hops: usize, window: usize, secs: u64) -> Topology {
    let until = Time::from_secs(secs);
    let base = topo::chain(hops, Time::ZERO, until);
    Topology {
        name: "windowed-chain".into(),
        positions: base.positions.clone(),
        loss: base.loss.clone(),
        flows: vec![FlowSpec::windowed(
            0,
            (0..=hops).collect(),
            window,
            Time::ZERO,
            until,
        )],
    }
}

fn std_controller(_: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

#[test]
fn window_clocking_bounds_every_queue() {
    // Self-clocking: with W packets in flight, no interface queue can
    // ever hold more than W packets — even on the turbulent 4-hop chain
    // and even under plain 802.11.
    let secs = 120;
    let window = 10;
    let t = windowed_chain(4, window, secs);
    let mut net = Network::from_topology(&t, 3, &std_controller);
    net.run_until(Time::from_secs(secs));

    let delivered = net.metrics.delivered[&0];
    assert!(delivered > 500, "flow must make progress: {delivered}");
    for node in 0..net.node_count() {
        let max = net.metrics.buffer[node]
            .max_in(Time::ZERO, Time::from_secs(secs))
            .unwrap_or(0.0);
        assert!(
            max <= window as f64,
            "node {node} buffered {max} > window {window}"
        );
    }
    // No overflow drops anywhere: the window is far below the 50-slot cap.
    assert_eq!(net.metrics.queue_drops.iter().sum::<u64>(), 0);
    assert_eq!(
        net.metrics.source_drops[&0], 0,
        "ACK clocking, no blind CBR"
    );
}

#[test]
fn acks_flow_back_and_are_not_user_traffic() {
    let secs = 60;
    let t = windowed_chain(3, 5, secs);
    let mut net = Network::from_topology(&t, 7, &std_controller);
    net.run_until(Time::from_secs(secs));
    let delivered = net.metrics.delivered[&0];
    assert!(delivered > 300);
    // The metrics only know the user flow (ACK streams are internal).
    assert_eq!(net.metrics.throughput.len(), 1);
    // The source transmits data, the sink transmits ACKs: both radios
    // carry real load.
    assert!(net.mac_stats(0).tx_success > 300);
    assert!(net.mac_stats(3).tx_success > 300, "sink must send ACKs");
}

#[test]
fn credit_timeout_unsticks_the_window_after_losses() {
    // A very lossy link eats data packets wholesale; without the credit
    // timeout the window would drain to zero and the flow would halt.
    let secs = 120;
    let t = windowed_chain(2, 4, secs);
    let mut spec = NetworkSpec::from_topology(&t, 11);
    spec.loss = ezflow_phy::LossModel::uniform(0.25);
    let mut net = Network::new(spec, &std_controller);
    net.run_until(Time::from_secs(secs));
    let first_half = net
        .metrics
        .throughput
        .get(&0)
        .expect("flow")
        .average_kbps(Time::ZERO, Time::from_secs(secs / 2));
    let second_half = net
        .metrics
        .throughput
        .get(&0)
        .expect("flow")
        .average_kbps(Time::from_secs(secs / 2), Time::from_secs(secs));
    assert!(first_half > 5.0, "first half stalled: {first_half:.1}");
    assert!(
        second_half > 5.0,
        "flow stalled after losses: {second_half:.1} kb/s"
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The window invariant holds for any chain length, window size
        /// and loss rate: no queue ever exceeds the window, and the flow
        /// makes progress whenever the link is not hopeless.
        #[test]
        fn window_bounds_hold_under_randomness(
            seed in any::<u64>(),
            hops in 1usize..5,
            window in 1usize..20,
            loss in 0f64..0.3,
        ) {
            let secs = 40;
            let t = windowed_chain(hops, window, secs);
            let mut spec = NetworkSpec::from_topology(&t, seed);
            if loss > 0.0 {
                spec.loss = ezflow_phy::LossModel::uniform(loss);
            }
            let mut net = Network::new(spec, &std_controller);
            net.run_until(Time::from_secs(secs));
            for node in 0..net.node_count() {
                if let Some(max) = net.metrics.buffer[node]
                    .max_in(Time::ZERO, Time::from_secs(secs))
                {
                    prop_assert!(
                        max <= window as f64,
                        "node {} buffered {} > window {}",
                        node,
                        max,
                        window
                    );
                }
            }
            prop_assert!(net.metrics.delivered[&0] > 0, "no progress at all");
            // The ACK-clocked source never overruns its own queue.
            prop_assert_eq!(net.metrics.source_drops[&0], 0);
        }
    }
}
