//! Network-level frame-arena gates: the slab must reach an alloc/free
//! steady state (every allocation recycles a released slot — no growth),
//! stay leak-free at quiescence, and keep its footprint bounded by what
//! the layers can actually hold. The exact live-count accounting —
//! `arena.live() == queued + MAC-held + on-air` — is asserted by the
//! engine itself (debug builds) every time `run_until` goes quiescent,
//! so each `run_until` below doubles as a leak audit.

use ezflow_net::controller::{Controller, FixedController};
use ezflow_net::network::{Network, NetworkSpec};
use ezflow_net::topo;
use ezflow_sim::Time;

fn std_controller(_id: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

fn scenario1_net() -> Network {
    let t = topo::scenario1();
    let spec = NetworkSpec::from_topology(&t, 42);
    Network::new(spec, &std_controller)
}

#[test]
fn arena_recycles_slots_instead_of_growing_in_steady_state() {
    let mut net = scenario1_net();
    // Warmup: 30 s is far past F1's 5 s start, so the relay chain has
    // seen its peak queue population and the slab its peak size.
    net.run_until(Time::from_secs(30));
    let cap = net.arena_capacity();
    let allocated = net.arena_allocated_total();
    let reuses = net.arena_slot_reuses();
    assert!(allocated > 1_000, "warmup produced {allocated} frames only");

    net.run_until(Time::from_secs(120));
    let fresh = net.arena_allocated_total() - allocated;
    let recycled = net.arena_slot_reuses() - reuses;
    assert!(fresh > 3_000, "steady leg produced {fresh} frames only");
    assert_eq!(
        net.arena_capacity(),
        cap,
        "slab grew after warmup: steady-state allocs must recycle"
    );
    assert_eq!(
        recycled, fresh,
        "every steady-state alloc must be served from the free list"
    );
}

#[test]
fn arena_population_is_bounded_by_what_the_layers_hold() {
    let mut net = scenario1_net();
    net.run_until(Time::from_secs(60));
    // A frame is live only while queued, held by a MAC (current frame or
    // pending ACK job), or on the air — so the peak population is bounded
    // by the interface queues plus a few per-node in-flight slots.
    let queue_cap: usize = net
        .snapshot("arena-bound")
        .nodes
        .iter()
        .flat_map(|n| n.queues.iter().map(|q| q.cap))
        .sum();
    let bound = queue_cap + 4 * net.node_count();
    assert!(net.arena_live() <= net.arena_high_water());
    assert!(
        net.arena_high_water() <= bound,
        "peak {} exceeds the structural bound {bound}",
        net.arena_high_water()
    );
    // Leak dual: the population is a working set, not a monotone leak —
    // over a minute the simulation allocated orders of magnitude more
    // frames than were ever live at once.
    assert!(net.arena_allocated_total() >= 100 * net.arena_high_water() as u64);
}
