//! The sharded-engine byte-identity pins.
//!
//! The whole contract of the conservative-PDES refactor is that shard
//! count is *unobservable*: partitioning a run's scheduler into K
//! per-interference-domain queues changes which internal queue an event
//! waits in, never the merged `(time, seq)` pop order — so a run at any
//! `shards` value must leave a perf-zeroed [`RunSnapshot`] byte-identical
//! to the serial run's. These tests pin that for shards ∈ {1, 2, 4} on
//! the paper's scenario 1, a 4×4 grid, and a short slice of the mesh1k
//! scale scenario (the perf block is zeroed because it honestly differs:
//! wall-clock noise, plus the sharded run's own cut/barrier gauges).
//!
//! CI runs the scenario-1 leg on a dedicated 2-thread job and uploads
//! the flattened snapshot texts as an artifact when they diverge — see
//! `.github/workflows/check.yml`.

use std::path::PathBuf;

use ezflow_net::{topo, Controller, FixedController, Network, NetworkSpec, PerfSnapshot, Topology};
use ezflow_sim::Time;

fn std_controller(_id: usize) -> Box<dyn Controller> {
    Box::new(FixedController::standard())
}

/// Perf-zeroed pretty snapshot JSON of one run at `shards` partitions.
fn digest(topo: &Topology, seed: u64, until: Time, shards: usize) -> String {
    let mut spec = NetworkSpec::from_topology(topo, seed);
    spec.shards = shards;
    let mut net = Network::new(spec, &std_controller);
    net.run_until(until);
    let mut snap = net.snapshot("shard-pin");
    snap.perf = PerfSnapshot::zeroed();
    snap.to_json().to_pretty()
}

fn assert_shard_count_is_unobservable(topo: &Topology, seed: u64, until: Time) {
    let serial = digest(topo, seed, until, 1);
    for shards in [2usize, 4] {
        let sharded = digest(topo, seed, until, shards);
        assert_eq!(
            serial, sharded,
            "{}: shards={shards} diverged from the serial run",
            topo.name
        );
    }
}

#[test]
fn scenario1_is_byte_identical_at_every_shard_count() {
    let t = topo::scenario1();
    assert_shard_count_is_unobservable(&t, 42, topo::scenario1_end());
}

#[test]
fn grid4x4_is_byte_identical_at_every_shard_count() {
    let t = topo::grid(4, 4, 200.0, Time::ZERO, Time::from_secs(60));
    assert_shard_count_is_unobservable(&t, 7, Time::from_secs(60));
}

#[test]
fn mesh1k_slice_is_byte_identical_at_every_shard_count() {
    // A 3-simulated-second slice of the 1,024-node scale scenario: big
    // enough that all four shards carry MAC timers, transmissions and
    // cross-cut carrier sense, short enough for a test.
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/mesh1k.json"
    ));
    let text = std::fs::read_to_string(&path).expect("scenarios/mesh1k.json must be committed");
    let spec = ezflow_net::ScenarioSpec::parse(&text).unwrap();
    let compiled = spec.compile().unwrap();
    assert_shard_count_is_unobservable(&compiled.topology, spec.seed, Time::from_secs(3));
}

#[test]
fn sharded_runs_report_their_pdes_traffic() {
    // The counters the bench records: a sharded multi-domain run must
    // see cross-shard posts and barrier-window advances, and must say
    // how many shards it ran — while the serial run omits all three
    // (shards records 0 so the serialized schema stays pre-sharding).
    let t = topo::scenario1();
    let run = |shards: usize| {
        let mut spec = NetworkSpec::from_topology(&t, 42);
        spec.shards = shards;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(30));
        net.snapshot("counters")
    };
    let serial = run(1);
    assert_eq!(serial.perf.shards, 0);
    assert_eq!(serial.perf.cut_deliveries, 0);
    assert_eq!(serial.perf.barrier_waits, 0);
    let sharded = run(4);
    assert_eq!(sharded.perf.shards, 4);
    assert!(
        sharded.perf.cut_deliveries > 0,
        "a 4-way split of scenario 1 must cross shards"
    );
    assert!(sharded.perf.barrier_waits > 0);
}
