//! Experiment instrumentation.
//!
//! One [`Metrics`] instance records everything the paper's figures and
//! tables need, for one simulation run:
//!
//! * per-flow **throughput** series (bits delivered at the sink, binned),
//! * per-flow **end-to-end delay** series, in two flavours — from packet
//!   creation, and from the packet's first dequeue at the source MAC (see
//!   DESIGN.md §4 on why the figures use the latter),
//! * per-node **buffer occupancy** trace, sampled every second (Figs. 1, 4),
//! * per-node **`CWmin`** trace (Figs. 8, 11 plot `log2` of these values),
//! * drop counters by cause.
//!
//! Per-flow maps are `BTreeMap`s, not `HashMap`s: everything downstream
//! that iterates them (snapshot JSON, report tables, CSV export) then
//! emits flows in id order, so identical runs serialise byte-identically.

use std::collections::BTreeMap;

use ezflow_phy::Frame;
use ezflow_sim::{Duration, Time};
use ezflow_stats::{LogHistogram, SampleSeries, ThroughputSeries};

/// All series recorded during one run.
pub struct Metrics {
    /// Throughput bin width.
    pub bin: Duration,
    /// Per-flow delivered-bits series.
    pub throughput: BTreeMap<u32, ThroughputSeries>,
    /// Per-flow delay from first dequeue at the source (seconds).
    pub delay_net: BTreeMap<u32, SampleSeries>,
    /// Per-flow delay from packet creation (seconds).
    pub delay_e2e: BTreeMap<u32, SampleSeries>,
    /// Per-flow delivered packet counts.
    pub delivered: BTreeMap<u32, u64>,
    /// Per-node total interface-queue occupancy, sampled periodically.
    pub buffer: Vec<SampleSeries>,
    /// Per-node `CWmin`, sampled periodically.
    pub cw: Vec<SampleSeries>,
    /// Per-node packets dropped on queue overflow (relay queues).
    pub queue_drops: Vec<u64>,
    /// Per-flow packets dropped at the (full) source queue.
    pub source_drops: BTreeMap<u32, u64>,
    /// Per-node packets dropped at the MAC retry limit.
    pub retry_drops: Vec<u64>,
    /// Per-flow network-latency histogram (µs from first dequeue at the
    /// source to delivery) — the p50/p95/p99/p999 source for snapshots.
    pub flow_latency: BTreeMap<u32, LogHistogram>,
    /// Per-node hop-latency histogram (µs from enqueue at the node to the
    /// hop's successful transmission).
    pub hop_latency: Vec<LogHistogram>,
}

impl Metrics {
    /// Creates metrics for `nodes` nodes and the given flow ids.
    pub fn new(nodes: usize, flows: &[u32], bin: Duration) -> Self {
        let mut throughput = BTreeMap::new();
        let mut delay_net = BTreeMap::new();
        let mut delay_e2e = BTreeMap::new();
        let mut delivered = BTreeMap::new();
        let mut source_drops = BTreeMap::new();
        let mut flow_latency = BTreeMap::new();
        for &f in flows {
            throughput.insert(f, ThroughputSeries::new(bin));
            delay_net.insert(f, SampleSeries::new());
            delay_e2e.insert(f, SampleSeries::new());
            delivered.insert(f, 0);
            source_drops.insert(f, 0);
            flow_latency.insert(f, LogHistogram::new());
        }
        Metrics {
            bin,
            throughput,
            delay_net,
            delay_e2e,
            delivered,
            buffer: (0..nodes).map(|_| SampleSeries::new()).collect(),
            cw: (0..nodes).map(|_| SampleSeries::new()).collect(),
            queue_drops: vec![0; nodes],
            source_drops,
            retry_drops: vec![0; nodes],
            flow_latency,
            hop_latency: (0..nodes).map(|_| LogHistogram::new()).collect(),
        }
    }

    /// Records a packet reaching its final destination.
    ///
    /// Deliveries for flows that were not registered in [`Metrics::new`]
    /// are ignored *uniformly*: no series, no `delivered` count. (An
    /// earlier version counted unknown flows in `delivered` while the
    /// series silently dropped them, which made `delivered` disagree with
    /// `throughput` totals.)
    pub fn on_delivery(&mut self, now: Time, frame: &Frame) {
        let flow = frame.flow;
        if let Some(ts) = self.throughput.get_mut(&flow) {
            ts.record(now, frame.payload_bytes as u64 * 8);
        }
        if let Some(d) = self.delay_net.get_mut(&flow) {
            d.push(now, now.saturating_since(frame.entered_net).as_secs_f64());
        }
        if let Some(h) = self.flow_latency.get_mut(&flow) {
            h.record(now.saturating_since(frame.entered_net).as_micros());
        }
        if let Some(d) = self.delay_e2e.get_mut(&flow) {
            d.push(now, now.saturating_since(frame.created).as_secs_f64());
        }
        if let Some(n) = self.delivered.get_mut(&flow) {
            *n += 1;
        }
    }

    /// Records a periodic per-node sample.
    pub fn on_sample(&mut self, now: Time, node: usize, buffer: usize, cw_min: u32) {
        self.buffer[node].push(now, buffer as f64);
        self.cw[node].push(now, cw_min as f64);
    }

    /// Mean throughput of `flow` in kb/s over `[from, to)` (total bits over
    /// the span).
    pub fn mean_kbps(&self, flow: u32, from: Time, to: Time) -> f64 {
        self.throughput
            .get(&flow)
            .map_or(0.0, |ts| ts.average_kbps(from, to))
    }

    /// Per-flow mean throughputs (kb/s) over a window, in flow-id order —
    /// the input to Jain's index. (The map is ordered, so no sort.)
    pub fn all_kbps(&self, from: Time, to: Time) -> Vec<(u32, f64)> {
        self.throughput
            .keys()
            .map(|&f| (f, self.mean_kbps(f, from, to)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_times(created_s: u64, entered_s: u64) -> Frame {
        let mut f = Frame::data(1, 0, 0, 4, 1000, Time::from_secs(created_s));
        f.entered_net = Time::from_secs(entered_s);
        f
    }

    #[test]
    fn delivery_updates_all_series() {
        let mut m = Metrics::new(5, &[0], Duration::from_secs(10));
        let f = frame_with_times(1, 3);
        m.on_delivery(Time::from_secs(7), &f);
        assert_eq!(m.delivered[&0], 1);
        assert!((m.throughput[&0].total_bits() - 8000.0).abs() < 1e-9);
        let d_net = m.delay_net[&0].points()[0].1;
        let d_e2e = m.delay_e2e[&0].points()[0].1;
        assert!((d_net - 4.0).abs() < 1e-9);
        assert!((d_e2e - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_flow_is_ignored() {
        let mut m = Metrics::new(2, &[0], Duration::from_secs(1));
        let mut f = frame_with_times(0, 0);
        f.flow = 99;
        m.on_delivery(Time::from_secs(1), &f);
        assert_eq!(m.delivered.get(&99), None, "unknown flows dropped whole");
        assert_eq!(m.throughput.len(), 1, "no series allocated for unknowns");
        assert_eq!(m.delay_net.len(), 1);
    }

    #[test]
    fn samples_and_window_means() {
        let mut m = Metrics::new(2, &[0, 1], Duration::from_secs(10));
        m.on_sample(Time::from_secs(1), 0, 10, 32);
        m.on_sample(Time::from_secs(2), 0, 20, 64);
        let sm = m.buffer[0].window(Time::ZERO, Time::from_secs(10));
        assert!((sm.mean - 15.0).abs() < 1e-9);
        let cw = m.cw[0].window(Time::ZERO, Time::from_secs(10));
        assert!((cw.mean - 48.0).abs() < 1e-9);
    }

    #[test]
    fn all_kbps_is_flow_ordered() {
        let mut m = Metrics::new(1, &[2, 0, 1], Duration::from_secs(1));
        let mut f = frame_with_times(0, 0);
        f.flow = 2;
        m.on_delivery(Time::from_millis(500), &f);
        let all = m.all_kbps(Time::ZERO, Time::from_secs(1));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[2].0, 2);
        assert!(all[2].1 > 0.0);
    }
}
