//! Struct-of-arrays engine state for the event-loop hot path.
//!
//! The engine's per-event work touches a few words of per-node state —
//! which MAC timer entry is pending, how full the node's interface
//! queues are — that used to live scattered inside [`crate::node::Node`]
//! (behind a `Box<dyn Controller>` and a queue `Vec`). Pulling those
//! words into parallel arrays keyed by node id keeps the mesh1k event
//! loop striding over dense, cache-resident memory instead of chasing
//! one cold `Node` per event.
//!
//! The timer slots are also the ledger for the scheduler's keyed
//! rescheduling ([`ezflow_sim::Scheduler::reschedule`]): each MAC keeps
//! at most one pending transmit-path entry and one pending ACK-job entry,
//! and the slot holds the live [`TimerHandle`] so a re-arm *moves* the
//! entry instead of abandoning it to pop-time elision.

use ezflow_sim::TimerHandle;

/// State of one logical MAC timer (transmit path or ACK job).
///
/// The invariant the engine maintains: whenever control returns to the
/// pop loop, an `Armed` slot's `epoch` equals its MAC's current epoch —
/// a countdown the MAC invalidated without re-arming is parked (the
/// scheduler entry physically removed) before the next pop, so stale
/// entries never accumulate in the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimerSlot {
    /// No pending scheduler entry (the last one dispatched or was elided).
    Idle,
    /// One pending entry, keyed by `h`, armed under epoch token `epoch`.
    Armed {
        /// Handle of the pending entry (for reschedule/remove).
        h: TimerHandle,
        /// The MAC epoch the entry was armed with.
        epoch: u64,
    },
    /// The entry was physically removed while its owner is frozen (busy
    /// medium, NAV); the next arm revives it via `reschedule(None, ..)`
    /// so churn accounting still sees one consumed entry per park.
    Parked,
}

/// The struct-of-arrays block, one element per node in each array.
pub(crate) struct HotState {
    /// Pending transmit-path timer per MAC (see [`TimerSlot`]).
    pub(crate) tx_timer: Vec<TimerSlot>,
    /// Pending ACK-job timer per MAC.
    pub(crate) ack_timer: Vec<TimerSlot>,
    /// Total interface-queue occupancy per node, mirrored at the
    /// engine's enqueue/dequeue sites. The periodic samplers (metrics,
    /// backlog reports, telemetry) read this array instead of walking
    /// every node's queue `Vec`; `debug_assert`s in the sample path pin
    /// the mirror to the queues' ground truth.
    pub(crate) occupancy: Vec<u32>,
    /// Partition (shard) of each node, from the interference-domain
    /// partitioner ([`crate::partition`]). Every scheduler post for a
    /// node's timer or transmission is routed to this shard's queue;
    /// with one shard the array is all zeroes.
    pub(crate) shard_of: Vec<u32>,
}

impl HotState {
    pub(crate) fn new(n: usize) -> Self {
        HotState {
            tx_timer: vec![TimerSlot::Idle; n],
            ack_timer: vec![TimerSlot::Idle; n],
            occupancy: vec![0; n],
            shard_of: vec![0; n],
        }
    }
}
