//! The scheduler event loop.
//!
//! This module is the *dynamic* half of [`Network`] (the builder is the
//! static half): the event vocabulary (`Ev`, private), the `run_until`
//! dispatch loop, and the MAC/channel/controller/transport mediation that
//! turns one popped event into the next batch of scheduled ones.
//!
//! The engine drives four explicit interfaces and owns nothing else:
//!
//! * the MAC's `input → [output]` state machine (via the worklist drain),
//! * the channel's `start_tx`/`end_tx` calls,
//! * the [`crate::controller::Controller`] observation hooks,
//! * the [`crate::transport::FlowTransport`] pacing callbacks.
//!
//! Everything here is deterministic: events pop in `(time, seq)` order
//! from the [`ezflow_sim::Scheduler`] (whose `peek_time`/`len`/`is_empty`
//! are the only queue state the engine reads), and all randomness flows
//! through per-node streams derived from the master seed.

use ezflow_mac::{MacInput, MacOutput};
use ezflow_phy::{DecodeOutcome, Frame, FrameId, FrameKind, TxId};
use ezflow_sim::{
    BoeVerdict, DropCause, Duration, FrameClass, JsonValue, RxOutcome, Time, TraceEvent, TraceKind,
    TracePayload,
};

use crate::controller::ControllerEvent;
use crate::hot::TimerSlot;
use crate::network::Network;
use crate::snapshot::{
    LatencySnapshot, NodeSnapshot, PerfSnapshot, QueueSnapshot, RunSnapshot, SchedulerSnapshot,
};
use crate::transport::{TransportCtx, TRANSPORT_ACK_FLOW};

/// The engine's event vocabulary.
#[derive(Clone, Debug)]
pub(crate) enum Ev {
    /// Source generation tick of flow index `i` (all transports).
    Traffic(usize),
    /// Periodic transport timer for a flow (by flow id).
    WindowRefresh(u32),
    MacTxPath {
        node: usize,
        epoch: u64,
    },
    MacAckJob {
        node: usize,
        epoch: u64,
    },
    MacNav {
        node: usize,
    },
    TxEnd {
        tx: TxId,
        node: usize,
    },
    Sample,
    Backlog,
    /// Telemetry sampler tick (only scheduled when the spec sets
    /// `telemetry_every`). Dispatched *outside* the event accounting so
    /// telemetry-on runs snapshot byte-identically to telemetry-off ones
    /// — see [`crate::telemetry`].
    Telemetry,
}

/// Shard that hosts the global periodic events ([`Ev::Sample`],
/// [`Ev::Backlog`], [`Ev::Telemetry`]): they scan *every* node, so they
/// belong to no interference domain and are pinned to shard 0. Shard
/// assignment never affects merged execution order — only which
/// per-partition queue holds the entry — so this choice is free.
pub(crate) const GLOBAL_SHARD: usize = 0;

/// Number of *counted* [`Ev`] kinds, for the per-kind dispatch counters.
/// `Ev::Telemetry` is deliberately not one of them: the sampler is
/// intercepted before kind accounting (zero interference).
pub(crate) const EV_KINDS: usize = 8;

/// Stable names of the [`Ev`] kinds, in [`ev_index`] order — the keys of
/// the snapshot's `dispatched_by_kind` object.
const EV_NAMES: [&str; EV_KINDS] = [
    "traffic",
    "window_refresh",
    "mac_tx_path",
    "mac_ack_job",
    "mac_nav",
    "tx_end",
    "sample",
    "backlog",
];

/// Number of self-profiler slots: every counted event kind plus one for
/// the telemetry sampler.
pub const PROFILE_KINDS: usize = EV_KINDS + 1;

/// Names of the self-profiler slots, in slot order — the keys of the
/// perf snapshot's `handler_ns_by_kind` object.
pub const PROFILE_NAMES: [&str; PROFILE_KINDS] = [
    "traffic",
    "window_refresh",
    "mac_tx_path",
    "mac_ack_job",
    "mac_nav",
    "tx_end",
    "sample",
    "backlog",
    "telemetry",
];

fn ev_index(ev: &Ev) -> usize {
    match ev {
        Ev::Traffic(_) => 0,
        Ev::WindowRefresh(_) => 1,
        Ev::MacTxPath { .. } => 2,
        Ev::MacAckJob { .. } => 3,
        Ev::MacNav { .. } => 4,
        Ev::TxEnd { .. } => 5,
        Ev::Sample => 6,
        Ev::Backlog => 7,
        Ev::Telemetry => unreachable!("telemetry bypasses kind accounting"),
    }
}

/// Compact worklist descriptor — [`MacInput`] minus the frame payload.
///
/// Only the transmission fan-out queues here: the busy toggles raised by
/// a `StartTx` and the per-receiver markers of a `TxEnd` (everything
/// scheduler-driven goes straight through `mac_event`, and the rest of
/// the tx-end fan-out is dispatched inline). Queuing full `MacInput`
/// values would memcpy ~112 bytes per entry twice (push and pop); this
/// mirror carries 16 bytes and the drain loop rebuilds the real
/// `MacInput` at the single dispatch point. `Rx*` entries park their
/// frame in [`Network::rx_frames`](crate::network::Network) — both
/// queues are FIFOs fed in lockstep, so the frame at the front is always
/// the one the front `Rx*` marker refers to.
#[derive(Clone, Copy, Debug)]
pub(crate) enum WorkInput {
    MediumBusy,
    NavSet { until: Time },
    RxData,
    RxAck,
    RxRts,
    RxCts,
}

fn frame_class(kind: FrameKind) -> FrameClass {
    match kind {
        FrameKind::Data => FrameClass::Data,
        FrameKind::Ack => FrameClass::Ack,
        FrameKind::Rts => FrameClass::Rts,
        FrameKind::Cts => FrameClass::Cts,
    }
}

fn frame_payload(frame: &Frame) -> TracePayload {
    TracePayload::Frame {
        class: frame_class(frame.kind),
        seq: frame.seq,
        flow: frame.flow,
        src: frame.src,
        dst: frame.dst,
        retry: frame.retry as u32,
    }
}

fn rx_outcome(o: DecodeOutcome) -> RxOutcome {
    match o {
        DecodeOutcome::Clean => RxOutcome::Clean,
        DecodeOutcome::Capture => RxOutcome::Capture,
        DecodeOutcome::Collision => RxOutcome::Collision,
        DecodeOutcome::Loss => RxOutcome::Loss,
    }
}

impl Network {
    /// Runs the simulation up to and including instant `until`.
    ///
    /// The pop loop delegates stale-timer detection to the scheduler's
    /// [`ezflow_sim::Cancelable`] hook: a MAC timer whose epoch token no
    /// longer matches its owner is elided *inside* the pop — never
    /// dispatched, never worklisted — and counted in
    /// [`ezflow_sim::Scheduler::stale_drops`]. The elision decision reads
    /// only the owning MAC's current epoch, so it is a pure function of
    /// simulation state and identical on either scheduler backend.
    pub fn run_until(&mut self, until: Time) {
        debug_assert!(self.worklist.is_empty());
        debug_assert!(self.rx_frames.is_empty());
        let t0 = std::time::Instant::now();
        loop {
            // Disjoint-field borrows: the hook reads `nodes` and writes
            // `trace` and `hot` while `sched` is mutably borrowed by the
            // pop.
            let next = {
                let nodes = &self.nodes;
                let trace = &mut self.trace;
                let hot = &mut self.hot;
                self.sched.pop_before(until, |at: Time, ev: &Ev| {
                    let (node, epoch, current, slot) = match *ev {
                        Ev::MacTxPath { node, epoch } => (
                            node,
                            epoch,
                            nodes[node].mac.tx_epoch(),
                            &mut hot.tx_timer[node],
                        ),
                        Ev::MacAckJob { node, epoch } => (
                            node,
                            epoch,
                            nodes[node].mac.ack_epoch(),
                            &mut hot.ack_timer[node],
                        ),
                        // The periodic sampler re-arms itself on every
                        // dispatch, so it is never stale — listed
                        // explicitly so the hook stays audited against
                        // the full event vocabulary.
                        Ev::Telemetry => return false,
                        _ => return false,
                    };
                    if epoch == current {
                        return false;
                    }
                    // Defensive: with eager parking the engine removes an
                    // invalidated timer before the pop loop ever sees it,
                    // so this elision path should be dry. If it does fire,
                    // the slot holding this entry's handle must be
                    // cleared — the entry is consumed by the elision.
                    if matches!(*slot, TimerSlot::Armed { epoch: e, .. } if e == epoch) {
                        *slot = TimerSlot::Idle;
                    }
                    // An *event* drop, not a packet drop: the record goes
                    // to the trace ring only and `seq` carries the dead
                    // epoch token.
                    if trace.enabled() {
                        trace.push(
                            at,
                            node,
                            TraceKind::Drop,
                            TracePayload::Drop {
                                cause: DropCause::StaleEpoch,
                                seq: epoch,
                            },
                        );
                    }
                    true
                })
            };
            let Some((at, ev)) = next else { break };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            // Zero-interference dispatch: the telemetry sampler never
            // touches `events` or the per-kind counters, so a
            // telemetry-on run's accounting equals the telemetry-off
            // run's (its scheduler traffic is compensated in `snapshot`).
            if matches!(ev, Ev::Telemetry) {
                if self.profile {
                    let h0 = std::time::Instant::now();
                    self.on_telemetry();
                    self.handler_ns[EV_KINDS] += h0.elapsed().as_nanos() as u64;
                } else {
                    self.on_telemetry();
                }
                continue;
            }
            self.events += 1;
            let kind = ev_index(&ev);
            self.dispatched[kind] += 1;
            if self.profile {
                let h0 = std::time::Instant::now();
                self.handle(ev);
                self.handler_ns[kind] += h0.elapsed().as_nanos() as u64;
            } else {
                self.handle(ev);
            }
        }
        self.now = until;
        // Leak audit at quiescence: every frame the arena thinks is live
        // must be accounted for by a queue slot, a MAC holding it, or a
        // transmission still on the air. A mismatch means some terminal
        // event forgot its release (or released twice — the generation
        // check catches that side).
        #[cfg(debug_assertions)]
        {
            let queued: usize = self.hot.occupancy.iter().map(|&o| o as usize).sum();
            let held: usize = self.nodes.iter().map(|n| n.mac.held_frames()).sum();
            let on_air = self.channel.active_count();
            debug_assert_eq!(
                self.arena.live(),
                queued + held + on_air,
                "frame arena leak: live frames unaccounted for"
            );
        }
        self.wall += t0.elapsed();
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Traffic(i) => self.on_traffic(i),
            Ev::WindowRefresh(flow) => self.on_window_refresh(flow),
            Ev::MacTxPath { node, epoch } => {
                // The dispatched entry is this slot's entry (one pending
                // per logical timer); its handle dies with the pop.
                self.hot.tx_timer[node] = TimerSlot::Idle;
                self.mac_event(node, MacInput::TimerTxPath { epoch }, true)
            }
            Ev::MacAckJob { node, epoch } => {
                self.hot.ack_timer[node] = TimerSlot::Idle;
                self.mac_event(node, MacInput::TimerAckJob { epoch }, true)
            }
            Ev::MacNav { node } => self.mac_event(node, MacInput::TimerNav, false),
            Ev::TxEnd { tx, node } => self.on_tx_end(tx, node),
            Ev::Sample => self.on_sample(),
            Ev::Backlog => self.on_backlog(),
            // Intercepted in `run_until` before kind accounting; kept
            // here so the dispatcher stays total over the vocabulary.
            Ev::Telemetry => self.on_telemetry(),
        }
    }

    /// Arms (or re-arms) node `id`'s transmit-path timer `after` from
    /// now. The slot decides the scheduler verb: a pending entry is moved
    /// in place, a parked one revived, and only a truly idle slot pays a
    /// fresh schedule — so freeze/restart churn never leaves abandoned
    /// entries behind for pop-time elision.
    fn arm_tx_timer(&mut self, id: usize, after: Duration, epoch: u64) {
        let at = self.now + after;
        let shard = self.hot.shard_of[id] as usize;
        let ev = Ev::MacTxPath { node: id, epoch };
        let h = match self.hot.tx_timer[id] {
            TimerSlot::Armed { h, .. } => self.sched.reschedule(shard, Some(h), at, ev),
            TimerSlot::Parked => self.sched.reschedule(shard, None, at, ev),
            TimerSlot::Idle => self.sched.schedule_keyed(shard, at, ev),
        };
        self.hot.tx_timer[id] = TimerSlot::Armed { h, epoch };
    }

    /// [`Network::arm_tx_timer`] for the ACK-job timer.
    fn arm_ack_timer(&mut self, id: usize, after: Duration, epoch: u64) {
        let at = self.now + after;
        let shard = self.hot.shard_of[id] as usize;
        let ev = Ev::MacAckJob { node: id, epoch };
        let h = match self.hot.ack_timer[id] {
            TimerSlot::Armed { h, .. } => self.sched.reschedule(shard, Some(h), at, ev),
            TimerSlot::Parked => self.sched.reschedule(shard, None, at, ev),
            TimerSlot::Idle => self.sched.schedule_keyed(shard, at, ev),
        };
        self.hot.ack_timer[id] = TimerSlot::Armed { h, epoch };
    }

    /// Parks node `id`'s transmit-path timer if the MAC has invalidated
    /// it (epoch moved on) without re-arming: the scheduler entry is
    /// physically removed now, instead of sitting in the queue until its
    /// instant arrives just to be elided. Called after every MAC
    /// interaction that can freeze a countdown; a live or empty slot is a
    /// two-word compare and fall-through.
    ///
    /// The ACK-job timer needs no counterpart: `ack_epoch` only ever
    /// advances in the same input that arms the replacement timer, so an
    /// armed ACK slot is always current.
    fn park_stale_tx(&mut self, id: usize) {
        if let TimerSlot::Armed { h, epoch } = self.hot.tx_timer[id] {
            if epoch != self.nodes[id].mac.tx_epoch() {
                let found = self.sched.remove(self.hot.shard_of[id] as usize, h);
                debug_assert!(found, "armed slot held a dead handle");
                self.hot.tx_timer[id] = TimerSlot::Parked;
            }
        }
    }

    /// Feeds one `MacInput` straight to a node — the direct-dispatch
    /// counterpart of a one-entry worklist drain, for inputs that arrive
    /// alone from the scheduler rather than as part of a transmission
    /// fan-out. Processing order is the drain's exactly: the input's
    /// outputs, then the feed probe, then whatever those two worklisted
    /// (a `StartTx` busy fan-out) — minus the deque round trip.
    fn mac_event(&mut self, id: usize, input: MacInput, feed: bool) {
        let mut outs = self.mac_out_pool.pop().unwrap_or_default();
        {
            let node = &mut self.nodes[id];
            node.mac
                .input_into(self.now, input, &mut node.rng, &mut self.arena, &mut outs);
        }
        for o in outs.drain(..) {
            self.handle_output(id, o);
        }
        self.mac_out_pool.push(outs);
        if feed {
            self.try_feed(id);
        }
        self.park_stale_tx(id);
        if !self.worklist.is_empty() {
            self.drain();
        }
    }

    /// Appends one lifecycle record to packet `seq`'s journey. No-op when
    /// the packet is not tracked — callers still guard with
    /// `flight.enabled()` / `flight.is_tracked()` where building the
    /// payload costs anything.
    fn flight_record(&mut self, seq: u64, node: usize, kind: TraceKind, payload: TracePayload) {
        self.flight.record(
            seq,
            TraceEvent {
                at: self.now,
                node,
                kind,
                payload,
            },
        );
    }

    fn on_traffic(&mut self, i: usize) {
        let s = self.sources[i]; // Copy — no per-tick clone
        if s.active_at(self.now) {
            self.with_transport(s.flow, |t, net| t.on_tick(net));
            if !self.worklist.is_empty() {
                self.drain();
            }
        }
        let next = self.now + self.source_intervals[i];
        if next < s.stop {
            let shard = self.hot.shard_of[s.src] as usize;
            self.sched.schedule(shard, next, Ev::Traffic(i));
        }
    }

    /// Periodic transport timer (credit timeouts and the like).
    fn on_window_refresh(&mut self, flow: u32) {
        let mut rearm = None;
        self.with_transport(flow, |t, net| {
            if t.on_refresh(net) {
                rearm = t.refresh_period();
            }
        });
        if !self.worklist.is_empty() {
            self.drain();
        }
        if let Some(p) = rearm {
            // Same routing rule the builder uses for the initial arm: the
            // refresh timer lives with the flow's source node.
            let shard = self
                .sources
                .iter()
                .find(|s| s.flow == flow)
                .map_or(GLOBAL_SHARD, |s| self.hot.shard_of[s.src] as usize);
            self.sched
                .schedule(shard, self.now + p, Ev::WindowRefresh(flow));
        }
    }

    /// Creates one packet at `src` bound for `dst` and offers it to the
    /// source's own-traffic queue. The single packet entry point — the
    /// transports reach it through [`TransportCtx::send`].
    pub(crate) fn emit_packet(
        &mut self,
        flow: u32,
        src: usize,
        dst: usize,
        payload: u32,
        ack_ref: u64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let nh = self
            .routing
            .next_hop(src, dst)
            .expect("source must be routed");
        // Saturated-source fast path: when the own queue is already full
        // and neither recorder is on, the drop's only observable effects
        // are the consumed seq, the queue and flow drop counters and the
        // feed probe — all of which happen below in exactly the order the
        // slow path keeps, so the frame never needs to be built at all.
        if !self.flight.enabled() && !self.trace.enabled() && self.nodes[src].own_queue_drop(nh) {
            *self.metrics.source_drops.entry(flow).or_insert(0) += 1;
            self.try_feed(src);
            return seq;
        }
        let mut frame = Frame::data(seq, flow, src, dst, payload, self.now);
        frame.ack_ref = ack_ref;
        frame.src = src;
        frame.dst = nh;
        if self.flight.enabled() {
            self.flight.admit(
                seq,
                TraceEvent {
                    at: self.now,
                    node: src,
                    kind: TraceKind::Admit,
                    payload: TracePayload::Admit { seq, flow },
                },
            );
        }
        let id = self.arena.alloc(frame);
        if self.nodes[src].enqueue(true, id, &self.arena) {
            self.hot.occupancy[src] += 1;
            if self.flight.is_tracked(seq) {
                let (occ, cap) = self.nodes[src].queue_depth(true, nh);
                self.flight_record(
                    seq,
                    src,
                    TraceKind::Enqueue,
                    TracePayload::Enqueue {
                        seq,
                        flow,
                        occupancy: occ as u32,
                        cap: cap as u32,
                    },
                );
            }
        } else {
            self.arena.release(id);
            *self.metrics.source_drops.entry(flow).or_insert(0) += 1;
            let payload = TracePayload::Drop {
                cause: DropCause::SourceQueueFull,
                seq,
            };
            if self.trace.enabled() {
                self.trace.push(self.now, src, TraceKind::Drop, payload);
            }
            if self.flight.is_tracked(seq) {
                self.flight_record(seq, src, TraceKind::Drop, payload);
                self.flight.complete(seq);
            }
        }
        self.try_feed(src);
        seq
    }

    fn on_tx_end(&mut self, tx: TxId, node: usize) {
        // Take-out/put-back (the `transports` pattern): the scratch report
        // is refilled in place by the channel — no per-transmission Vec
        // allocations — and must be out of `self` while deliveries fan out
        // through `&mut self` controller/trace calls.
        let mut report = std::mem::take(&mut self.end_report);
        self.channel
            .end_tx_into(self.now, tx, &mut self.chan_rng, &mut report);
        // One arena read per transmission: the fan-out below works off
        // this local copy; the id itself either transfers to the single
        // addressed clean receiver or is released when the fan-out ends.
        let frame = *self.arena.get(report.frame);
        let frame = &frame;
        if self.trace.enabled() {
            self.trace
                .push(self.now, node, TraceKind::TxEnd, frame_payload(frame));
        }
        let mut transferred = false;
        for d in &report.deliveries {
            // Decode-outcome attribution at the addressed receiver: where
            // the PHY says what actually happened to this transmission.
            if d.node == frame.dst && self.flight.is_tracked(frame.seq) {
                self.flight_record(
                    frame.seq,
                    d.node,
                    TraceKind::RxOutcome,
                    TracePayload::RxOutcome {
                        seq: frame.seq,
                        class: frame_class(frame.kind),
                        outcome: rx_outcome(d.outcome),
                    },
                );
            }
            if !d.clean {
                if self.trace.enabled() && d.node == frame.dst {
                    self.trace.push(
                        self.now,
                        d.node,
                        TraceKind::Collision,
                        TracePayload::Collision {
                            seq: frame.seq,
                            src: frame.src,
                        },
                    );
                }
                continue;
            }
            if d.node == frame.dst {
                // The addressed receiver takes ownership of the on-air
                // frame itself — no copy at all; everyone else borrows the
                // local read above. The id goes to the side FIFO; the
                // worklist carries only the kind marker.
                let marker = match frame.kind {
                    FrameKind::Data => WorkInput::RxData,
                    FrameKind::Ack => WorkInput::RxAck,
                    FrameKind::Rts => WorkInput::RxRts,
                    FrameKind::Cts => WorkInput::RxCts,
                };
                self.rx_frames.push_back(report.frame);
                transferred = true;
                self.worklist.push_back((d.node, marker));
            } else {
                match frame.kind {
                    FrameKind::Data => {
                        // Passive overhearing: the controller gets it for
                        // free. For tracked packets, the BOE's verdict is
                        // read back as a counter delta — the controller
                        // interface stays untouched.
                        let before = self
                            .flight
                            .is_tracked(frame.seq)
                            .then(|| self.nodes[d.node].controller.counters());
                        let cmd = self.nodes[d.node]
                            .controller
                            .on_event(self.now, ControllerEvent::Overheard { frame });
                        if let Some(b) = before {
                            let a = self.nodes[d.node].controller.counters();
                            let verdict = if a.boe_hits > b.boe_hits {
                                Some(BoeVerdict::Hit)
                            } else if a.boe_ambiguous > b.boe_ambiguous {
                                Some(BoeVerdict::Ambiguous)
                            } else if a.boe_misses > b.boe_misses {
                                Some(BoeVerdict::Miss)
                            } else {
                                None
                            };
                            if let Some(verdict) = verdict {
                                self.flight_record(
                                    frame.seq,
                                    d.node,
                                    TraceKind::BoeOverhear,
                                    TracePayload::BoeOverhear {
                                        seq: frame.seq,
                                        verdict,
                                    },
                                );
                            }
                        }
                        // Provenance probes (pull-based, read-only): the
                        // overhearing happened *before* the transmitter's
                        // own `TxEnded`, so the occupancy mirror still
                        // holds exactly the queue depth the BOE estimated.
                        if self.audit.enabled() {
                            if let Some((succ, est)) = self.nodes[d.node].controller.take_estimate()
                            {
                                let truth = self.hot.occupancy[succ];
                                self.audit.record_sample(self.now, d.node, succ, est, truth);
                            }
                            if let Some(rec) = self.nodes[d.node].controller.take_decision() {
                                self.audit.record_decision(self.now, d.node, rec);
                            }
                        }
                        self.apply_cw(d.node, cmd);
                    }
                    // Virtual carrier sense: overheard RTS/CTS reserve the
                    // medium from the end of the frame.
                    FrameKind::Rts | FrameKind::Cts if frame.nav_micros > 0 => {
                        let until = self.now + ezflow_sim::Duration::from_micros(frame.nav_micros);
                        self.worklist
                            .push_back((d.node, WorkInput::NavSet { until }));
                    }
                    _ => {}
                }
            }
        }
        if !transferred {
            // Nobody took ownership: the transmission died on the air
            // (collision, loss, or no addressed receiver in range).
            self.arena.release(report.frame);
        }
        // Direct dispatch of the carrier-sense transitions, in the order
        // the worklist used to impose: EIFS marks must precede the idle
        // transitions so the resumed deferral uses the extended space,
        // and both precede the transmitter's own `TxEnded`. None of the
        // three can produce anything but a single timer arm (scheduled
        // inline for `MediumIdle`), so no output buffer is needed; the
        // receiver markers queued above still drain *after* `TxEnded`,
        // through `mac_event`'s trailing drain.
        if self.eifs {
            for &r in &report.sensed_dirty {
                self.nodes[r].mac.eifs_mark();
            }
        }
        for &r in &report.became_idle {
            if let Some((after, epoch)) = self.nodes[r].mac.medium_idle(self.now) {
                self.arm_tx_timer(r, after, epoch);
            }
        }
        let medium_busy = self.channel.is_busy(node);
        self.end_report = report;
        self.mac_event(node, MacInput::TxEnded { medium_busy }, true);
    }

    fn on_sample(&mut self) {
        for id in 0..self.nodes.len() {
            let occ = self.hot.occupancy[id] as usize;
            debug_assert_eq!(occ, self.nodes[id].occupancy(), "occupancy mirror drift");
            let cw = self.nodes[id].mac.cw_min();
            self.metrics.on_sample(self.now, id, occ, cw);
        }
        self.sched
            .schedule(GLOBAL_SHARD, self.now + self.sample_every, Ev::Sample);
    }

    fn on_backlog(&mut self) {
        for id in 0..self.nodes.len() {
            if self.nodes[id].controller.backlog_period().is_none() {
                continue;
            }
            for si in 0..self.successors[id].len() {
                let s = self.successors[id][si];
                let backlog = self.hot.occupancy[s] as usize;
                let own_backlog = self.hot.occupancy[id] as usize;
                let cmd = self.nodes[id].controller.on_event(
                    self.now,
                    ControllerEvent::NeighborBacklog {
                        neighbor: s,
                        backlog,
                        own_backlog,
                    },
                );
                if self.audit.enabled() {
                    if let Some(rec) = self.nodes[id].controller.take_decision() {
                        self.audit.record_decision(self.now, id, rec);
                    }
                }
                self.apply_cw(id, cmd);
            }
        }
        self.drain();
        if let Some(p) = self.backlog_every {
            self.sched.schedule(GLOBAL_SHARD, self.now + p, Ev::Backlog);
        }
    }

    /// One telemetry sample window closing at `self.now` — reads queue
    /// depths, airtime deltas, MAC counter deltas and per-flow delivered
    /// bits into the telemetry rings, then re-arms the sampler.
    ///
    /// Interference-free by construction: the airtime settle splits the
    /// lazy integer-microsecond accrual exactly (totals every later
    /// reader sees are unchanged), every other access is a pure read,
    /// and the one push this makes is compensated in [`Network::snapshot`].
    fn on_telemetry(&mut self) {
        self.channel.accrue_airtime(self.now);
        for id in 0..self.nodes.len() {
            let occ = self.hot.occupancy[id] as f64;
            let air = self.channel.airtime_breakdown(id);
            let mac = self.nodes[id].mac.stats();
            self.telemetry.node_sample(id, occ, air, mac);
        }
        for (i, series) in self.metrics.throughput.values().enumerate() {
            self.telemetry.flow_sample(i, series.total_bits());
        }
        self.telemetry.finish_window(self.now);
        let next = self.now + self.telemetry.every();
        self.telemetry.note_push();
        self.sched.schedule(GLOBAL_SHARD, next, Ev::Telemetry);
    }

    /// Processes queued MAC inputs until quiescence.
    fn drain(&mut self) {
        let mut outs = self.mac_out_pool.pop().unwrap_or_default();
        while let Some((id, work)) = self.worklist.pop_front() {
            // Carrier-sense busy toggles are the bulk of the worklist
            // (every transmission raises one at every sensing neighbour),
            // can never produce an output, and never change `Mac::is_idle`
            // (a pure function of phase + held frame) — dispatched inline
            // with no `MacInput` build, no output loop, no feed probe.
            if let WorkInput::MediumBusy = work {
                self.nodes[id].mac.medium_busy(self.now);
                // A busy toggle freezes any running countdown: park the
                // invalidated timer entry instead of leaving it to be
                // elided at pop time (the bulk of the old stale churn).
                self.park_stale_tx(id);
                continue;
            }
            // NAV reservations pause a countdown but cannot change
            // `Mac::is_idle` or any queue either, so the feed probe after
            // them is always a no-op; only received frames need it.
            let feed = !matches!(work, WorkInput::NavSet { .. });
            // Rebuild the full `MacInput` only here, at the dispatch
            // point — a freshly built large enum passed by value costs a
            // discriminant write plus the payload, not a deque round trip.
            let mut rx = || self.rx_frames.pop_front().expect("rx marker has a frame");
            let input = match work {
                WorkInput::MediumBusy => unreachable!("dispatched inline above"),
                WorkInput::NavSet { until } => MacInput::NavSet { until },
                WorkInput::RxData => MacInput::RxData { frame: rx() },
                WorkInput::RxAck => MacInput::RxAck { frame: rx() },
                WorkInput::RxRts => MacInput::RxRts { frame: rx() },
                WorkInput::RxCts => MacInput::RxCts { frame: rx() },
            };
            {
                let node = &mut self.nodes[id];
                node.mac
                    .input_into(self.now, input, &mut node.rng, &mut self.arena, &mut outs);
            }
            for o in outs.drain(..) {
                self.handle_output(id, o);
            }
            if feed {
                self.try_feed(id);
            }
            self.park_stale_tx(id);
        }
        self.mac_out_pool.push(outs);
    }

    fn handle_output(&mut self, id: usize, out: MacOutput) {
        match out {
            MacOutput::StartTx { frame, air, info } => {
                let f = *self.arena.get(frame);
                if self.trace.enabled() {
                    self.trace
                        .push(self.now, id, TraceKind::TxStart, frame_payload(&f));
                }
                // One DCF attempt with its contention state. Recorded for
                // the data frame only (an RTS preceding it shares the same
                // attempt; SIFS responses carry no contention info).
                if let Some(i) = info {
                    if f.is_data() && self.flight.is_tracked(f.seq) {
                        self.flight_record(
                            f.seq,
                            id,
                            TraceKind::Attempt,
                            TracePayload::Attempt {
                                seq: f.seq,
                                attempt: i.attempt,
                                cw: i.cw,
                                slots: i.slots,
                            },
                        );
                    }
                }
                let end = self.now + air;
                // Scratch report: `start_tx_into` refills it in place.
                // Disjoint-field borrows, so no take-out dance is needed.
                // The channel caches `src`/`dst` and never dereferences
                // the id; ownership stays with the engine until `TxEnd`.
                self.channel.start_tx_into(
                    self.now,
                    frame,
                    f.src,
                    f.dst,
                    end,
                    &mut self.start_report,
                );
                self.sched.schedule(
                    self.hot.shard_of[id] as usize,
                    end,
                    Ev::TxEnd {
                        tx: self.start_report.tx_id,
                        node: id,
                    },
                );
                for &r in &self.start_report.became_busy {
                    self.worklist.push_back((r, WorkInput::MediumBusy));
                }
            }
            MacOutput::SetTimerTxPath { after, epoch } => self.arm_tx_timer(id, after, epoch),
            MacOutput::SetTimerAckJob { after, epoch } => self.arm_ack_timer(id, after, epoch),
            MacOutput::SetTimerNav { after } => {
                let shard = self.hot.shard_of[id] as usize;
                self.sched
                    .schedule(shard, self.now + after, Ev::MacNav { node: id });
            }
            MacOutput::TxSuccess { frame, .. } => {
                // Terminal event: the MAC handed the id back; release it
                // and do the bookkeeping off the returned copy.
                let f = self.arena.release(frame);
                // Hop latency: enqueue at this node → acknowledged
                // transmission. Always on — deterministic, no RNG touched.
                self.metrics.hop_latency[id]
                    .record(self.now.saturating_since(f.hop_entered).as_micros());
                let cmd = self.nodes[id].controller.on_event(
                    self.now,
                    ControllerEvent::SentToSuccessor {
                        successor: f.dst,
                        frame: &f,
                    },
                );
                // Sink successors never transmit, so their zero-backlog
                // samples arrive through this event; a CAA round can
                // complete (and decide) here just as on an overhearing.
                if self.audit.enabled() {
                    if let Some(rec) = self.nodes[id].controller.take_decision() {
                        self.audit.record_decision(self.now, id, rec);
                    }
                }
                self.apply_cw(id, cmd);
            }
            MacOutput::TxDropped { frame, .. } => {
                let f = self.arena.release(frame);
                self.metrics.retry_drops[id] += 1;
                let payload = TracePayload::Drop {
                    cause: DropCause::RetryLimit,
                    seq: f.seq,
                };
                if self.trace.enabled() {
                    self.trace.push(self.now, id, TraceKind::Drop, payload);
                }
                if self.flight.is_tracked(f.seq) {
                    self.flight_record(f.seq, id, TraceKind::Drop, payload);
                    self.flight.complete(f.seq);
                }
            }
            MacOutput::Deliver { frame } => self.on_deliver(id, frame),
            MacOutput::NeedFrame => self.try_feed(id),
        }
    }

    fn on_deliver(&mut self, id: usize, frame: FrameId) {
        let f = *self.arena.get(frame);
        if f.final_dst == id {
            // Terminal event: release before the bookkeeping; everything
            // below works off the returned copy.
            self.arena.release(frame);
            // Terminal record for the packet's journey — transport ACKs
            // are packets too and end theirs here.
            if self.flight.is_tracked(f.seq) {
                self.flight_record(
                    f.seq,
                    id,
                    TraceKind::Deliver,
                    TracePayload::Deliver {
                        seq: f.seq,
                        flow: f.flow,
                    },
                );
                self.flight.complete(f.seq);
            }
            if f.flow >= TRANSPORT_ACK_FLOW {
                // A transport ACK made it back to the source.
                let data_flow = f.flow - TRANSPORT_ACK_FLOW;
                let ack_ref = f.ack_ref;
                self.with_transport(data_flow, |t, net| t.on_ack_delivered(net, ack_ref));
                return;
            }
            self.metrics.on_delivery(self.now, &f);
            let seq = f.seq;
            self.with_transport(f.flow, |t, net| t.on_data_delivered(net, seq));
            return;
        }
        let Some(nh) = self.routing.next_hop(id, f.final_dst) else {
            // A frame we cannot route: topology bug; count as a drop.
            self.arena.release(frame);
            self.metrics.queue_drops[id] += 1;
            let payload = TracePayload::Drop {
                cause: DropCause::Unroutable,
                seq: f.seq,
            };
            if self.trace.enabled() {
                self.trace.push(self.now, id, TraceKind::Drop, payload);
            }
            if self.flight.is_tracked(f.seq) {
                self.flight_record(f.seq, id, TraceKind::Drop, payload);
                self.flight.complete(f.seq);
            }
            return;
        };
        // Hop rewrite in place — the frame never leaves its slot.
        {
            let fwd = self.arena.get_mut(frame);
            fwd.src = id;
            fwd.dst = nh;
            fwd.retry = false;
            // Per-hop latency clock restarts at every relay.
            fwd.hop_entered = self.now;
        }
        let seq = f.seq;
        let flow = f.flow;
        if !self.nodes[id].enqueue(false, frame, &self.arena) {
            self.arena.release(frame);
            self.metrics.queue_drops[id] += 1;
            let payload = TracePayload::Drop {
                cause: DropCause::QueueFull,
                seq,
            };
            if self.trace.enabled() {
                self.trace.push(self.now, id, TraceKind::Drop, payload);
            }
            if self.flight.is_tracked(seq) {
                self.flight_record(seq, id, TraceKind::Drop, payload);
                self.flight.complete(seq);
            }
        } else {
            self.hot.occupancy[id] += 1;
            if self.flight.is_tracked(seq) {
                let (occ, cap) = self.nodes[id].queue_depth(false, nh);
                self.flight_record(
                    seq,
                    id,
                    TraceKind::Enqueue,
                    TracePayload::Enqueue {
                        seq,
                        flow,
                        occupancy: occ as u32,
                        cap: cap as u32,
                    },
                );
            }
        }
        self.try_feed(id);
    }

    /// Feeds the MAC its next frame if it is idle and a queue is backlogged.
    pub(crate) fn try_feed(&mut self, id: usize) {
        if !self.nodes[id].mac.is_idle() {
            return;
        }
        let Some((frame, qidx)) = self.nodes[id].pop_round_robin() else {
            return;
        };
        self.hot.occupancy[id] -= 1;
        let f = {
            let g = self.arena.get_mut(frame);
            if g.origin == id && g.entered_net == g.created {
                g.entered_net = self.now;
            }
            *g
        };
        if self.flight.is_tracked(f.seq) {
            self.flight_record(
                f.seq,
                id,
                TraceKind::Dequeue,
                TracePayload::Dequeue {
                    seq: f.seq,
                    flow: f.flow,
                },
            );
        }
        // §7 extension: per-successor windows. If the controller keeps a
        // distinct window for this frame's successor, program it for this
        // frame's contention (the 802.11e per-queue CWmin pattern).
        if let Some(cw) = self.nodes[id].controller.queue_window(f.dst) {
            if cw != self.nodes[id].mac.cw_min() {
                let node = &mut self.nodes[id];
                let outs = node.mac.input(
                    self.now,
                    MacInput::SetCwMin { cw_min: cw },
                    &mut node.rng,
                    &mut self.arena,
                );
                debug_assert!(outs.is_empty());
            }
        }
        let mut outs = self.mac_out_pool.pop().unwrap_or_default();
        {
            let node = &mut self.nodes[id];
            node.mac.input_into(
                self.now,
                MacInput::Enqueue { frame, queue: qidx },
                &mut node.rng,
                &mut self.arena,
                &mut outs,
            );
        }
        for o in outs.drain(..) {
            self.handle_output(id, o);
        }
        self.mac_out_pool.push(outs);
        // An enqueue into a running post-backoff freezes the countdown
        // (the frame attaches to the remaining slots) — park it.
        self.park_stale_tx(id);
    }

    fn apply_cw(&mut self, id: usize, cmd: Option<u32>) {
        let Some(cw) = cmd else { return };
        if cw == self.nodes[id].mac.cw_min() {
            return;
        }
        if self.trace.enabled() {
            self.trace.push(
                self.now,
                id,
                TraceKind::CwChange,
                TracePayload::CwChange {
                    from: self.nodes[id].mac.cw_min(),
                    to: cw,
                },
            );
        }
        let node = &mut self.nodes[id];
        let outs = node.mac.input(
            self.now,
            MacInput::SetCwMin { cw_min: cw },
            &mut node.rng,
            &mut self.arena,
        );
        debug_assert!(outs.is_empty());
    }

    /// Dispatch counts per event kind, `(name, count)`, in dispatch order.
    ///
    /// Returns a slice into a cache refreshed on each call — repeated
    /// polling (progress displays, per-round sweeps) never allocates.
    pub fn dispatched_by_kind(&mut self) -> &[(&'static str, u64)] {
        for (slot, (&name, &n)) in self
            .by_kind_cache
            .iter_mut()
            .zip(EV_NAMES.iter().zip(self.dispatched.iter()))
        {
            *slot = (name, n);
        }
        &self.by_kind_cache
    }

    /// Scratch-buffer reuses in the channel — allocations the hot path
    /// avoided (see the `hotpath_bench` gate).
    pub fn buffer_reuses(&self) -> u64 {
        self.channel.buffer_reuses()
    }

    /// Wall-clock time spent inside [`Network::run_until`] so far.
    pub fn wall_time(&self) -> std::time::Duration {
        self.wall
    }

    /// Takes a [`RunSnapshot`] of the whole network at the current
    /// simulated instant. Mutable because the channel's airtime accounts
    /// are brought up to date first.
    ///
    /// The latency histograms are cloned into the owned snapshot; callers
    /// that only want the JSON document should use
    /// [`Network::snapshot_json`], which serialises them from borrows.
    pub fn snapshot(&mut self, label: &str) -> RunSnapshot {
        let mut snap = self.snapshot_sans_latency(label);
        snap.latency = LatencySnapshot {
            per_flow: self
                .metrics
                .flow_latency
                .iter()
                .map(|(&f, h)| (f, h.clone()))
                .collect(),
            per_hop: self.metrics.hop_latency.clone(),
        };
        snap
    }

    /// The snapshot's JSON document, with the latency section serialised
    /// straight from the engine's histograms — no clone of the bucket
    /// vectors. Byte-identical to `self.snapshot(label).to_json()`; the
    /// benches use this form so the measurement epilogue does not charge
    /// the run a histogram copy per flow and per node.
    pub fn snapshot_json(&mut self, label: &str) -> JsonValue {
        let snap = self.snapshot_sans_latency(label);
        let latency = crate::snapshot::latency_json(
            self.metrics.flow_latency.iter().map(|(&f, h)| (f, h)),
            self.metrics.hop_latency.iter(),
        );
        snap.to_json_with_latency(latency)
    }

    /// Everything in a [`RunSnapshot`] except the latency histograms
    /// (left default): the shared core of [`Network::snapshot`] and
    /// [`Network::snapshot_json`].
    fn snapshot_sans_latency(&mut self, label: &str) -> RunSnapshot {
        self.channel.accrue_airtime(self.now);
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| NodeSnapshot {
                id,
                controller: node.controller.name().to_string(),
                cw_min: node.mac.cw_min(),
                airtime: self.channel.airtime_breakdown(id),
                mac: node.mac.stats(),
                counters: node.controller.counters(),
                queues: node
                    .queues
                    .iter()
                    .map(|q| QueueSnapshot {
                        own: q.own,
                        successor: q.successor,
                        occupancy: q.len(),
                        cap: q.cap(),
                        high_water: q.high_water,
                        drops: q.drops,
                        accepted: q.accepted,
                    })
                    .collect(),
            })
            .collect();
        let wall_secs = self.wall.as_secs_f64();
        let sim_secs = self.now.as_micros() as f64 / 1e6;
        let per_wall = |x: f64| if wall_secs > 0.0 { x / wall_secs } else { 0.0 };
        // Telemetry compensation: with the sampler armed there is always
        // exactly one resident sampler entry (popped, then re-armed
        // before anything else is pushed), every push candidate for the
        // depth high-water mark is therefore exactly one higher than in
        // the telemetry-off run, and `pushes` counts the sampler's
        // schedule() calls. Subtracting all three makes the scheduler
        // block *equal* to a telemetry-off run's, not just close.
        let tel_resident = self.telemetry.enabled() as usize;
        RunSnapshot {
            label: label.to_string(),
            at_us: self.now.as_micros(),
            nodes,
            channel: self.channel.stats(),
            scheduler: SchedulerSnapshot {
                scheduled_total: self.sched.scheduled_total() - self.telemetry.pushes(),
                dispatched_total: self.events,
                stale_elided: self.sched.stale_drops(),
                rescheduled_total: self.sched.rescheduled_total(),
                removed_total: self.sched.removed_total(),
                pending: self.sched.len() - tel_resident,
                depth_high_water: self.sched.depth_high_water() - tel_resident,
                dispatched_by_kind: EV_NAMES
                    .iter()
                    .zip(self.dispatched.iter())
                    .map(|(&name, &n)| (name.to_string(), n))
                    .collect(),
            },
            perf: {
                let wheel = self.sched.wheel_stats();
                PerfSnapshot {
                    wall_secs,
                    sim_secs,
                    events_per_sec: per_wall(
                        (self.events + self.sched.stale_drops() + self.sched.rescheduled_total())
                            as f64,
                    ),
                    sim_rate: per_wall(sim_secs),
                    sched_depth_high_water: (self.sched.depth_high_water() - tel_resident) as u64,
                    // Elided timers plus the MAC's own defensive count (the
                    // latter is zero when elision is doing its job).
                    stale_epoch_drops: self.sched.stale_drops()
                        + self
                            .nodes
                            .iter()
                            .map(|n| n.mac.stats().stale_epochs)
                            .sum::<u64>(),
                    sched_rotations: wheel.rotations,
                    sched_overflow_refills: wheel.overflow_refills,
                    sched_bucket_high_water: wheel.bucket_high_water,
                    trace_evictions: self.trace.pushed_total() - self.trace.len() as u64,
                    arena_high_water: self.arena.high_water() as u64,
                    handler_ns: self.handler_ns,
                    telemetry_windows: self.telemetry.windows(),
                    telemetry_windows_per_sec: per_wall(self.telemetry.windows() as f64),
                    // 0 for a serial run (the JSON key is omitted below
                    // shards=2, so 0 — not 1 — is what round-trips).
                    shards: match self.sched.shards() as u64 {
                        1 => 0,
                        k => k,
                    },
                    cut_deliveries: self.sched.cut_deliveries(),
                    barrier_waits: self.sched.barrier_waits(),
                }
            },
            latency: LatencySnapshot::default(),
            trace_records: self.trace.pushed_total(),
            stability: self.telemetry.stability_snapshot(),
            controller: self.audit.controller_snapshot(),
        }
    }
}

impl TransportCtx for Network {
    fn now(&self) -> Time {
        Network::now(self)
    }

    fn send(&mut self, flow: u32, src: usize, dst: usize, payload: u32, ack_ref: u64) -> u64 {
        self.emit_packet(flow, src, dst, payload, ack_ref)
    }
}

#[cfg(test)]
mod tests {
    use crate::controller::{Controller, FixedController};
    use crate::network::{Network, NetworkSpec};
    use crate::snapshot::PerfSnapshot;
    use crate::topo;
    use ezflow_sim::Time;

    fn std_controller(_id: usize) -> Box<dyn Controller> {
        Box::new(FixedController::standard())
    }

    fn run_chain(hops: usize, secs: u64, seed: u64) -> Network {
        let t = topo::chain(hops, Time::ZERO, Time::from_secs(secs));
        let mut net = Network::from_topology(&t, seed, &std_controller);
        net.run_until(Time::from_secs(secs));
        net
    }

    #[test]
    fn single_hop_link_saturates_near_ideal_capacity() {
        let net = run_chain(1, 60, 1);
        let kbps = net
            .metrics
            .mean_kbps(0, Time::from_secs(10), Time::from_secs(60));
        // Analytic loss-free capacity is ~880 kb/s (see calibrate.rs).
        assert!(
            (850.0..905.0).contains(&kbps),
            "1-hop saturation throughput {kbps} kb/s"
        );
        // No relay: no queue drops anywhere but the source.
        assert_eq!(net.metrics.queue_drops.iter().sum::<u64>(), 0);
        assert!(net.metrics.source_drops[&0] > 0, "2 Mb/s CBR must overflow");
    }

    #[test]
    fn two_hop_throughput_is_roughly_half() {
        let net = run_chain(2, 60, 2);
        let kbps = net
            .metrics
            .mean_kbps(0, Time::from_secs(10), Time::from_secs(60));
        // Two mutually-sensing transmitters share the channel.
        assert!(
            (350.0..480.0).contains(&kbps),
            "2-hop saturation throughput {kbps} kb/s"
        );
    }

    #[test]
    fn delivery_counters_are_consistent() {
        let net = run_chain(3, 30, 3);
        let delivered = net.metrics.delivered[&0];
        assert!(delivered > 0);
        let bits = net.metrics.throughput[&0].total_bits();
        assert_eq!(bits as u64, delivered * 8000);
        // Delays are positive and time-ordered.
        let pts = net.metrics.delay_net[&0].points();
        assert_eq!(pts.len() as u64, delivered);
        assert!(pts.iter().all(|&(_, d)| d > 0.0));
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = run_chain(4, 20, 42);
        let b = run_chain(4, 20, 42);
        assert_eq!(a.metrics.delivered[&0], b.metrics.delivered[&0]);
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.mac_stats(0).tx_attempts, b.mac_stats(0).tx_attempts);
        let ka = a.metrics.mean_kbps(0, Time::ZERO, Time::from_secs(20));
        let kb = b.metrics.mean_kbps(0, Time::ZERO, Time::from_secs(20));
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_chain(4, 20, 1);
        let b = run_chain(4, 20, 2);
        let sig = |n: &Network| {
            (0..4)
                .map(|i| n.mac_stats(i).tx_attempts)
                .collect::<Vec<_>>()
        };
        assert_ne!(
            sig(&a),
            sig(&b),
            "independent randomness should change micro-behaviour"
        );
    }

    #[test]
    fn without_capture_hidden_terminals_collide() {
        // Fault-model check: disabling capture turns the hidden pair
        // (0, 3) of a 4-hop chain into a collision source, and the MAC
        // recovers by retrying.
        let t = topo::chain(4, Time::ZERO, Time::from_secs(30));
        let mut spec = NetworkSpec::from_topology(&t, 5);
        spec.channel.cs_range = 550.0; // 3-hop neighbours hidden again
        spec.channel.capture_ratio = f64::INFINITY;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(30));
        assert!(
            net.channel_stats().collisions_at_dst > 0,
            "hidden terminals must collide without capture"
        );
        assert!(net.mac_stats(0).retries > 0, "the MAC must retry");
        assert!(
            net.metrics.delivered[&0] > 0,
            "traffic still flows end to end"
        );
    }

    #[test]
    fn four_hop_first_relay_buffer_builds_up() {
        // The paper's Fig. 1: in a 4-hop chain under standard 802.11, the
        // first relay's buffer grows to saturation.
        let net = run_chain(4, 120, 7);
        let b1 = net.metrics.buffer[1].window(Time::from_secs(60), Time::from_secs(120));
        assert!(
            b1.mean > 40.0,
            "node 1 buffer should build toward 50, got mean {}",
            b1.mean
        );
        assert!(
            net.metrics.queue_drops[1] > 500,
            "the saturated relay must shed overflow, got {}",
            net.metrics.queue_drops[1]
        );
    }

    #[test]
    fn three_hop_chain_is_stable() {
        // "Stable" in the paper's sense: the relay buffer fluctuates but
        // does not ratchet to saturation, and overflow drops stay
        // negligible — contrast with `four_hop_first_relay_buffer_builds_up`.
        let net = run_chain(3, 120, 7);
        let b1 = net.metrics.buffer[1].window(Time::from_secs(60), Time::from_secs(120));
        assert!(
            b1.mean < 35.0,
            "3-hop node-1 mean buffer should stay off the ceiling, got {}",
            b1.mean
        );
        assert!(
            net.metrics.queue_drops[1] < 200,
            "3-hop relay overflow drops should be negligible, got {}",
            net.metrics.queue_drops[1]
        );
    }

    #[test]
    fn traffic_stops_at_flow_end() {
        let t = topo::chain(1, Time::ZERO, Time::from_secs(5));
        let mut net = Network::from_topology(&t, 9, &std_controller);
        net.run_until(Time::from_secs(30));
        let before = net.metrics.mean_kbps(0, Time::ZERO, Time::from_secs(5));
        let after = net
            .metrics
            .mean_kbps(0, Time::from_secs(10), Time::from_secs(30));
        assert!(before > 100.0);
        assert_eq!(after, 0.0, "no deliveries after the flow stops");
    }

    #[test]
    fn snapshot_captures_cross_layer_state_and_round_trips() {
        let t = topo::chain(3, Time::ZERO, Time::from_secs(20));
        let mut spec = NetworkSpec::from_topology(&t, 13);
        spec.trace_cap = 256;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(20));
        let snap = net.snapshot("chain-3");

        assert_eq!(snap.label, "chain-3");
        assert_eq!(snap.at_us, 20_000_000);
        assert_eq!(snap.nodes.len(), 4);
        assert!(snap.scheduler.dispatched_total > 0);
        assert_eq!(
            snap.scheduler.dispatched_total,
            snap.scheduler
                .dispatched_by_kind
                .iter()
                .map(|(_, n)| n)
                .sum::<u64>(),
            "per-kind counts must sum to the total"
        );
        assert!(snap.scheduler.scheduled_total >= snap.scheduler.dispatched_total);
        assert!(snap.scheduler.depth_high_water > 0);
        assert!(snap.trace_records > 0);
        let tx_ends = snap
            .scheduler
            .dispatched_by_kind
            .iter()
            .find(|(k, _)| k == "tx_end")
            .expect("tx_end kind present")
            .1;
        assert!(tx_ends > 0, "a saturated chain transmits");
        for node in &snap.nodes {
            assert_eq!(node.controller, "802.11");
            assert_eq!(
                node.airtime.total_us(),
                snap.at_us,
                "airtime buckets must partition the run"
            );
        }
        // The source transmits; its counters show up.
        assert!(snap.nodes[0].mac.tx_attempts > 0);
        assert!(snap.nodes[0].airtime.tx_us > 0);
        assert!(snap.nodes[0].queues[0].high_water > 0);
        // Wall-clock accounting ran.
        assert!(snap.perf.wall_secs > 0.0);
        assert!(snap.perf.events_per_sec > 0.0);

        // JSON round trip through the sim JSON kernel.
        let text = snap.to_json().to_pretty();
        let parsed = ezflow_sim::JsonValue::parse(&text).unwrap();
        let back = crate::snapshot::RunSnapshot::from_json(&parsed).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_json_is_stable_across_identical_runs() {
        // Two identical runs must serialise byte-identically once the
        // (honestly non-deterministic) wall-clock block is zeroed: all
        // metric maps are ordered, so key order is a pure function of the
        // spec and seed.
        let snap_text = || {
            let t = topo::chain(3, Time::ZERO, Time::from_secs(15));
            let mut spec = NetworkSpec::from_topology(&t, 17);
            spec.trace_cap = 64;
            let mut net = Network::new(spec, &std_controller);
            net.run_until(Time::from_secs(15));
            let mut snap = net.snapshot("stability");
            snap.perf = PerfSnapshot::zeroed();
            snap.to_json().to_pretty()
        };
        assert_eq!(snap_text(), snap_text(), "snapshot JSON must be stable");
    }

    #[test]
    fn snapshot_json_matches_owned_snapshot_byte_for_byte() {
        // The borrowed-histogram fast path must be observationally
        // invisible: `snapshot_json` (no latency clones) and
        // `snapshot().to_json()` (owned histograms) must serialise the
        // same bytes. Taken at the same quiescent instant, the two calls
        // see identical state — `snapshot` is idempotent apart from
        // wall-clock noise, which lives in the perf block both paths
        // serialise identically from the same counters.
        let t = topo::chain(3, Time::ZERO, Time::from_secs(15));
        let spec = NetworkSpec::from_topology(&t, 17);
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(15));
        let owned = net.snapshot("pin").to_json().to_pretty();
        let borrowed = net.snapshot_json("pin").to_pretty();
        assert_eq!(owned, borrowed, "snapshot_json drifted from snapshot()");
        assert!(
            owned.contains("per_hop"),
            "pin run must exercise the latency section"
        );
    }

    #[test]
    fn trace_exports_typed_payloads_as_jsonl() {
        let t = topo::chain(2, Time::ZERO, Time::from_secs(10));
        let mut spec = NetworkSpec::from_topology(&t, 21);
        spec.trace_cap = 4096;
        let mut net = Network::new(spec, &std_controller);
        net.run_until(Time::from_secs(10));
        let jsonl = net.trace.to_jsonl();
        let parsed = ezflow_sim::TraceRing::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), net.trace.len());
        // Typed payloads survived the trip: at least one frame record.
        assert!(parsed
            .iter()
            .any(|ev| matches!(ev.payload, ezflow_sim::TracePayload::Frame { .. })));
    }

    #[test]
    fn sample_traces_cover_the_run() {
        let net = run_chain(2, 10, 11);
        assert_eq!(net.metrics.buffer[0].len(), 10);
        assert_eq!(net.metrics.cw[1].len(), 10);
        // Standard controller: cw stays at the default.
        let cw = net.metrics.cw[1].window(Time::ZERO, Time::from_secs(10));
        assert_eq!(cw.mean, 32.0);
    }
}
