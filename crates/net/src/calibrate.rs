//! Testbed link calibration.
//!
//! The paper's campus links (Table 1) have very different measured
//! capacities — 845 kb/s on `l0` down to 408 kb/s on the bottleneck `l2`,
//! at a nominal 1 Mb/s PHY rate. We reproduce each link by a per-link
//! Bernoulli packet-error rate chosen so that the *isolated saturation
//! throughput* of the simulated link matches the measured capacity.
//!
//! The forward model is the exact expected-cycle-time of our DCF on a
//! single contention-free link with frame error probability `p` applied
//! independently to data frames and ACKs:
//!
//! * attempt `k` costs `DIFS + E[backoff_k] + T_data` plus either
//!   `SIFS + T_ack` (success, probability `s = (1-p)^2`) or the ACK
//!   timeout;
//! * the packet is *delivered* at the first attempt whose **data** frame
//!   is clean (an ACK loss triggers a retry, but the receiver already has
//!   the packet and filters the duplicate);
//! * after `max_attempts` failures the packet is dropped.
//!
//! `per_for_capacity` inverts the model by bisection.

use ezflow_mac::MacConfig;

/// Expected saturation throughput (payload kb/s) of an isolated link with
/// per-frame error probability `p`, payload `payload` bytes.
pub fn link_capacity_kbps(cfg: &MacConfig, payload: u32, p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p));
    let slot = cfg.slot.as_micros() as f64;
    let t_data = cfg.data_air(payload).as_micros() as f64;
    let t_ack = cfg.ack_air().as_micros() as f64;
    let difs = cfg.difs.as_micros() as f64;
    let sifs = cfg.sifs.as_micros() as f64;
    let t_to = cfg.ack_timeout().as_micros() as f64;

    let d = 1.0 - p; // data frame survives
    let s = d * d; // data + ack survive
    let mut expected_us = 0.0;
    let mut reach = 1.0; // probability of reaching attempt k
    for k in 0..cfg.max_attempts {
        let w = cfg.window(cfg.cw_min_default, k) as f64;
        let backoff = (w - 1.0) / 2.0 * slot;
        let tail = s * (sifs + t_ack) + (1.0 - s) * t_to;
        expected_us += reach * (difs + backoff + t_data + tail);
        reach *= 1.0 - s;
    }
    let p_delivered = 1.0 - (1.0 - d).powi(cfg.max_attempts as i32);
    let bits = payload as f64 * 8.0;
    bits * p_delivered / expected_us * 1000.0
}

/// Finds the per-frame error probability that makes the isolated link's
/// saturation throughput equal `target_kbps`. Returns 0 when the target is
/// at or above the loss-free capacity.
pub fn per_for_capacity(cfg: &MacConfig, payload: u32, target_kbps: f64) -> f64 {
    let ideal = link_capacity_kbps(cfg, payload, 0.0);
    if target_kbps >= ideal {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 0.95f64);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if link_capacity_kbps(cfg, payload, mid) > target_kbps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_capacity_matches_hand_computation() {
        let cfg = MacConfig::default();
        // Cycle: DIFS 50 + mean backoff 15.5*20=310 + data 8416 + SIFS 10
        // + ACK 304 = 9090 µs for 8000 payload bits -> 880.1 kb/s.
        let c = link_capacity_kbps(&cfg, 1000, 0.0);
        assert!((c - 880.1).abs() < 0.5, "capacity {c}");
    }

    #[test]
    fn capacity_decreases_with_loss() {
        let cfg = MacConfig::default();
        let c0 = link_capacity_kbps(&cfg, 1000, 0.0);
        let c1 = link_capacity_kbps(&cfg, 1000, 0.1);
        let c2 = link_capacity_kbps(&cfg, 1000, 0.3);
        assert!(c0 > c1 && c1 > c2, "{c0} {c1} {c2}");
    }

    #[test]
    fn inversion_roundtrips_table1_targets() {
        let cfg = MacConfig::default();
        for target in [845.0, 672.0, 408.0, 748.0, 746.0, 805.0, 648.0] {
            let p = per_for_capacity(&cfg, 1000, target);
            let back = link_capacity_kbps(&cfg, 1000, p);
            assert!(
                (back - target).abs() < 1.0,
                "target {target}: p={p}, back={back}"
            );
        }
    }

    #[test]
    fn target_above_ideal_gives_zero_loss() {
        let cfg = MacConfig::default();
        assert_eq!(per_for_capacity(&cfg, 1000, 2000.0), 0.0);
    }
}
