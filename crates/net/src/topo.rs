//! The paper's topologies.
//!
//! Every experiment runs on one of four layouts:
//!
//! * [`chain`] — the K-hop line of Fig. 1 and of the analytical model:
//!   nodes every 200 m, so 1–2-hop neighbours carrier-sense each other
//!   (≤ 400 m < 550 m) and 3-hop neighbours are hidden (600 m > 550 m).
//! * [`testbed`] — the 9-node campus deployment of Fig. 3, with per-link
//!   loss calibrated to the Table 1 capacities. F1 is the 7-hop flow
//!   N0→…→N7 over links `l0..l6` (bottleneck `l2`); F2 is the 4-hop
//!   parking-lot flow entering at N4 from the extra source node 8 (the
//!   paper's N0′).
//! * [`scenario1`] — Fig. 5: two 8-hop flows on a Y of two branches merging
//!   at N4 toward the gateway N0 (uplink backhaul pattern).
//! * [`scenario2`] — Fig. 9: three flows with hidden sources. The paper
//!   does not give coordinates, so this is a documented reconstruction
//!   satisfying every property the text states: N10 (F2's source) is
//!   hidden from N0 and carrier-senses only N11 and N12; the lower parts
//!   of F2 and F3 share the medium with F1's chain; node ids match the
//!   `cw` labels of Fig. 11 (F2 = N10..N15, F3 = N19..N24).

use ezflow_mac::MacConfig;
use ezflow_phy::{LossModel, Position};
use ezflow_sim::Time;

use crate::calibrate::per_for_capacity;
use crate::traffic::Transport;

/// One unidirectional flow over a fixed multi-hop path.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSpec {
    /// Flow id (dense, 0-based).
    pub id: u32,
    /// Full node path, source first, destination last.
    pub path: Vec<usize>,
    /// Application rate, bits/s (the paper saturates with 2 Mb/s).
    /// Ignored by windowed transports (they are ACK-clocked).
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub payload_bytes: u32,
    /// Generation start.
    pub start: Time,
    /// Generation stop.
    pub stop: Time,
    /// Source pacing: open-loop CBR (the paper) or closed-loop windowed.
    pub transport: Transport,
}

impl FlowSpec {
    /// A saturating 2 Mb/s CBR flow along `path` for `[start, stop)`.
    pub fn saturating(id: u32, path: Vec<usize>, start: Time, stop: Time) -> Self {
        FlowSpec {
            id,
            path,
            rate_bps: 2_000_000,
            payload_bytes: 1000,
            start,
            stop,
            transport: Transport::Cbr,
        }
    }

    /// A fixed-window (TCP-like, ACK-clocked) flow along `path`.
    pub fn windowed(id: u32, path: Vec<usize>, window: usize, start: Time, stop: Time) -> Self {
        FlowSpec {
            transport: Transport::Windowed {
                window,
                ack_payload: 40,
            },
            ..FlowSpec::saturating(id, path, start, stop)
        }
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// A complete experiment layout: node placement, link quality and flows.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name.
    pub name: String,
    /// Node positions (meters).
    pub positions: Vec<Position>,
    /// Link loss process.
    pub loss: LossModel,
    /// The flows.
    pub flows: Vec<FlowSpec>,
}

impl Topology {
    /// Checks the layout can actually be built and run — the same typed
    /// diagnostics the spec loader uses (paths in bounds and decodable,
    /// positions finite, ids sane); see
    /// [`crate::builder::NetworkSpec::validate`]. The seed plays no role
    /// in validity.
    pub fn validate(&self) -> Result<(), crate::builder::SpecError> {
        crate::builder::NetworkSpec::from_topology(self, 0).validate()
    }
}

/// Standard inter-node spacing (meters).
pub const SPACING: f64 = 200.0;

/// Carrier-sense range used by every experiment (meters).
///
/// At 200 m spacing this makes carrier sensing cover **three** hops
/// (600 m ≤ 620 m) while four hops (800 m) stay hidden — the mesh-density
/// regime of the paper's testbed, where the 3-hop chain is the longest
/// stable one. The decode range stays at the ns-2 default (250 m). With
/// the ns-2 550 m default instead, even the destination's ACKs three hops
/// away are inaudible to the source, which (combined with capture) tips
/// the 3-hop chain into turbulence as well; real 802.11b carrier sensing
/// is commonly 2.5–3× the decode range, so 620 m is the faithful choice
/// for reproducing Fig. 1's stability boundary. See DESIGN.md §4.
pub const CS_RANGE: f64 = 620.0;

/// A K-hop chain (K+1 nodes) with one saturating flow 0 → K active over
/// `[start, stop)`.
pub fn chain(hops: usize, start: Time, stop: Time) -> Topology {
    assert!(hops >= 1);
    let positions = ezflow_phy::geom::line_positions(hops + 1, SPACING);
    let flow = FlowSpec::saturating(0, (0..=hops).collect(), start, stop);
    Topology {
        name: "chain".into(),
        positions,
        loss: LossModel::ideal(),
        flows: vec![flow],
    }
}

/// Paper Table 1 mean link capacities for F1's links `l0..l6`, kb/s.
pub const TABLE1_KBPS: [f64; 7] = [845.0, 672.0, 408.0, 748.0, 746.0, 805.0, 648.0];

/// Calibrated capacity of F2's access link N0′ → N4 (not in Table 1; a
/// good link, chosen at the level of `l3`/`l4`).
pub const F2_ACCESS_KBPS: f64 = 750.0;

/// Node id of the paper's N0′ (F2's source) in the [`testbed`] layout.
pub const TESTBED_F2_SRC: usize = 8;

/// The 9-node campus testbed of Fig. 3. `f1`/`f2` toggle the two flows
/// (Table 2 studies them alone and together); active flows run over
/// `[start, stop)`.
pub fn testbed(f1: bool, f2: bool, start: Time, stop: Time) -> Topology {
    // N0..N7 on a line; N8 (= N0') 200 m off the chain next to N4.
    let mut positions = ezflow_phy::geom::line_positions(8, SPACING);
    positions.push(Position::new(4.0 * SPACING, SPACING));

    let cfg = MacConfig::default();
    let mut loss = LossModel::ideal();
    for (i, &kbps) in TABLE1_KBPS.iter().enumerate() {
        let p = per_for_capacity(&cfg, 1000, kbps);
        loss.set_link_symmetric(i, i + 1, p);
    }
    loss.set_link_symmetric(
        TESTBED_F2_SRC,
        4,
        per_for_capacity(&cfg, 1000, F2_ACCESS_KBPS),
    );

    let mut flows = Vec::new();
    if f1 {
        flows.push(FlowSpec::saturating(
            flows.len() as u32,
            (0..=7).collect(),
            start,
            stop,
        ));
    }
    if f2 {
        flows.push(FlowSpec::saturating(
            flows.len() as u32,
            vec![TESTBED_F2_SRC, 4, 5, 6, 7],
            start,
            stop,
        ));
    }
    Topology {
        name: "testbed".into(),
        positions,
        loss,
        flows,
    }
}

/// Fig. 5: two 8-hop flows merging at N4 toward the gateway N0.
///
/// F1 (N12→N10→N8→N6→N4→N3→N2→N1→N0) runs 5 s – 2504 s;
/// F2 (N11→N9→N7→N5→N4→…→N0) runs 605 s – 1804 s.
pub fn scenario1() -> Topology {
    let mut positions = vec![Position::default(); 13];
    // Shared chain N4..N0 going east.
    #[allow(clippy::needless_range_loop)] // k is the node id, not an index
    for k in 0..=4usize {
        positions[k] = Position::new((4 - k) as f64 * SPACING, 0.0);
    }
    // Two branches leaving N4 westward at ±15 degrees.
    let (dx, dy) = ((165f64).to_radians().cos(), (165f64).to_radians().sin());
    for j in 1..=4usize {
        let r = j as f64 * SPACING;
        positions[4 + 2 * j] = Position::new(r * dx, r * dy); // N6,N8,N10,N12
        positions[3 + 2 * j] = Position::new(r * dx, -r * dy); // N5,N7,N9,N11
    }
    let f1 = FlowSpec::saturating(
        0,
        vec![12, 10, 8, 6, 4, 3, 2, 1, 0],
        Time::from_secs(5),
        Time::from_secs(2504),
    );
    let f2 = FlowSpec::saturating(
        1,
        vec![11, 9, 7, 5, 4, 3, 2, 1, 0],
        Time::from_secs(605),
        Time::from_secs(1804),
    );
    Topology {
        name: "scenario1".into(),
        positions,
        loss: LossModel::ideal(),
        flows: vec![f1, f2],
    }
}

/// End of the scenario-1 run.
pub fn scenario1_end() -> Time {
    Time::from_secs(2504)
}

/// A dense `rows × cols` grid mesh with one saturating west→east flow per
/// row, all active over `[start, stop)`.
///
/// Nodes sit every `spacing` meters in both directions, so tight spacings
/// put *every* node inside every other's carrier-sense range — the
/// worst case for the channel's per-sender neighbor lists (degree ≈ N)
/// and therefore the stressor `hotpath_bench` uses to check the
/// neighbor-table path never loses to the full scan it replaced.
pub fn grid(rows: usize, cols: usize, spacing: f64, start: Time, stop: Time) -> Topology {
    assert!(rows >= 1 && cols >= 2, "each row must carry a 1+ hop flow");
    let mut positions = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Position::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    let flows = (0..rows)
        .map(|r| {
            let path: Vec<usize> = (0..cols).map(|c| r * cols + c).collect();
            FlowSpec::saturating(r as u32, path, start, stop)
        })
        .collect();
    Topology {
        name: "grid".into(),
        positions,
        loss: LossModel::ideal(),
        flows,
    }
}

/// Fig. 9 (reconstruction): three flows with hidden sources.
///
/// * F1: N0→N1→…→N9 (9 hops along the x axis), 5 s – 4500 s.
/// * F2: N10→N11→N12→N13→N14→N15 (descending from the north, lower hops
///   sharing the medium with F1's head), 5 s – 3605 s.
/// * F3: N19→N20→N21→N22→N23→N24 (ascending from the south near F1's
///   middle), 1805 s – 3605 s.
///
/// Properties from the paper preserved: N10 is hidden from N0
/// (dist ≈ 1077 m > 550 m) and carrier-senses only N11 and N12; the flows
/// share the wireless resource on parts of their paths; node ids match the
/// `cw` labels of Fig. 11. Nodes 16–18 exist but are idle (parked far
/// away), keeping the paper's numbering.
pub fn scenario2() -> Topology {
    let mut positions = vec![Position::new(50_000.0, 50_000.0); 25];
    #[allow(clippy::needless_range_loop)] // k is the node id, not an index
    for k in 0..=9usize {
        positions[k] = Position::new(k as f64 * SPACING, 0.0);
    }
    // F2: chain descending from the north toward the F1 chain. The hop
    // N12 -> N13 stretches to 240 m so that N13 stays outside N10's
    // carrier-sense range (the paper: N10 competes only with N11, N12).
    positions[10] = Position::new(400.0, 1000.0);
    positions[11] = Position::new(400.0, 800.0);
    positions[12] = Position::new(400.0, 600.0);
    positions[13] = Position::new(400.0, 360.0);
    positions[14] = Position::new(480.0, 140.0);
    positions[15] = Position::new(640.0, 40.0);
    // F3: mirrored chain ascending from the south near F1's middle.
    positions[19] = Position::new(800.0, -1000.0);
    positions[20] = Position::new(800.0, -800.0);
    positions[21] = Position::new(800.0, -600.0);
    positions[22] = Position::new(800.0, -360.0);
    positions[23] = Position::new(880.0, -140.0);
    positions[24] = Position::new(1040.0, -40.0);
    // Idle spares 16..18 parked far away but distinct.
    for (i, k) in (16..=18usize).enumerate() {
        positions[k] = Position::new(50_000.0 + 1_000.0 * i as f64, 50_000.0);
    }

    let f1 = FlowSpec::saturating(
        0,
        (0..=9).collect(),
        Time::from_secs(5),
        Time::from_secs(4500),
    );
    let f2 = FlowSpec::saturating(
        1,
        vec![10, 11, 12, 13, 14, 15],
        Time::from_secs(5),
        Time::from_secs(3605),
    );
    let f3 = FlowSpec::saturating(
        2,
        vec![19, 20, 21, 22, 23, 24],
        Time::from_secs(1805),
        Time::from_secs(3605),
    );
    Topology {
        name: "scenario2".into(),
        positions,
        loss: LossModel::ideal(),
        flows: vec![f1, f2, f3],
    }
}

/// End of the scenario-2 run.
pub fn scenario2_end() -> Time {
    Time::from_secs(4500)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_phy::{Channel, ChannelConfig};

    fn channel_for(t: &Topology) -> Channel {
        let cfg = ChannelConfig {
            cs_range: CS_RANGE,
            ..ChannelConfig::default()
        };
        Channel::new(&t.positions, cfg, t.loss.clone())
    }

    #[test]
    fn chain_geometry() {
        let t = chain(4, Time::from_secs(0), Time::from_secs(10));
        assert_eq!(t.positions.len(), 5);
        assert_eq!(t.flows[0].hops(), 4);
        let ch = channel_for(&t);
        assert!(ch.can_decode(0, 1));
        assert!(!ch.can_decode(0, 2));
        assert!(ch.can_sense(0, 2));
        assert!(ch.can_sense(0, 3), "3-hop neighbours are sensed");
        assert!(!ch.can_sense(0, 4), "4-hop neighbours are hidden");
    }

    #[test]
    fn scenario1_paths_are_connected_and_merge() {
        let t = scenario1();
        let ch = channel_for(&t);
        for f in &t.flows {
            for w in f.path.windows(2) {
                assert!(
                    ch.can_decode(w[0], w[1]),
                    "hop {}->{} must decode",
                    w[0],
                    w[1]
                );
            }
        }
        assert_eq!(t.flows[0].hops(), 8);
        assert_eq!(t.flows[1].hops(), 8);
        // Branch heads are 2 hops of distance from the junction's chain.
        assert!(ch.can_sense(6, 4));
        assert!(ch.can_sense(8, 4));
    }

    #[test]
    fn grid_is_dense_and_rowwise_connected() {
        let t = grid(4, 4, 140.0, Time::ZERO, Time::from_secs(10));
        assert_eq!(t.positions.len(), 16);
        assert_eq!(t.flows.len(), 4);
        let ch = channel_for(&t);
        for f in &t.flows {
            for w in f.path.windows(2) {
                assert!(ch.can_decode(w[0], w[1]), "hop {}->{}", w[0], w[1]);
            }
        }
        // 140 m spacing: the whole 420 m x 420 m grid fits inside one
        // 620 m carrier-sense disk — every node senses every other.
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    assert!(ch.can_sense(a, b), "{a} must sense {b}");
                }
            }
        }
    }

    #[test]
    fn scenario2_hidden_source_properties() {
        let t = scenario2();
        let ch = channel_for(&t);
        for f in &t.flows {
            for w in f.path.windows(2) {
                assert!(
                    ch.can_decode(w[0], w[1]),
                    "hop {}->{} must decode",
                    w[0],
                    w[1]
                );
            }
        }
        // N10 is hidden from N0...
        assert!(!ch.can_sense(10, 0));
        assert!(!ch.can_sense(0, 10));
        // ...and carrier-senses exactly N11 and N12.
        let sensed: Vec<usize> = (0..25).filter(|&r| ch.can_sense(r, 10)).collect();
        assert_eq!(sensed, vec![11, 12], "N10's competitors");
        // F2's tail shares the medium with F1's head.
        assert!(ch.can_sense(14, 1));
        // F3's source likewise senses only its own next two hops.
        let sensed: Vec<usize> = (0..25).filter(|&r| ch.can_sense(r, 19)).collect();
        assert_eq!(sensed, vec![20, 21]);
        // Idle spares do not touch the arena.
        for k in 16..=18 {
            for r in 0..16 {
                assert!(!ch.can_sense(k, r));
            }
        }
    }

    #[test]
    fn testbed_links_calibrated_to_table1() {
        let t = testbed(true, true, Time::from_secs(0), Time::from_secs(10));
        assert_eq!(t.positions.len(), 9);
        assert_eq!(t.flows.len(), 2);
        assert_eq!(t.flows[0].hops(), 7);
        assert_eq!(t.flows[1].hops(), 4);
        // The bottleneck l2 must have the worst loss.
        let p2 = t.loss.loss_prob(2, 3);
        for (i, _) in TABLE1_KBPS.iter().enumerate() {
            assert!(t.loss.loss_prob(i, i + 1) <= p2 + 1e-12);
        }
        assert!(p2 > 0.1, "l2 needs substantial loss, got {p2}");
        let ch = channel_for(&t);
        assert!(ch.can_decode(TESTBED_F2_SRC, 4));
    }

    #[test]
    fn testbed_flow_toggles() {
        let t = testbed(true, false, Time::from_secs(0), Time::from_secs(1));
        assert_eq!(t.flows.len(), 1);
        assert_eq!(t.flows[0].path[0], 0);
        let t = testbed(false, true, Time::from_secs(0), Time::from_secs(1));
        assert_eq!(t.flows.len(), 1);
        assert_eq!(t.flows[0].path[0], TESTBED_F2_SRC);
        assert_eq!(t.flows[0].id, 0, "ids stay dense");
    }
}
