//! Interference-domain partitioner for the sharded engine.
//!
//! Groups nodes into K balanced partitions ("shards") along the static
//! carrier-sense graph ([`Channel::sensing_neighbors`]) by greedy BFS
//! growth: start from the lowest unvisited node id, flood outward in
//! ascending-neighbor order, and open the next shard once the current
//! one reaches its ⌈N/K⌉ share. BFS over the sensing graph keeps each
//! shard spatially contiguous — 802.11 interference is local (the
//! paper's whole premise: BOE overhears one-hop neighbors only), so
//! contiguous shards minimize *cut edges*, the sensing pairs whose
//! endpoints land in different shards. Every cross-cut carrier-sense
//! delivery becomes traffic into another shard's queue
//! ([`ShardedScheduler::cut_deliveries`](ezflow_sim::sched::sharded::ShardedScheduler::cut_deliveries)),
//! so the cut fraction is the partition's quality measure and is
//! reported alongside the bench numbers.
//!
//! Everything here is deterministic — node-id iteration order, FIFO
//! frontier — and the assignment affects only which backend queue an
//! entry waits in, never the merged execution order, so even a poor
//! partition cannot change a single simulation byte.

use std::collections::VecDeque;

use ezflow_phy::Channel;

/// A node → shard assignment over the sensing graph, with its cut-edge
/// accounting.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Shard of each node, indexed by node id.
    pub shard_of: Vec<u32>,
    /// Number of shards actually used (K clamped to the node count).
    pub shards: usize,
    /// Sensing edges whose endpoints are in different shards.
    pub cut_edges: usize,
    /// Total undirected sensing edges in the graph.
    pub total_edges: usize,
}

impl Partition {
    /// `cut_edges / total_edges`, or 0.0 for an edgeless graph.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Partitions the channel's nodes into `shards` balanced groups along
/// the carrier-sense graph (see the module docs). `shards` is clamped
/// to `1..=node_count`.
pub fn partition_by_sensing(channel: &Channel, shards: usize) -> Partition {
    let n = channel.node_count();
    let k = shards.clamp(1, n.max(1));
    const UNASSIGNED: u32 = u32::MAX;
    let mut shard_of = vec![UNASSIGNED; n];
    let target = n.div_ceil(k);
    let mut cur: u32 = 0;
    let mut filled = 0usize;
    let mut frontier: VecDeque<usize> = VecDeque::new();
    for seed in 0..n {
        if shard_of[seed] != UNASSIGNED {
            continue;
        }
        frontier.push_back(seed);
        while let Some(v) = frontier.pop_front() {
            if shard_of[v] != UNASSIGNED {
                continue;
            }
            // The shard reached its share: open the next one. The BFS
            // frontier carries over, so the next shard keeps growing
            // from the boundary of the last — contiguity is preserved
            // across the switch.
            if filled == target && (cur as usize) < k - 1 {
                cur += 1;
                filled = 0;
            }
            shard_of[v] = cur;
            filled += 1;
            for &u in channel.sensing_neighbors(v) {
                if shard_of[u] == UNASSIGNED {
                    frontier.push_back(u);
                }
            }
        }
    }
    let (mut cut_edges, mut total_edges) = (0usize, 0usize);
    for v in 0..n {
        for &u in channel.sensing_neighbors(v) {
            if u <= v {
                continue; // count each undirected edge once
            }
            total_edges += 1;
            if shard_of[v] != shard_of[u] {
                cut_edges += 1;
            }
        }
    }
    Partition {
        shard_of,
        shards: k,
        cut_edges,
        total_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezflow_phy::{ChannelConfig, LossModel, Position};

    /// A chain of `n` nodes spaced so each only senses its immediate
    /// neighbors.
    fn chain(n: usize) -> Channel {
        let positions: Vec<Position> = (0..n)
            .map(|i| Position {
                x: i as f64 * 200.0,
                y: 0.0,
            })
            .collect();
        let cfg = ChannelConfig {
            tx_range: 250.0,
            cs_range: 250.0,
            ..ChannelConfig::default()
        };
        Channel::new(&positions, cfg, LossModel::ideal())
    }

    #[test]
    fn chain_splits_into_contiguous_balanced_runs() {
        let part = partition_by_sensing(&chain(8), 2);
        assert_eq!(part.shard_of, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(part.shards, 2);
        // 7 chain edges, exactly one crosses the split.
        assert_eq!((part.cut_edges, part.total_edges), (1, 7));
        assert!((part.cut_fraction() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn four_way_split_of_a_chain_cuts_three_edges() {
        let part = partition_by_sensing(&chain(8), 4);
        assert_eq!(part.shard_of, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(part.cut_edges, 3);
    }

    #[test]
    fn one_shard_has_no_cuts() {
        let part = partition_by_sensing(&chain(5), 1);
        assert!(part.shard_of.iter().all(|&s| s == 0));
        assert_eq!(part.cut_edges, 0);
        assert_eq!(part.total_edges, 4);
    }

    #[test]
    fn shards_clamp_to_node_count() {
        let part = partition_by_sensing(&chain(3), 8);
        assert_eq!(part.shards, 3);
        assert_eq!(part.shard_of, vec![0, 1, 2]);
    }

    #[test]
    fn every_node_is_assigned_and_shares_are_balanced() {
        for k in [1, 2, 3, 4, 5] {
            let part = partition_by_sensing(&chain(17), k);
            let mut counts = vec![0usize; part.shards];
            for &s in &part.shard_of {
                counts[s as usize] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 17);
            let target = 17usize.div_ceil(k);
            assert!(
                counts.iter().all(|&c| c <= target),
                "k={k}: no shard may exceed its ceil share, got {counts:?}"
            );
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let a = partition_by_sensing(&chain(12), 3);
        let b = partition_by_sensing(&chain(12), 3);
        assert_eq!(a.shard_of, b.shard_of);
    }
}
